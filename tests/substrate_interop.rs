//! Cross-crate substrate tests: the full render → serialize → parse →
//! highlight → extract → convert loop that every measurement rides on,
//! exercised across all template families, locales and retailers.

use pd_currency::Locale;
use pd_extract::HighlightExtractor;
use pd_net::clock::SimTime;
use pd_net::geo::{Country, Location};
use pd_util::Seed;
use pd_web::template::price_selector;
use pd_web::{Request, WebWorld};

fn world() -> WebWorld {
    let seed = Seed::new(1307);
    WebWorld::build(seed, pd_pricing::paper_retailers(seed), 160)
}

#[test]
fn every_retailer_page_extracts_for_every_vantage_country() {
    let mut w = world();
    let countries = [
        Country::UnitedStates,
        Country::Finland,
        Country::Brazil,
        Country::UnitedKingdom,
        Country::Germany,
        Country::Belgium,
        Country::Spain,
    ];
    let addrs: Vec<_> = countries
        .iter()
        .map(|&c| w.allocate_client(&Location::new(c, "Test")))
        .collect();
    let domains: Vec<String> = w
        .servers()
        .iter()
        .map(|s| s.spec().domain.clone())
        .collect();

    for domain in &domains {
        let server = w.server_by_domain(domain).unwrap();
        let style = server.spec().template_style;
        let slug = server.catalog().iter().next().unwrap().slug.clone();
        for (&country, &addr) in countries.iter().zip(&addrs) {
            let req = Request::get(
                domain,
                &format!("/product/{slug}"),
                addr,
                SimTime::from_millis(20 * 24 * 3_600_000),
            );
            let resp = w.fetch(&req);
            assert_eq!(resp.status.code(), 200, "{domain} for {country:?}");
            let doc = pd_html::parse(&resp.body);
            let ex = HighlightExtractor::from_highlight(&doc, &price_selector(style))
                .unwrap_or_else(|| panic!("{domain}: highlight failed"));
            let extracted = ex
                .extract(&doc, Some(Locale::of_country(country)))
                .unwrap_or_else(|e| panic!("{domain} for {country:?}: {e}"));
            assert!(
                extracted.price.amount.is_positive(),
                "{domain} for {country:?}"
            );
            // The currency matches the visitor's geo-located locale.
            assert_eq!(
                extracted.price.currency,
                pd_currency::Currency::of_country(country),
                "{domain} for {country:?}"
            );
        }
    }
}

#[test]
fn highlight_from_one_locale_resolves_on_all_others() {
    // The core $heriff trick: capture on the user's page, replay on the
    // 13 foreign copies.
    let mut w = world();
    let us = w.allocate_client(&Location::new(Country::UnitedStates, "Boston"));
    let fi = w.allocate_client(&Location::new(Country::Finland, "Tampere"));
    let br = w.allocate_client(&Location::new(Country::Brazil, "Sao Paulo"));

    for domain in ["www.digitalrev.com", "www.energie.it", "www.kobobooks.com"] {
        let server = w.server_by_domain(domain).unwrap();
        let style = server.spec().template_style;
        let slug = server.catalog().iter().next().unwrap().slug.clone();
        let t = SimTime::from_millis(20 * 24 * 3_600_000);
        let fetch = |addr| {
            let req = Request::get(domain, &format!("/product/{slug}"), addr, t);
            pd_html::parse(&w.fetch(&req).body)
        };
        let us_doc = fetch(us);
        let ex = HighlightExtractor::from_highlight(&us_doc, &price_selector(style)).unwrap();
        for (doc, country) in [(fetch(fi), Country::Finland), (fetch(br), Country::Brazil)] {
            let e = ex
                .extract(&doc, Some(Locale::of_country(country)))
                .unwrap_or_else(|err| panic!("{domain} on {country:?}: {err}"));
            assert_eq!(e.price.currency, pd_currency::Currency::of_country(country));
        }
    }
}

#[test]
fn localization_alone_never_trips_the_band_filter() {
    // A uniform retailer serving 7 currencies: the filter must call every
    // cross-currency comparison "not genuine" on every day of the window.
    let seed = Seed::new(1307);
    let mut specs = pd_pricing::paper_retailers(seed);
    specs.extend(pd_pricing::filler_retailers(seed, 30));
    let mut w = WebWorld::build(seed, specs, 160);
    let uniform_domain = {
        let server = w
            .servers()
            .iter()
            .find(|s| !s.spec().is_discriminating() && !s.spec().inlines_tax)
            .expect("a uniform filler exists");
        server.spec().domain.clone()
    };
    let countries = [
        Country::UnitedStates,
        Country::Finland,
        Country::Brazil,
        Country::UnitedKingdom,
        Country::Poland,
        Country::Sweden,
        Country::Japan,
    ];
    let addrs: Vec<_> = countries
        .iter()
        .map(|&c| w.allocate_client(&Location::new(c, "T")))
        .collect();
    let server = w.server_by_domain(&uniform_domain).unwrap();
    let style = server.spec().template_style;
    let slugs: Vec<String> = server
        .catalog()
        .iter()
        .take(5)
        .map(|p| p.slug.clone())
        .collect();

    for day in [0u64, 50, 120] {
        for slug in &slugs {
            let t = SimTime::from_millis(day * 24 * 3_600_000 + 9 * 3_600_000);
            let mut prices = Vec::new();
            for (&country, &addr) in countries.iter().zip(&addrs) {
                let req = Request::get(&uniform_domain, &format!("/product/{slug}"), addr, t);
                let doc = pd_html::parse(&w.fetch(&req).body);
                let ex = HighlightExtractor::from_highlight(&doc, &price_selector(style)).unwrap();
                prices.push(
                    ex.extract(&doc, Some(Locale::of_country(country)))
                        .unwrap()
                        .price,
                );
            }
            let verdict = pd_currency::band_filter(w.fx(), &prices, day as usize).unwrap();
            assert!(
                !verdict.genuine,
                "day {day} {slug}: localization misflagged as discrimination ({verdict:?})"
            );
        }
    }
}

#[test]
fn checkout_totals_are_consistent_across_locales() {
    let mut w = world();
    for country in [Country::UnitedStates, Country::Finland, Country::Japan] {
        let addr = w.allocate_client(&Location::new(country, "T"));
        let server = w.server_by_domain("www.hotels.com").unwrap();
        let slug = server.catalog().iter().next().unwrap().slug.clone();
        let req = Request::get(
            "www.hotels.com",
            &format!("/checkout/{slug}"),
            addr,
            SimTime::from_millis(10 * 24 * 3_600_000),
        );
        let resp = w.fetch(&req);
        assert_eq!(resp.status.code(), 200);
        let doc = pd_html::parse(&resp.body);
        let cells = pd_html::Selector::parse("td.line-amount")
            .unwrap()
            .query_all(&doc);
        assert_eq!(cells.len(), 4, "{country:?}");
        let loc = Locale::of_country(country);
        let amounts: Vec<i64> = cells
            .iter()
            .map(|&c| {
                loc.parse(doc.text_content(c).trim())
                    .unwrap()
                    .amount
                    .to_minor()
            })
            .collect();
        // total = item + tax + shipping, exactly, in every locale
        // (JPY included — whole-yen rounding happens per line).
        let drift = (amounts[0] + amounts[1] + amounts[2] - amounts[3]).abs();
        assert!(drift <= 200, "{country:?}: drift {drift} minor units");
        assert!(amounts[1] > 0, "{country:?}: no tax at checkout");
    }
}
