//! End-to-end pipeline test: one small-scale run, every paper claim
//! checked against the report.

use pd_core::{Experiment, ExperimentConfig};

fn report() -> pd_core::Report {
    Experiment::run(ExperimentConfig::small(1307))
}

#[test]
fn summary_matches_configured_scale() {
    let r = report();
    assert_eq!(r.summary.crowd_requests, 150);
    assert_eq!(r.summary.crawled_retailers, 21);
    assert_eq!(r.summary.crawl_days, 3);
    assert_eq!(r.summary.crawled_products, 21 * 12);
    // 21 retailers × 12 products × 3 days × 14 vantage points.
    assert_eq!(r.summary.crawled_prices, 21 * 12 * 3 * 14);
    assert!(r.summary.crowd_countries >= 10);
}

#[test]
fn fig1_is_a_descending_ranking_with_amazon_on_top() {
    let r = report();
    assert!(!r.fig1.is_empty());
    assert!(r
        .fig1
        .windows(2)
        .all(|w| w[0].differing_requests >= w[1].differing_requests));
    // The most popular retailer collects the most confirmed differences.
    assert_eq!(r.fig1[0].domain, "www.amazon.com");
}

#[test]
fn fig2_ratios_sit_in_the_papers_band() {
    let r = report();
    for b in &r.fig2 {
        assert!(b.stats.median >= 1.0, "{}: {}", b.domain, b.stats.median);
        assert!(
            b.stats.max <= 3.2,
            "{}: max ratio {} beyond paper's range",
            b.domain,
            b.stats.max
        );
    }
}

#[test]
fn fig3_multiplicative_retailers_have_full_extent() {
    let r = report();
    let extent = |domain: &str| {
        r.fig3
            .iter()
            .find(|b| b.domain == domain)
            .unwrap_or_else(|| panic!("{domain} missing from Fig.3"))
            .extent
    };
    // "In some cases, we see a 100% coverage."
    assert_eq!(extent("www.digitalrev.com"), 1.0);
    assert_eq!(extent("store.refrigiwear.it"), 1.0);
    assert_eq!(extent("www.misssixty.com"), 1.0);
    // Gated retailers sit visibly below 1.
    assert!(extent("www.rightstart.com") < 0.8);
    // The majority of crawled retailers are at or near complete extent.
    let near_complete = r.fig3.iter().filter(|b| b.extent > 0.9).count();
    assert!(
        near_complete * 2 > r.fig3.len(),
        "only {near_complete}/{} near-complete",
        r.fig3.len()
    );
}

#[test]
fn fig4_bulk_sits_between_10_and_30_percent() {
    let r = report();
    let medians: Vec<f64> = r.fig4.iter().map(|b| b.stats.median).collect();
    let in_band = medians
        .iter()
        .filter(|m| (1.05..=1.45).contains(*m))
        .count();
    assert!(
        in_band * 3 >= medians.len() * 2,
        "only {in_band}/{} medians in the 10-30% band: {medians:?}",
        medians.len()
    );
}

#[test]
fn fig5_envelope_declines_with_price() {
    let r = report();
    let occupied: Vec<f64> = r.fig5_envelope.iter().filter_map(|b| b.max_value).collect();
    assert!(occupied.len() >= 4, "need several occupied buckets");
    // Cheap products reach higher ratios than the most expensive ones.
    let first = occupied.first().unwrap();
    let last = occupied.last().unwrap();
    assert!(
        first > last,
        "envelope must decline: cheap {first} vs dear {last}"
    );
    // Paper's absolute claims: up to ×3 on the cheap side; < ×1.5 at the
    // expensive edge.
    let global_max = occupied.iter().cloned().fold(1.0f64, f64::max);
    assert!(global_max > 2.0, "cheap-side boost missing: {global_max}");
    assert!(*last < 1.5, "expensive side too variable: {last}");
}

#[test]
fn fig6_classifies_the_two_flagship_retailers() {
    use pd_analysis::strategy::StrategyClass;
    let r = report();
    // digitalrev: all non-base locations purely multiplicative.
    let uk = r.fig6a.iter().find(|c| c.label.contains("UK")).unwrap();
    assert_eq!(uk.strategy, StrategyClass::Multiplicative);
    assert!((uk.mult_factor - 1.10).abs() < 0.03, "{}", uk.mult_factor);
    assert!(uk.additive_usd.abs() < 1.0);
    let fi = r
        .fig6a
        .iter()
        .find(|c| c.label.contains("Finland"))
        .unwrap();
    assert_eq!(fi.strategy, StrategyClass::Multiplicative);
    assert!((fi.mult_factor - 1.26).abs() < 0.03);
    // energie: the UK location carries the additive term.
    let uk_b = r.fig6b.iter().find(|c| c.label.contains("UK")).unwrap();
    assert_eq!(uk_b.strategy, StrategyClass::Mixed);
    assert!(uk_b.additive_usd > 3.0, "{}", uk_b.additive_usd);
}

#[test]
fn fig7_finland_dearest_usa_brazil_cheap() {
    let r = report();
    let median = |label: &str| {
        r.fig7
            .iter()
            .find(|b| b.label == label)
            .unwrap_or_else(|| panic!("{label} missing"))
            .stats
            .median
    };
    let finland = median("Finland - Tampere");
    for us in [
        "USA - Boston",
        "USA - Chicago",
        "USA - Lincoln",
        "USA - Los Angeles",
        "USA - New York",
        "USA - Albany",
    ] {
        assert!(
            finland > median(us),
            "Finland {finland} vs {us} {}",
            median(us)
        );
    }
    assert!(finland > median("Brazil - Sao Paulo"));
}

#[test]
fn fig7_spain_probes_agree_despite_platforms() {
    // The paper's system-effect control: same location, three platforms.
    let r = report();
    let spain: Vec<f64> = r
        .fig7
        .iter()
        .filter(|b| b.label.starts_with("Spain"))
        .map(|b| b.stats.median)
        .collect();
    assert_eq!(spain.len(), 3);
    for w in spain.windows(2) {
        assert!((w[0] - w[1]).abs() < 0.02, "platforms disagree: {spain:?}");
    }
}

#[test]
fn fig8_amazon_constant_across_us_variable_across_countries() {
    use pd_analysis::location::PairRelation;
    let r = report();
    // homedepot grid: NY dearer than Chicago — never the other way
    // around. (At the small test scale the product gate can leave
    // enough equal-price products to classify the pair "Mixed"; the
    // directional claim is what must hold.)
    let ny_chi = r
        .fig8a
        .cells
        .iter()
        .find(|c| c.row.contains("New York") && c.col.contains("Chicago"))
        .expect("NY/Chicago cell");
    assert_ne!(ny_chi.relation, PairRelation::ColDearer);
    let row_dearer = ny_chi.points.iter().filter(|(x, y)| y > x).count();
    let col_dearer = ny_chi.points.iter().filter(|(x, y)| x > y).count();
    assert!(
        row_dearer > col_dearer,
        "NY must skew dearer: {row_dearer} vs {col_dearer}"
    );
    assert_eq!(col_dearer, 0, "Chicago never beats NY on price");
    // amazon grid: at least one country pair is non-similar.
    let nontrivial = r
        .fig8b
        .cells
        .iter()
        .any(|c| c.relation != PairRelation::Similar);
    assert!(nontrivial, "amazon grid is all-similar");
    // USA is never the dearer side against Finland.
    let us_fi = r
        .fig8b
        .cells
        .iter()
        .find(|c| c.row.contains("New York") && c.col.contains("Finland"))
        .expect("US/Finland cell");
    assert_ne!(us_fi.relation, PairRelation::RowDearer);
}

#[test]
fn fig9_finland_exceptions_match_paper() {
    let r = report();
    let cheap: Vec<&str> = r
        .fig9
        .iter()
        .filter(|b| b.finland_cheapest)
        .map(|b| b.domain.as_str())
        .collect();
    assert_eq!(
        cheap,
        vec!["www.mauijim.com", "www.tuscanyleather.it"],
        "Fig. 9 exceptions"
    );
}

#[test]
fn fig10_variation_without_login_correlation() {
    let r = report();
    assert!(r.fig10.variation_fraction > 0.5);
    let corr = r.fig10.login_correlation.unwrap_or(0.0);
    assert!(corr.abs() < 0.3, "login correlation too strong: {corr}");
}

#[test]
fn persona_null_and_thirdparty_ordering() {
    let r = report();
    assert!(r.persona.null_result);
    assert!(r.persona.total_pairs > 0);
    // Presence ordering: GA ≥ FB ≥ DC ≥ PIN ≥ TW (paper: 95/80/65/45/40).
    let f = |host: &str| {
        r.third_party
            .rows
            .iter()
            .find(|(h, _)| h.contains(host))
            .unwrap()
            .1
    };
    assert!(f("google-analytics") >= f("facebook"));
    assert!(f("facebook") >= f("doubleclick"));
    assert!(f("doubleclick") >= f("pinterest"));
    assert!(f("pinterest") >= f("twitter"));
    assert!(f("google-analytics") > 0.85);
    assert!(f("twitter") < 0.55);
}
