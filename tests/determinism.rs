//! Reproducibility guarantees: the whole study is a deterministic
//! function of the seed.

use pd_core::{Experiment, ExperimentConfig};

#[test]
fn same_seed_same_report() {
    let a = Experiment::run(ExperimentConfig::small(77));
    let b = Experiment::run(ExperimentConfig::small(77));
    // JSON is the strictest practical equality over the whole report.
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn different_seed_different_data() {
    let a = Experiment::run(ExperimentConfig::small(77));
    let b = Experiment::run(ExperimentConfig::small(78));
    assert_ne!(a.to_json(), b.to_json());
    // ...but the qualitative conclusions are seed-independent:
    for r in [&a, &b] {
        assert!(r.persona.null_result, "persona null must hold at any seed");
        assert!(!r.fig1.is_empty());
        let cheap: Vec<&str> = r
            .fig9
            .iter()
            .filter(|x| x.finland_cheapest)
            .map(|x| x.domain.as_str())
            .collect();
        // The two structural exceptions hold at any seed; the strongly
        // Finland-dear retailers never appear. (Gated retailers may
        // flicker in at tiny sample sizes, which is fine.)
        assert!(cheap.contains(&"www.mauijim.com"), "{cheap:?}");
        assert!(cheap.contains(&"www.tuscanyleather.it"), "{cheap:?}");
        for dear in [
            "www.digitalrev.com",
            "store.refrigiwear.it",
            "www.scitec-nutrition.es",
        ] {
            assert!(!cheap.contains(&dear), "{dear} misclassified: {cheap:?}");
        }
    }
}

#[test]
fn same_seed_same_rendered_reports_across_runs() {
    // `to_json` equality (above) covers the data; this covers the whole
    // human-facing rendering path — every figure renderer and the table
    // renderer must be a pure function of the seed, with no iteration-order
    // or formatting nondeterminism.
    let a = Experiment::run(ExperimentConfig::small(1307));
    let b = Experiment::run(ExperimentConfig::small(1307));
    assert_eq!(a.render_all(), b.render_all());
    // Spot-check individual renderers too, so a failure names the figure.
    assert_eq!(a.render_summary(), b.render_summary());
    assert_eq!(a.render_fig1(), b.render_fig1());
    assert_eq!(a.render_fig7(), b.render_fig7());
    assert_eq!(a.render_tables(), b.render_tables());
}

#[test]
fn different_seeds_render_different_reports() {
    let a = Experiment::run(ExperimentConfig::small(1307));
    let b = Experiment::run(ExperimentConfig::small(2024));
    assert_ne!(
        a.render_all(),
        b.render_all(),
        "two seeds producing identical full renderings means the seed is ignored"
    );
}

#[test]
fn phases_are_independently_rerunnable() {
    // Re-running a phase on the same Experiment must not change results
    // (no hidden RNG state is consumed across calls).
    let exp = Experiment::new(ExperimentConfig::small(5));
    let (s1, st1) = exp.run_crawl_phase();
    let (s2, st2) = exp.run_crawl_phase();
    assert_eq!(st1, st2);
    assert_eq!(s1.len(), s2.len());
    for (a, b) in s1.records().iter().zip(s2.records()) {
        assert_eq!(a.prices(), b.prices());
    }
}
