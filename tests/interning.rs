//! Global string-interner hygiene across a sweep (ISSUE 6 satellite).
//!
//! The interner is a process-global, so this suite lives in its own
//! integration binary: no other test's interned strings can mask (or
//! be masked by) what this one measures.

use pd_core::{Experiment, Profile};
use pd_util::intern;

/// A multi-arm sweep interns each arm's domain set while its frames are
/// alive; once the runs are dropped, `purge_unreferenced` reclaims the
/// table instead of letting it grow for the process lifetime.
#[test]
fn sweeps_purge_unreferenced_interned_strings() {
    let runs = Experiment::builder()
        .scenario("crowd-sweep")
        .profile(Profile::Smoke)
        .seed(7)
        .run_sweep()
        .expect("sweep runs");
    assert!(runs.len() > 1, "crowd-sweep must have multiple arms");
    let alive = intern::interned_count();
    assert!(alive > 0, "analysis frames must intern domains");

    // While the arms' engines (and their frame caches) are alive, every
    // interned domain is still referenced: purging now is a no-op.
    assert_eq!(
        intern::purge_unreferenced(),
        0,
        "live frames must keep their interned strings"
    );
    assert_eq!(intern::interned_count(), alive);

    drop(runs);
    let purged = intern::purge_unreferenced();
    assert!(
        purged > 0,
        "dropping the sweep must leave purgeable strings ({alive} interned)"
    );
    assert!(
        intern::interned_count() < alive,
        "the interner table must shrink after the purge"
    );
}
