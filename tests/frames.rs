//! Contracts of the incremental per-domain analysis layer:
//!
//! * **Shard-union property** — for *any* measurement store, the union
//!   of `CheckFrame::build_domain` shards over all of its domains,
//!   spliced with `CheckFrame::merge_shards`, equals
//!   `CheckFrame::build` on the full store row-for-row. This is the
//!   invariant that lets the engine build frames one retailer at a time
//!   (in parallel, cached) without perturbing a single figure.
//! * **FrameCache reuse** — a second `analyze()` on the same engine
//!   rebuilds zero domain frames, proven by the `frames_built` /
//!   `frames_reused` observer counters.

use pd_core::{Executor, Experiment, FrameCache, Profile, StageKind, TimingObserver};
use pd_currency::{Currency, FxSeries, Price};
use pd_net::clock::SimTime;
use pd_sheriff::measurement::NoiseTruth;
use pd_sheriff::{Measurement, MeasurementStore, PriceObservation};
use pd_util::{Money, RequestId, Seed, UserId, VantageId};
use proptest::prelude::*;
use std::sync::Arc;

/// A measurement whose domain, slug, observation count and prices come
/// from flat random draws; some observations fail so some rows drop out
/// of the frame entirely (the merge must cope with gaps).
#[allow(clippy::cast_possible_truncation)]
fn measurement(domain_idx: u8, slug_idx: u8, obs: u8, minor: i64, fail_first: bool) -> Measurement {
    let price = |v: i64| Price::new(Money::from_minor(minor + v * 137), Currency::Usd);
    Measurement {
        request: RequestId::new(0), // reassigned by push
        user: UserId::new(u32::from(domain_idx)),
        domain: format!("shard-{domain_idx}.example"),
        product_slug: format!("slug-{slug_idx}"),
        time: SimTime::from_millis(u64::from(obs) * 3_600_000),
        user_price: None,
        observations: (0..obs)
            .map(|v| {
                if fail_first && v == 0 {
                    PriceObservation::failed(VantageId::new(u32::from(v)), "down".into())
                } else {
                    PriceObservation::ok(
                        VantageId::new(u32::from(v)),
                        price(i64::from(v)),
                        String::new(),
                    )
                }
            })
            .collect(),
        noise_truth: NoiseTruth::Clean,
    }
}

fn fx() -> FxSeries {
    FxSeries::generate(Seed::new(1307), 160)
}

proptest! {
    /// The satellite property: union-of-shards ≡ full build, row for
    /// row, over stores with interleaved domains, duplicate products,
    /// and rows the frame skips (too few extractions).
    #[test]
    fn prop_domain_shard_union_equals_full_build(
        draws in proptest::collection::vec((0u8..5, 0u8..4, 0u8..5, -50_000i64..500_000), 0..40),
        fail_stride in 1usize..5,
    ) {
        let fx = fx();
        let mut store = MeasurementStore::new();
        for (i, (domain_idx, slug_idx, obs, minor)) in draws.iter().enumerate() {
            store.push(measurement(*domain_idx, *slug_idx, *obs, *minor, i % fail_stride == 0));
        }
        let full = pd_analysis::CheckFrame::build(&store, &fx);
        let shards: Vec<pd_analysis::CheckFrame> = store
            .domains()
            .iter()
            .map(|d| pd_analysis::CheckFrame::build_domain(&store, &fx, d))
            .collect();
        // The shards partition the frame...
        prop_assert_eq!(shards.iter().map(pd_analysis::CheckFrame::len).sum::<usize>(), full.len());
        // ...and splice back into the exact full frame.
        let merged = pd_analysis::CheckFrame::merge_shards(&shards);
        prop_assert_eq!(merged.rows(), full.rows());
    }

    /// The cache returns that same frame at any thread count, and a
    /// second call under the same key builds nothing.
    #[test]
    fn prop_frame_cache_equals_direct_build(
        draws in proptest::collection::vec((0u8..4, 0u8..3, 2u8..5, 1_000i64..400_000), 1..24),
        key in 0u64..u64::MAX,
        threads in 1usize..5,
    ) {
        let fx = fx();
        let mut store = MeasurementStore::new();
        for (domain_idx, slug_idx, obs, minor) in &draws {
            store.push(measurement(*domain_idx, *slug_idx, *obs, *minor, false));
        }
        let cache = FrameCache::new();
        let exec = Executor::new(threads);
        let (cached, first) = cache.frame_for(key, &store, &fx, &exec);
        let direct = pd_analysis::CheckFrame::build(&store, &fx);
        prop_assert_eq!(cached.rows(), direct.rows());
        prop_assert_eq!(first.built + first.reused, store.domains().len());
        let (again, second) = cache.frame_for(key, &store, &fx, &exec);
        prop_assert!(Arc::ptr_eq(&cached, &again), "second call must be a cache hit");
        prop_assert_eq!(second.built, 0);
        prop_assert_eq!(second.reused, store.domains().len());
    }
}

/// Reads the `name` counter off the `idx`-th analysis timing.
fn analysis_counter(observer: &TimingObserver, idx: usize, name: &str) -> u64 {
    let timings: Vec<_> = observer
        .timings()
        .into_iter()
        .filter(|t| t.stage == StageKind::Analysis)
        .collect();
    timings[idx]
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("analysis run {idx} has no {name} counter"))
        .1
}

/// The acceptance criterion: a second `analyze()` on the same crawl
/// rebuilds zero domain frames — everything comes from the engine's
/// `FrameCache`.
#[test]
fn second_analyze_rebuilds_zero_domain_frames() {
    let observer = Arc::new(TimingObserver::new());
    let mut engine = Experiment::builder()
        .scenario("paper")
        .profile(Profile::Smoke)
        .seed(1307)
        .observer(observer.clone())
        .build()
        .expect("paper scenario builds");

    let first = engine.analyze();
    let built_first = analysis_counter(&observer, 0, "frames_built");
    let reused_first = analysis_counter(&observer, 0, "frames_reused");
    assert!(built_first > 0, "first analysis must build domain frames");
    assert_eq!(reused_first, 0, "nothing to reuse on a cold cache");

    let second = engine.analyze();
    assert_eq!(first.report.to_json(), second.report.to_json());
    assert_eq!(
        analysis_counter(&observer, 1, "frames_built"),
        0,
        "second analysis must rebuild nothing"
    );
    assert_eq!(
        analysis_counter(&observer, 1, "frames_reused"),
        built_first,
        "every frame the first analysis built must be served from cache"
    );
}

/// `pd rerun`'s in-process equivalent: an engine that loads measurement
/// artifacts from a store still reuses cached frames across analyses,
/// because the cache keys on the same fingerprints the store validated.
#[test]
fn rerun_on_loaded_artifacts_hits_the_frame_cache() {
    let dir = std::env::temp_dir().join(format!("pd-frames-rerun-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let mut producer = Experiment::builder()
        .scenario("smoke")
        .seed(11)
        .build()
        .expect("smoke builds");
    producer.analyze();
    producer.save_artifacts(&dir).expect("save");

    let observer = Arc::new(TimingObserver::new());
    let mut consumer = Experiment::builder()
        .scenario("smoke")
        .seed(11)
        .observer(observer.clone())
        .build()
        .expect("smoke builds");
    let summary = consumer.load_artifacts(&dir).expect("store opens");
    assert!(summary.complete());
    consumer.analyze();
    consumer.analyze();
    assert_eq!(
        analysis_counter(&observer, 1, "frames_built"),
        0,
        "re-analysis of a loaded store must reuse cached frames"
    );
    std::fs::remove_dir_all(&dir).ok();
}
