//! The scenario engine's contracts: registry lookup, builder behavior,
//! artifact caching/reuse, and — the golden test — byte-identical
//! reports from the deterministic parallel scheduler at 2, 4 and 8
//! worker threads versus the sequential run, at the paper seed.

use pd_core::{BuildError, Experiment, Profile, ScenarioRegistry, StageKind, TimingObserver};
use std::sync::Arc;

/// The acceptance criterion: sequential and multi-threaded runs of the
/// `paper` scenario produce identical `Report` JSON *and* identical
/// rendered output, at the paper seed (1307).
#[test]
fn golden_parallel_report_is_byte_identical_to_sequential() {
    let run = |threads: usize| {
        let mut engine = Experiment::builder()
            .scenario("paper")
            .profile(Profile::Smoke)
            .seed(1307)
            .threads(threads)
            .build()
            .expect("paper scenario builds");
        let report = engine.run();
        (report.to_json(), report.render_all())
    };
    let (seq_json, seq_render) = run(1);
    for threads in [2, 4, 8] {
        let (json, render) = run(threads);
        assert_eq!(json, seq_json, "report JSON diverged at {threads} threads");
        assert_eq!(
            render, seq_render,
            "rendered report diverged at {threads} threads"
        );
    }
}

/// Sweep scenarios are deterministic under threading too: every arm of
/// the desync ablation matches its sequential twin.
#[test]
fn sweep_arms_are_thread_deterministic() {
    let run = |threads: usize| -> Vec<(String, String)> {
        Experiment::builder()
            .scenario("desync-ablation")
            .profile(Profile::Smoke)
            .seed(1307)
            .threads(threads)
            .build_variants()
            .expect("sweep builds")
            .into_iter()
            .map(|(label, mut engine)| (label, engine.run().to_json()))
            .collect()
    };
    assert_eq!(run(1), run(4));
}

/// The concurrent-arm golden test: `run_sweep` fans arms across the
/// executor, and its reports — JSON **and** rendered — are
/// byte-identical to the serial run at 1, 2, 4 and 8 threads.
#[test]
fn concurrent_sweep_reports_byte_identical_at_any_thread_count() {
    let run = |threads: usize| -> Vec<(String, String, String)> {
        Experiment::builder()
            .scenario("seed-sweep")
            .profile(Profile::Smoke)
            .seed(1307)
            .threads(threads)
            .run_sweep()
            .expect("sweep runs")
            .into_iter()
            .map(|arm| {
                (
                    arm.label,
                    arm.analysis.report.to_json(),
                    arm.analysis.report.render_all(),
                )
            })
            .collect()
    };
    let serial = run(1);
    assert_eq!(serial.len(), 3, "seed-sweep has three arms");
    for threads in [2, 4, 8] {
        assert_eq!(run(threads), serial, "diverged at {threads} threads");
    }
}

/// The arm-level scheduler splits the thread budget instead of
/// oversubscribing: with 8 threads over 3 arms each arm engine gets 2
/// intra-arm workers (3 × 2 ≤ 8), and arm-scoped observer events are
/// replayed complete and in label order.
#[test]
fn run_sweep_splits_the_thread_budget_and_orders_observer_events() {
    let observer = Arc::new(TimingObserver::new());
    let arms = Experiment::builder()
        .scenario("seed-sweep")
        .profile(Profile::Smoke)
        .seed(1307)
        .threads(8)
        .observer(observer.clone())
        .run_sweep()
        .expect("sweep runs");
    let mut arms = arms;
    let labels: Vec<String> = arms.iter().map(|a| a.label.clone()).collect();
    assert_eq!(labels, vec!["seed-1307", "seed-1308", "seed-1309"]);
    for arm in &arms {
        assert_eq!(arm.engine.executor().threads(), 2, "8 threads / 3 arms");
    }
    // Every arm's five stages ran exactly once, and the replayed stream
    // is grouped per arm in label order.
    assert_eq!(observer.starts(StageKind::Crowd), 3);
    assert_eq!(observer.starts(StageKind::Analysis), 3);
    let arm_order: Vec<String> = observer
        .timings()
        .into_iter()
        .map(|t| t.arm)
        .collect::<Vec<_>>()
        .chunks(5)
        .map(|chunk| {
            assert!(
                chunk.iter().all(|a| a == &chunk[0]),
                "arm events interleaved: {chunk:?}"
            );
            chunk[0].clone()
        })
        .collect();
    assert_eq!(arm_order, vec!["seed-1307", "seed-1308", "seed-1309"]);
    // Post-sweep engine calls must report to the builder's observer
    // again (not into the already-replayed arm buffer).
    arms[0].engine.analyze();
    assert_eq!(
        observer.starts(StageKind::Analysis),
        4,
        "a re-analysis after the sweep must be observed live"
    );
}

/// A single-run scenario through `run_sweep` is the one-arm degenerate
/// case: label `""`, the whole budget intra-arm, same report as
/// `build()` + `run()`.
#[test]
fn run_sweep_handles_single_run_scenarios() {
    let mut arms = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .threads(4)
        .run_sweep()
        .expect("single-run sweep");
    assert_eq!(arms.len(), 1);
    let arm = arms.remove(0);
    assert_eq!(arm.label, "");
    assert_eq!(arm.engine.executor().threads(), 4);
    let mut direct = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .build()
        .expect("smoke builds");
    assert_eq!(arm.analysis.report.to_json(), direct.run().to_json());
}

/// `--threads 0` means "auto": the builder resolves it to the machine's
/// available parallelism (always ≥ 1) instead of rejecting it.
#[test]
fn zero_threads_resolves_to_available_cores() {
    let engine = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .threads(0)
        .build()
        .expect("threads 0 is auto, not an error");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    assert_eq!(engine.executor().threads(), cores);
}

#[test]
fn registry_lookup_and_help_metadata() {
    let reg = ScenarioRegistry::builtin();
    for name in [
        "paper",
        "smoke",
        "desync-ablation",
        "no-cleaning",
        "vantage-subset",
        "seed-sweep",
        "locale-sweep",
        "crowd-sweep",
        "failure-sweep",
        "targeted-crawl",
    ] {
        let s = reg.get(name).unwrap_or_else(|| panic!("{name} missing"));
        assert_eq!(s.name, name);
        assert!(!s.describe.is_empty());
    }
    assert!(reg.get("does-not-exist").is_none());
    assert!(matches!(
        Experiment::builder().scenario("does-not-exist").build(),
        Err(BuildError::UnknownScenario(_))
    ));
}

/// Artifact reuse: run the crowd stage once, analyze twice. The second
/// analysis must reuse the cached crowd/crawl/persona artifacts (the
/// observer sees each measurement stage start exactly once) and produce
/// the identical report.
#[test]
fn artifact_reuse_runs_crowd_once_analyzes_twice() {
    let observer = Arc::new(TimingObserver::new());
    let mut engine = Experiment::builder()
        .scenario("paper")
        .profile(Profile::Smoke)
        .seed(1307)
        .observer(observer.clone())
        .build()
        .expect("paper scenario builds");

    let crowd_len = engine.crowd().raw.len();
    assert!(crowd_len > 0);
    let first = engine.analyze().report;
    let second = engine.analyze().report;
    assert_eq!(first.to_json(), second.to_json());

    assert_eq!(observer.starts(StageKind::Build), 1);
    assert_eq!(observer.starts(StageKind::Crowd), 1, "crowd must be cached");
    assert_eq!(observer.starts(StageKind::Crawl), 1, "crawl must be cached");
    assert_eq!(observer.starts(StageKind::Personas), 1);
    assert_eq!(observer.starts(StageKind::Analysis), 2, "analysis re-runs");
}

/// The `no-cleaning` ablation keeps every raw measurement, and that
/// visibly changes the analysis (the cleaning matters).
#[test]
fn no_cleaning_scenario_keeps_everything() {
    let mut ablated = Experiment::builder()
        .scenario("no-cleaning")
        .profile(Profile::Smoke)
        .seed(1307)
        .build()
        .expect("no-cleaning builds");
    let crowd = ablated.crowd().clone();
    assert_eq!(crowd.cleaned.len(), crowd.raw.len());
    assert_eq!(crowd.cleaning.dropped_inconsistent, 0);

    let mut paper = Experiment::builder()
        .scenario("paper")
        .profile(Profile::Smoke)
        .seed(1307)
        .build()
        .expect("paper builds");
    assert!(paper.crowd().cleaned.len() < crowd.cleaned.len());
}

/// The `vantage-subset` scenario runs the full pipeline on 8 probes.
#[test]
fn vantage_subset_scenario_runs_end_to_end() {
    let mut engine = Experiment::builder()
        .scenario("vantage-subset")
        .profile(Profile::Smoke)
        .seed(1307)
        .build()
        .expect("vantage-subset builds");
    assert_eq!(engine.world().sheriff.vantage_points().len(), 8);
    let report = engine.run();
    // 21 retailers × 6 products × 2 days × 8 probes.
    assert_eq!(report.summary.crawled_prices, 21 * 6 * 2 * 8);
    assert!(!report.fig9.is_empty(), "Finland probe retained");
}

/// The engine's desync knob is applied at construction from the plan —
/// the arms of the ablation sweep really differ.
#[test]
fn desync_ablation_arms_carry_different_skews() {
    let variants = Experiment::builder()
        .scenario("desync-ablation")
        .profile(Profile::Smoke)
        .build_variants()
        .expect("sweep builds");
    assert_eq!(variants.len(), 2);
    let skews: Vec<u64> = variants
        .iter()
        .map(|(_, e)| e.world().sheriff.desync().as_millis())
        .collect();
    assert_eq!(skews[0], 0);
    assert_eq!(skews[1], 25 * 60_000);
}
