//! The scenario engine's contracts: registry lookup, builder behavior,
//! artifact caching/reuse, and — the golden test — byte-identical
//! reports from the deterministic parallel scheduler at 2, 4 and 8
//! worker threads versus the sequential run, at the paper seed.

use pd_core::{BuildError, Experiment, Profile, ScenarioRegistry, StageKind, TimingObserver};
use std::sync::Arc;

/// The acceptance criterion: sequential and multi-threaded runs of the
/// `paper` scenario produce identical `Report` JSON *and* identical
/// rendered output, at the paper seed (1307).
#[test]
fn golden_parallel_report_is_byte_identical_to_sequential() {
    let run = |threads: usize| {
        let mut engine = Experiment::builder()
            .scenario("paper")
            .profile(Profile::Smoke)
            .seed(1307)
            .threads(threads)
            .build()
            .expect("paper scenario builds");
        let report = engine.run();
        (report.to_json(), report.render_all())
    };
    let (seq_json, seq_render) = run(1);
    for threads in [2, 4, 8] {
        let (json, render) = run(threads);
        assert_eq!(json, seq_json, "report JSON diverged at {threads} threads");
        assert_eq!(
            render, seq_render,
            "rendered report diverged at {threads} threads"
        );
    }
}

/// Sweep scenarios are deterministic under threading too: every arm of
/// the desync ablation matches its sequential twin.
#[test]
fn sweep_arms_are_thread_deterministic() {
    let run = |threads: usize| -> Vec<(String, String)> {
        Experiment::builder()
            .scenario("desync-ablation")
            .profile(Profile::Smoke)
            .seed(1307)
            .threads(threads)
            .build_variants()
            .expect("sweep builds")
            .into_iter()
            .map(|(label, mut engine)| (label, engine.run().to_json()))
            .collect()
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn registry_lookup_and_help_metadata() {
    let reg = ScenarioRegistry::builtin();
    for name in [
        "paper",
        "smoke",
        "desync-ablation",
        "no-cleaning",
        "vantage-subset",
        "seed-sweep",
        "locale-sweep",
    ] {
        let s = reg.get(name).unwrap_or_else(|| panic!("{name} missing"));
        assert_eq!(s.name(), name);
        assert!(!s.describe().is_empty());
    }
    assert!(reg.get("does-not-exist").is_none());
    assert!(matches!(
        Experiment::builder().scenario("does-not-exist").build(),
        Err(BuildError::UnknownScenario(_))
    ));
}

/// Artifact reuse: run the crowd stage once, analyze twice. The second
/// analysis must reuse the cached crowd/crawl/persona artifacts (the
/// observer sees each measurement stage start exactly once) and produce
/// the identical report.
#[test]
fn artifact_reuse_runs_crowd_once_analyzes_twice() {
    let observer = Arc::new(TimingObserver::new());
    let mut engine = Experiment::builder()
        .scenario("paper")
        .profile(Profile::Smoke)
        .seed(1307)
        .observer(observer.clone())
        .build()
        .expect("paper scenario builds");

    let crowd_len = engine.crowd().raw.len();
    assert!(crowd_len > 0);
    let first = engine.analyze().report;
    let second = engine.analyze().report;
    assert_eq!(first.to_json(), second.to_json());

    assert_eq!(observer.starts(StageKind::Build), 1);
    assert_eq!(observer.starts(StageKind::Crowd), 1, "crowd must be cached");
    assert_eq!(observer.starts(StageKind::Crawl), 1, "crawl must be cached");
    assert_eq!(observer.starts(StageKind::Personas), 1);
    assert_eq!(observer.starts(StageKind::Analysis), 2, "analysis re-runs");
}

/// The `no-cleaning` ablation keeps every raw measurement, and that
/// visibly changes the analysis (the cleaning matters).
#[test]
fn no_cleaning_scenario_keeps_everything() {
    let mut ablated = Experiment::builder()
        .scenario("no-cleaning")
        .profile(Profile::Smoke)
        .seed(1307)
        .build()
        .expect("no-cleaning builds");
    let crowd = ablated.crowd().clone();
    assert_eq!(crowd.cleaned.len(), crowd.raw.len());
    assert_eq!(crowd.cleaning.dropped_inconsistent, 0);

    let mut paper = Experiment::builder()
        .scenario("paper")
        .profile(Profile::Smoke)
        .seed(1307)
        .build()
        .expect("paper builds");
    assert!(paper.crowd().cleaned.len() < crowd.cleaned.len());
}

/// The `vantage-subset` scenario runs the full pipeline on 8 probes.
#[test]
fn vantage_subset_scenario_runs_end_to_end() {
    let mut engine = Experiment::builder()
        .scenario("vantage-subset")
        .profile(Profile::Smoke)
        .seed(1307)
        .build()
        .expect("vantage-subset builds");
    assert_eq!(engine.world().sheriff.vantage_points().len(), 8);
    let report = engine.run();
    // 21 retailers × 6 products × 2 days × 8 probes.
    assert_eq!(report.summary.crawled_prices, 21 * 6 * 2 * 8);
    assert!(!report.fig9.is_empty(), "Finland probe retained");
}

/// The engine's desync knob is applied at construction from the plan —
/// the arms of the ablation sweep really differ.
#[test]
fn desync_ablation_arms_carry_different_skews() {
    let variants = Experiment::builder()
        .scenario("desync-ablation")
        .profile(Profile::Smoke)
        .build_variants()
        .expect("sweep builds");
    assert_eq!(variants.len(), 2);
    let skews: Vec<u64> = variants
        .iter()
        .map(|(_, e)| e.world().sheriff.desync().as_millis())
        .collect();
    assert_eq!(skews[0], 0);
    assert_eq!(skews[1], 25 * 60_000);
}
