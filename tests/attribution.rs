//! The attribution extension (the paper's Sec. 6 future work) validated
//! end to end against ground truth across the whole crawled set.

use pd_core::{Experiment, ExperimentConfig};
use pd_pricing::StrategyComponent;

#[test]
fn attribution_table_matches_ground_truth_for_all_crawled_retailers() {
    let exp = Experiment::new(ExperimentConfig::small(1307));
    for domain in exp.world().paper_crawl_targets() {
        let attribution = exp
            .attribute_factors(&domain, 12)
            .expect("crawled domain exists");
        let spec = exp
            .world()
            .web
            .server_by_domain(&domain)
            .unwrap()
            .spec()
            .clone();

        // Ground truth: which factor *kinds* the strategy pipeline uses.
        let has = |f: &dyn Fn(&StrategyComponent) -> bool| spec.components.iter().any(f);
        let truth_session = has(&|c| {
            matches!(
                c,
                StrategyComponent::SessionJitter { .. } | StrategyComponent::AbTest { .. }
            )
        });
        let truth_day = has(&|c| matches!(c, StrategyComponent::TemporalDrift { .. }));

        // Session and day attribution must agree with ground truth
        // exactly (these probes are same-currency and same-product, so
        // there is no statistical slack).
        assert_eq!(
            attribution.effect(pd_analysis::Factor::Session).varies,
            truth_session,
            "{domain}: session attribution"
        );
        assert_eq!(
            attribution.effect(pd_analysis::Factor::Day).varies,
            truth_day,
            "{domain}: day attribution"
        );
        // Login never varies anything — the paper's null result, now
        // verified per retailer.
        assert!(
            !attribution.effect(pd_analysis::Factor::Login).varies,
            "{domain}: login must not move prices"
        );
    }
}

#[test]
fn location_attribution_flags_only_location_keyed_retailers() {
    let exp = Experiment::new(ExperimentConfig::small(1307));
    // Location-keyed retailers must attribute to Country (probed with a
    // US/Finland pair; every crawled spec prices Finland or US away from
    // base except the pure city-level one).
    for domain in ["www.digitalrev.com", "www.energie.it", "www.hotels.com"] {
        let a = exp.attribute_factors(domain, 12).unwrap();
        assert!(
            a.effect(pd_analysis::Factor::Country).varies,
            "{domain} must vary by country"
        );
    }
    // homedepot's country-level Finland factor is small (1.06) but real;
    // its city factor must *also* fire — the unique city-keyed retailer.
    let hd = exp.attribute_factors("www.homedepot.com", 12).unwrap();
    assert!(hd.effect(pd_analysis::Factor::CityWithinCountry).varies);
    // And a non-city retailer must not fire the city probe.
    let dr = exp.attribute_factors("www.digitalrev.com", 12).unwrap();
    assert!(!dr.effect(pd_analysis::Factor::CityWithinCountry).varies);
}
