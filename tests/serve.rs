//! The service-layer contracts (ISSUE 7 acceptance, updated for the
//! ISSUE 8 runner pool + coalescing):
//!
//! * **byte-identical under concurrency** — four client threads submit
//!   the same smoke run to one daemon; every fetched report equals the
//!   offline `reports_to_json` output byte-for-byte, whether the job
//!   executed or settled as a coalesced follower,
//! * **warm frame cache** — after the first execution, a repeat
//!   analysis that actually runs reports `frames_built == 0` and
//!   `frames_reused > 0` (the daemon's one process-wide `FrameCache`
//!   is shared across jobs),
//! * **backpressure** — a full bounded queue answers `503` +
//!   `Retry-After` for *distinct* specs and never blocks the accept
//!   loop; an *identical* spec coalesces instead of bouncing,
//! * **graceful shutdown** — `POST /shutdown` drains every queued job
//!   before `Server::join` returns,
//! * **name resolution** — `POST /runs` by name falls back to the spec
//!   search path (`$PD_SPEC_PATH`), and a typo gets a did-you-mean.
//!
//! **Ordering contract**: job ids are assigned in submission order, but
//! with a runner pool jobs do **not** execute or finish in id order —
//! all assertions here are keyed per id (`/runs/:id`), never on which
//! id finished first. See `tests/README.md`.
//!
//! Everything runs in-process against a real `Server` on an ephemeral
//! port — real sockets, real HTTP bytes, no mocks.

use pd_core::{reports_to_json, Experiment, Profile, ScenarioRegistry};
use pd_serve::{Client, ServeConfig, Server, SubmitRequest};
use pd_web::http::Status;
use std::time::Duration;

/// A daemon on an ephemeral port plus a client pointed at it.
fn boot(config: ServeConfig) -> (Server, Client) {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..config
    })
    .expect("bind ephemeral port");
    let client = Client::new(&server.addr().to_string());
    client
        .wait_ready(Duration::from_secs(10))
        .expect("daemon answers /healthz");
    (server, client)
}

fn smoke_request(seed: u64) -> SubmitRequest {
    SubmitRequest {
        scenario: Some("smoke".to_owned()),
        seed: Some(seed),
        profile: Some("smoke".to_owned()),
        ..SubmitRequest::default()
    }
}

/// The offline report JSON for the same submission — what
/// `pd run smoke --seed N --profile smoke --json` would write.
fn offline_smoke_json(seed: u64) -> String {
    let spec = ScenarioRegistry::builtin()
        .get("smoke")
        .expect("smoke is builtin")
        .clone();
    let arms = Experiment::builder()
        .spec(spec)
        .seed(seed)
        .profile(Profile::parse("smoke").expect("smoke profile"))
        .run_sweep()
        .expect("offline smoke runs");
    let reports: Vec<(String, pd_core::Report)> = arms
        .into_iter()
        .map(|arm| (arm.label, arm.analysis.report.clone()))
        .collect();
    reports_to_json(&reports)
}

/// Four concurrent submissions of the same run: every served report is
/// byte-identical to the offline path. With coalescing, identical
/// in-flight submissions attach to one execution (`coalesced_into`
/// names the leader); executions of the same fingerprint are therefore
/// serialized, so exactly one job ever pays to build the analysis
/// frames and every other *execution* runs fully warm. How many of the
/// four coalesce vs. re-execute depends on timing — the assertions
/// hold either way.
#[test]
fn concurrent_submissions_serve_byte_identical_reports_from_warm_frames() {
    let offline = offline_smoke_json(7);
    let (server, client) = boot(ServeConfig::default());

    let ids: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let client = client.clone();
                scope.spawn(move || {
                    let id = client.submit(&smoke_request(7)).expect("accepted");
                    client
                        .wait_done(&id, Duration::from_secs(120))
                        .expect("job finishes");
                    id
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    });

    let mut built_jobs = 0;
    let mut warm_jobs = 0;
    let mut followers = 0;
    for id in &ids {
        let report = client.report(id).expect("report body");
        assert_eq!(
            report, offline,
            "{id}: served report must be byte-identical to the offline run"
        );
        let snap = client.job(id).expect("snapshot");
        assert!(snap.has_report, "{id} must advertise its report");
        if let Some(leader) = &snap.coalesced_into {
            assert!(
                ids.contains(leader),
                "{id} coalesced into {leader}, which must be one of ours"
            );
            assert_eq!(snap.frames_built, 0, "{id}: a follower never ran an engine");
            followers += 1;
        } else if snap.frames_built > 0 {
            built_jobs += 1;
        } else {
            assert!(
                snap.frames_reused > 0,
                "{id}: an execution that built nothing must have reused warm frames"
            );
            warm_jobs += 1;
        }
    }
    assert_eq!(
        built_jobs, 1,
        "exactly one execution pays to build the frames; coalescing and \
         the cache serve the rest"
    );
    assert_eq!(warm_jobs + followers, 3);

    // A fifth, sequential job is fully warm.
    let id = client.submit(&smoke_request(7)).expect("accepted");
    let snap = client
        .wait_done(&id, Duration::from_secs(120))
        .expect("job finishes");
    assert_eq!(snap.frames_built, 0, "repeat analysis builds nothing");
    assert!(snap.frames_reused > 0);

    let metrics = client.metrics().expect("metrics");
    for key in [
        "uptime_ms ",
        "jobs_done 5\n",
        "jobs_failed 0\n",
        "jobs_coalesced ",
        "frames_built ",
        "frames_reused ",
        "frames_chunks_loaded ",
        "store_hits ",
        "stage_ms_analysis ",
    ] {
        assert!(metrics.contains(key), "metrics missing {key:?}:\n{metrics}");
    }

    client.shutdown().expect("graceful drain");
    server.join();
}

/// A full bounded queue answers `503` with a `Retry-After` header for a
/// *distinct* spec — and because submissions use `try_send`, the accept
/// loop keeps answering (`/healthz` works while the queue is jammed).
/// An *identical* spec never sees the 503: it coalesces onto the queued
/// leader without needing a slot.
#[test]
fn full_queue_answers_503_with_retry_after_and_keeps_accepting() {
    let (server, client) = boot(ServeConfig {
        queue_capacity: 1,
        paused: true, // runners gated: the queue fills deterministically
        ..ServeConfig::default()
    });

    // Seed 3 takes the only slot; seed 4 is a different fingerprint, so
    // it must contend for the queue — and bounce.
    let first = client.submit(&smoke_request(3)).expect("fits the queue");
    let body = serde_json::to_string(&smoke_request(4)).expect("encodes");
    let rejected = client.post_json("/runs", &body).expect("transport ok");
    assert_eq!(rejected.status, Status::ServiceUnavailable);
    assert_eq!(
        rejected.headers.get("retry-after").map(String::as_str),
        Some("1"),
        "503 must carry Retry-After: {:?}",
        rejected.headers
    );
    assert!(rejected.body.contains("queue is full"), "{}", rejected.body);

    // The jammed queue never blocks the accept loop.
    let health = client.get("/healthz").expect("still accepting");
    assert_eq!(health.status, Status::Ok);
    let err = client.submit(&smoke_request(4)).expect_err("full queue");
    assert!(err.contains("503"), "client surfaces the 503: {err}");

    // An identical resubmission does NOT need a queue slot: it rides
    // the queued leader.
    let dup = client
        .submit(&smoke_request(3))
        .expect("identical spec coalesces instead of bouncing");

    server.service().resume();
    client
        .wait_done(&first, Duration::from_secs(120))
        .expect("accepted job still runs");
    let dup_snap = client
        .wait_done(&dup, Duration::from_secs(120))
        .expect("follower settles with the leader");
    assert_eq!(dup_snap.coalesced_into.as_deref(), Some(first.as_str()));
    assert_eq!(
        client.report(&dup).expect("follower report"),
        client.report(&first).expect("leader report"),
        "follower and leader serve the same bytes"
    );
    let metrics = client.metrics().expect("metrics");
    assert!(metrics.contains("jobs_rejected 2\n"), "{metrics}");
    assert!(metrics.contains("jobs_coalesced 1\n"), "{metrics}");

    client.shutdown().expect("graceful drain");
    server.join();
}

/// `POST /shutdown` drains: jobs queued *before* the shutdown still run
/// to completion before `join` returns, and new submissions are refused
/// while draining.
#[test]
fn graceful_shutdown_drains_queued_jobs() {
    let (server, client) = boot(ServeConfig {
        paused: true, // both jobs are still queued when shutdown arrives
        ..ServeConfig::default()
    });
    let a = client.submit(&smoke_request(11)).expect("queued");
    let b = client.submit(&smoke_request(12)).expect("queued");

    client.shutdown().expect("drain begins");
    let refused = client.submit(&smoke_request(13)).expect_err("draining");
    assert!(refused.contains("503"), "{refused}");

    let service = server.service();
    server.join(); // returns only after the drain finishes

    for id in [&a, &b] {
        let snap = service
            .snapshot(pd_serve::service::parse_job_id(id).expect("j-N id"))
            .expect("job exists");
        assert_eq!(snap.status, "done", "{id} must finish before join returns");
        assert!(snap.has_report, "{id} kept its report through the drain");
    }
    assert!(service.metrics_text().contains("jobs_done 2\n"));
}

/// By-name submissions fall back to the spec search path, and a typo'd
/// name gets a did-you-mean in the 400 body.
#[test]
fn submit_by_name_searches_spec_path_and_suggests_on_typo() {
    let dir = std::env::temp_dir().join(format!("pd-serve-specs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let spec = ScenarioRegistry::builtin()
        .get("smoke")
        .expect("smoke is builtin")
        .clone();
    let mut renamed = spec;
    renamed.name = "smoke-from-path".to_owned();
    std::fs::write(dir.join("smoke-from-path.json"), renamed.to_json_pretty()).expect("write spec");
    // Process-wide: fine here, this suite is its own test binary and no
    // other case reads the search path.
    std::env::set_var(pd_core::SPEC_PATH_ENV, &dir);

    let (server, client) = boot(ServeConfig::default());
    let id = client
        .submit(&SubmitRequest {
            scenario: Some("smoke-from-path".to_owned()),
            profile: Some("smoke".to_owned()),
            ..SubmitRequest::default()
        })
        .expect("resolved via $PD_SPEC_PATH");
    let snap = client
        .wait_done(&id, Duration::from_secs(120))
        .expect("spec-path job runs");
    assert_eq!(snap.scenario, "smoke-from-path");

    let err = client
        .submit(&SubmitRequest {
            scenario: Some("smoek".to_owned()),
            ..SubmitRequest::default()
        })
        .expect_err("unknown name");
    assert!(err.contains("400"), "{err}");
    assert!(err.contains("did you mean \\\"smoke\\\"?"), "{err}");

    client.shutdown().expect("graceful drain");
    server.join();
    std::fs::remove_dir_all(&dir).ok();
}

/// The HTTP surface: liveness, listing, 404s with a JSON error body.
#[test]
fn http_surface_lists_jobs_and_404s_unknown_routes() {
    let (server, client) = boot(ServeConfig::default());

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, Status::Ok);
    assert_eq!(health.body, "ok\n");

    let id = client.submit(&smoke_request(5)).expect("accepted");
    client
        .wait_done(&id, Duration::from_secs(120))
        .expect("finishes");
    let runs = client.runs().expect("listing");
    assert_eq!(runs.runs.len(), 1);
    assert_eq!(runs.runs[0].id, id);
    assert_eq!(runs.runs[0].scenario, "smoke");

    for path in ["/nope", "/runs/j-99", "/runs/j-99/report", "/runs/bogus"] {
        let resp = client.get(path).expect("transport ok");
        assert_eq!(resp.status, Status::NotFound, "{path}");
        assert!(resp.body.contains("error"), "{path}: {}", resp.body);
    }

    client.shutdown().expect("graceful drain");
    server.join();
}
