//! Detector vs ground truth: the evaluation the original paper could not
//! run. The simulator knows exactly which retailers discriminate and
//! how; the measurement pipeline must rediscover that — no more, no
//! less.

use pd_core::{Experiment, ExperimentConfig};
use pd_crawler::{CrawlConfig, Crawler};
use pd_util::Seed;

#[test]
fn every_crawled_discriminator_is_detected() {
    let exp = Experiment::new(ExperimentConfig::small(1307));
    let world = exp.world();
    let targets = world.paper_crawl_targets();
    let crawler = Crawler::new(
        Seed::new(1),
        CrawlConfig {
            products_per_retailer: 15,
            days: 2,
            start_day: 45,
            ..CrawlConfig::default()
        },
    );
    let (store, _) = crawler.crawl(&world.web, &world.sheriff, &targets);
    let frame = pd_analysis::CheckFrame::build(&store, world.web.fx());
    let extents = pd_analysis::crawl::fig3_extent(&frame);
    for bar in &extents {
        assert!(
            bar.extent > 0.0,
            "{} discriminates (ground truth) but was never flagged",
            bar.domain
        );
    }
    assert_eq!(extents.len(), 21);
}

#[test]
fn uniform_retailers_are_never_flagged() {
    // Zero false positives: crawling non-discriminating long-tail
    // domains must yield zero confirmed variations, across currencies.
    let exp = Experiment::new(ExperimentConfig::small(1307));
    let world = exp.world();
    let uniform: Vec<String> = world
        .web
        .servers()
        .iter()
        .filter(|s| !s.spec().is_discriminating() && !s.spec().inlines_tax)
        .take(8)
        .map(|s| s.spec().domain.clone())
        .collect();
    assert!(!uniform.is_empty());
    let crawler = Crawler::new(
        Seed::new(2),
        CrawlConfig {
            products_per_retailer: 10,
            days: 2,
            start_day: 45,
            ..CrawlConfig::default()
        },
    );
    let (store, _) = crawler.crawl(&world.web, &world.sheriff, &uniform);
    let frame = pd_analysis::CheckFrame::build(&store, world.web.fx());
    let false_positives: Vec<_> = frame.rows().iter().filter(|r| r.genuine).collect();
    assert!(
        false_positives.is_empty(),
        "uniform retailers flagged: {:?}",
        false_positives
            .iter()
            .map(|r| (&r.domain, &r.slug, r.ratio))
            .collect::<Vec<_>>()
    );
}

#[test]
fn measured_ratios_match_ground_truth_factors() {
    // For a pure multiplicative retailer the measured per-location ratio
    // must equal the configured factor to within cent rounding and FX
    // noise.
    let exp = Experiment::new(ExperimentConfig::small(1307));
    let world = exp.world();
    let crawler = Crawler::new(
        Seed::new(3),
        CrawlConfig {
            products_per_retailer: 20,
            days: 1,
            start_day: 45,
            ..CrawlConfig::default()
        },
    );
    let (store, _) = crawler.crawl(
        &world.web,
        &world.sheriff,
        &["www.digitalrev.com".to_owned()],
    );
    let frame = pd_analysis::CheckFrame::build(&store, world.web.fx());
    let finland = world.vantage_by_label("Finland - Tampere").unwrap().id;
    let ny = world.vantage_by_label("USA - New York").unwrap().id;
    for row in frame.rows() {
        let fi = row.usd_at(finland).expect("Finland extraction");
        let base = row.usd_at(ny).expect("NY extraction");
        let ratio = fi / base;
        assert!(
            (ratio - 1.26).abs() < 0.01,
            "{}: measured {ratio}, ground truth 1.26",
            row.slug
        );
    }
}

#[test]
fn cleaning_catches_injected_noise_with_high_recall() {
    let mut config = ExperimentConfig::small(11);
    config.crowd.checks = 250;
    config.crowd.customization_noise = 0.15;
    config.crowd.mis_highlight_noise = 0.0;
    let mut exp = Experiment::new(config);
    let (raw, _, report) = exp.run_crowd_phase();
    let truly_noisy = raw
        .records()
        .iter()
        .filter(|m| m.noise_truth != pd_sheriff::measurement::NoiseTruth::Clean)
        .count();
    assert!(truly_noisy > 10, "noise injection too weak: {truly_noisy}");
    let recall = report.dropped_truly_noisy as f64 / truly_noisy as f64;
    assert!(
        recall > 0.9,
        "cleaning recall {recall:.2} ({}/{truly_noisy})",
        report.dropped_truly_noisy
    );
}

#[test]
fn tax_inliners_are_excluded_from_crowd_analysis() {
    // The injected tax-confound domains must not survive into the
    // cleaned crowd dataset (the paper's manual tax check).
    let mut config = ExperimentConfig::small(13);
    config.crowd.checks = 300;
    let mut exp = Experiment::new(config);
    let (_, cleaned, _) = exp.run_crowd_phase();
    let inliners: Vec<String> = exp
        .world()
        .web
        .servers()
        .iter()
        .filter(|s| s.spec().inlines_tax)
        .map(|s| s.spec().domain.clone())
        .collect();
    assert!(!inliners.is_empty(), "confound must exist in the world");
    for domain in &inliners {
        assert_eq!(
            cleaned.by_domain(domain).count(),
            0,
            "{domain} (tax inliner) survived cleaning"
        );
    }
}
