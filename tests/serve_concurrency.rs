//! The runner-pool + coalescing contracts (ISSUE 8 acceptance):
//!
//! * **16-client hammer** — 16 client threads submit a mix of 4
//!   distinct specs to a 4-runner daemon while the pool is gated;
//!   exactly 4 jobs execute (one per distinct fingerprint), the other
//!   12 coalesce (`/metrics` shows `jobs_coalesced 12`), and every one
//!   of the 16 served reports is byte-identical to the offline
//!   `reports_to_json` output for its seed,
//! * **one build per fingerprint** — each leader executed with its own
//!   frame build (`frames_built > 0`), each follower never ran an
//!   engine (`frames_built == 0`, `coalesced_into` names its leader),
//! * **graceful drain under load** — `POST /shutdown` fired while the
//!   pool is mid-burst still finishes every accepted job before
//!   `Server::join` returns.
//!
//! **Ordering contract**: job ids are assigned in submission order, but
//! the pool executes and finishes them in any order — all assertions
//! are keyed per id. See `tests/README.md`.
//!
//! Everything runs in-process against a real `Server` on an ephemeral
//! port — real sockets, real HTTP/1.1 keep-alive connections, no mocks.

use pd_core::{reports_to_json, Experiment, Profile, ScenarioRegistry};
use pd_serve::{Client, ServeConfig, Server, SubmitRequest};
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::Duration;

/// A daemon on an ephemeral port plus a client pointed at it.
fn boot(config: ServeConfig) -> (Server, Client) {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..config
    })
    .expect("bind ephemeral port");
    let client = Client::new(&server.addr().to_string());
    client
        .wait_ready(Duration::from_secs(10))
        .expect("daemon answers /healthz");
    (server, client)
}

fn smoke_request(seed: u64) -> SubmitRequest {
    SubmitRequest {
        scenario: Some("smoke".to_owned()),
        seed: Some(seed),
        profile: Some("smoke".to_owned()),
        ..SubmitRequest::default()
    }
}

/// The offline report JSON for the same submission — what
/// `pd run smoke --seed N --profile smoke --json` would write.
fn offline_smoke_json(seed: u64) -> String {
    let spec = ScenarioRegistry::builtin()
        .get("smoke")
        .expect("smoke is builtin")
        .clone();
    let arms = Experiment::builder()
        .spec(spec)
        .seed(seed)
        .profile(Profile::parse("smoke").expect("smoke profile"))
        .run_sweep()
        .expect("offline smoke runs");
    let reports: Vec<(String, pd_core::Report)> = arms
        .into_iter()
        .map(|arm| (arm.label, arm.analysis.report.clone()))
        .collect();
    reports_to_json(&reports)
}

const SEEDS: [u64; 4] = [21, 22, 23, 24];

/// 16 clients, 4 distinct specs, 4 runners: the pool is gated while all
/// 16 submissions land, so exactly one leader per fingerprint takes a
/// queue slot and the other 12 submissions attach as followers. Resume,
/// and the 4 leaders execute concurrently; everyone gets bytes
/// identical to the offline run for their seed.
#[test]
fn sixteen_clients_coalesce_onto_four_executions() {
    let offline: HashMap<u64, String> = SEEDS
        .iter()
        .map(|&seed| (seed, offline_smoke_json(seed)))
        .collect();
    let (server, client) = boot(ServeConfig {
        runners: 4,
        queue_capacity: 8,
        paused: true, // gate the pool: all 16 submissions land first
        ..ServeConfig::default()
    });

    let results: Vec<(u64, String)> = std::thread::scope(|scope| {
        let (submitted_tx, submitted_rx) = mpsc::channel::<()>();
        let handles: Vec<_> = (0..16)
            .map(|i| {
                // Each thread gets its own client — its own keep-alive
                // connection hammering the daemon in parallel.
                let client = client.clone();
                let seed = SEEDS[i % SEEDS.len()];
                let submitted = submitted_tx.clone();
                scope.spawn(move || {
                    let id = client.submit(&smoke_request(seed)).expect("accepted");
                    submitted.send(()).expect("main thread listening");
                    let snap = client
                        .wait_done(&id, Duration::from_secs(180))
                        .expect("job finishes");
                    assert_eq!(snap.status, "done", "{id}");
                    let report = client.report(&id).expect("report body");
                    (seed, id, report, snap)
                })
            })
            .collect();
        drop(submitted_tx);
        // Hold the gate until every submission is in, then release.
        for _ in 0..16 {
            submitted_rx.recv().expect("each thread submits");
        }
        server.service().resume();

        let mut out = Vec::new();
        let mut leaders = 0;
        let mut followers = 0;
        for handle in handles {
            let (seed, id, report, snap) = handle.join().expect("client thread");
            assert_eq!(
                report, offline[&seed],
                "{id} (seed {seed}): served report must be byte-identical \
                 to the offline run"
            );
            if let Some(leader) = &snap.coalesced_into {
                assert_ne!(leader, &id, "a follower's leader is another job");
                assert_eq!(snap.frames_built, 0, "{id}: followers never run");
                followers += 1;
            } else {
                assert!(
                    snap.frames_built > 0,
                    "{id}: each distinct fingerprint builds its own frames"
                );
                leaders += 1;
            }
            out.push((seed, id));
        }
        assert_eq!(leaders, 4, "exactly one execution per distinct spec");
        assert_eq!(followers, 12);
        out
    });

    // Every follower's leader ran the same seed.
    let seed_of: HashMap<&str, u64> = results
        .iter()
        .map(|(seed, id)| (id.as_str(), *seed))
        .collect();
    for (seed, id) in &results {
        let snap = client.job(id).expect("snapshot");
        if let Some(leader) = &snap.coalesced_into {
            assert_eq!(
                seed_of[leader.as_str()],
                *seed,
                "{id} must have coalesced onto a same-seed leader"
            );
        }
    }

    // jobs_done counts leaders and followers; jobs_coalesced counts
    // followers only — together they pin the execution count at 4.
    let metrics = client.metrics().expect("metrics");
    assert!(metrics.contains("jobs_coalesced 12\n"), "{metrics}");
    assert!(metrics.contains("jobs_done 16\n"), "{metrics}");
    assert!(metrics.contains("jobs_failed 0\n"), "{metrics}");

    client.shutdown().expect("graceful drain");
    server.join();
}

/// `POST /shutdown` in the middle of a burst: every job accepted before
/// the drain began — queued, running, or coalesced — finishes with a
/// report before `Server::join` returns.
#[test]
fn graceful_drain_under_load_finishes_every_accepted_job() {
    let (server, client) = boot(ServeConfig {
        runners: 4,
        queue_capacity: 8,
        ..ServeConfig::default()
    });

    // A burst of 8: 4 distinct specs, each submitted twice, so the pool
    // is busy and (depending on timing) some submissions coalesce.
    let ids: Vec<String> = (0..8)
        .map(|i| {
            client
                .submit(&smoke_request(SEEDS[i % SEEDS.len()]))
                .expect("accepted")
        })
        .collect();

    // Shutdown lands while runners are mid-job.
    client.shutdown().expect("drain begins");
    let service = server.service();
    server.join(); // returns only after the drain finishes — "exit 0"

    for id in &ids {
        let snap = service
            .snapshot(pd_serve::service::parse_job_id(id).expect("j-N id"))
            .expect("job exists");
        assert_eq!(snap.status, "done", "{id} must finish before join returns");
        assert!(snap.has_report, "{id} kept its report through the drain");
    }
    assert!(
        service.metrics_text().contains("jobs_done 8\n"),
        "{}",
        service.metrics_text()
    );
}
