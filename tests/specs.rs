//! The declarative-spec contracts (ISSUE 5 acceptance):
//!
//! * **golden** — every builtin scenario, round-tripped through its
//!   JSON spec, renders byte-identical reports to the registry version,
//!   across 1 and 4 threads,
//! * **property** — `ScenarioSpec` → JSON → `ScenarioSpec` is lossless:
//!   equal spec, identical fingerprint, identical lowered plans,
//! * **failure injection** — a spec-set failure rate drops the same
//!   requests at any thread count (the world keys failures, it does not
//!   sample them),
//! * **CLI** — `pd run --spec FILE.json` executes a checked-in-style
//!   spec, `pd scenarios show --json` emits a spec that parses back to
//!   the builtin, `--set` overrides compose, typos get did-you-mean,
//!   and spec runs record their spec in the artifact manifest.

use pd_core::spec::builtin_specs;
use pd_core::store::ArtifactStore;
use pd_core::{
    BuildError, ConfigPatch, Executor, Experiment, ExperimentConfig, NullObserver, Profile,
    RunPlan, ScenarioParams, ScenarioSpec, SweepAxis, World,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pd-specs-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn pd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pd"))
}

fn smoke_params() -> ScenarioParams {
    ScenarioParams {
        seed: 1307,
        profile: Profile::Smoke,
    }
}

/// Lowering is pure data → data: the JSON round trip of every builtin
/// produces exactly the plans the registry version produces.
#[test]
fn builtin_specs_lower_identically_after_json_round_trip() {
    for spec in builtin_specs() {
        let round_tripped = ScenarioSpec::from_json(&spec.to_json_pretty())
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let direct: Vec<(String, RunPlan)> = spec.plan(&smoke_params()).into_variants();
        let via_json: Vec<(String, RunPlan)> = round_tripped.plan(&smoke_params()).into_variants();
        assert_eq!(
            direct, via_json,
            "{} lowers differently via JSON",
            spec.name
        );
    }
}

/// The golden acceptance: every builtin scenario re-expressed as a JSON
/// spec renders a byte-identical report to the registry version — with
/// the registry run at 1 thread and the spec run at 4, so the equality
/// also pins thread-count determinism of the spec path.
#[test]
fn golden_spec_reports_byte_identical_to_registry_at_1_and_4_threads() {
    for spec in builtin_specs() {
        let name = spec.name.clone();
        let registry_arms: Vec<(String, String, String)> = Experiment::builder()
            .scenario(&name)
            .profile(Profile::Smoke)
            .seed(1307)
            .threads(1)
            .run_sweep()
            .unwrap_or_else(|e| panic!("{name} registry run: {e}"))
            .into_iter()
            .map(|arm| {
                (
                    arm.label,
                    arm.analysis.report.to_json(),
                    arm.analysis.report.render_all(),
                )
            })
            .collect();

        let round_tripped =
            ScenarioSpec::from_json(&spec.to_json_pretty()).expect("builtin round-trips");
        let spec_arms: Vec<(String, String, String)> = Experiment::builder()
            .spec(round_tripped)
            .profile(Profile::Smoke)
            .seed(1307)
            .threads(4)
            .run_sweep()
            .unwrap_or_else(|e| panic!("{name} spec run: {e}"))
            .into_iter()
            .map(|arm| {
                (
                    arm.label,
                    arm.analysis.report.to_json(),
                    arm.analysis.report.render_all(),
                )
            })
            .collect();

        assert_eq!(
            registry_arms, spec_arms,
            "{name}: spec run (4 threads) diverged from registry run (1 thread)"
        );
    }
}

/// An invalid spec surfaces as a typed build error, not a panic.
#[test]
fn builder_rejects_invalid_specs() {
    let invalid = ScenarioSpec {
        sweep: vec![SweepAxis::Seeds { count: 0 }],
        ..ScenarioSpec::single("broken", "zero-arm sweep")
    };
    assert!(matches!(
        Experiment::builder().spec(invalid).run_sweep(),
        Err(BuildError::InvalidSpec { .. })
    ));
}

/// A nonzero failure rate drops the same requests at any thread count
/// (failures are keyed hashes of (client, uri, second), not samples of
/// shared RNG state), and actually bites: fewer measurements than the
/// clean run, retries in the crawl.
#[test]
fn failure_rate_drops_the_same_requests_at_any_thread_count() {
    let mut config = ExperimentConfig::smoke(1307);
    config.world.failure_rate = 0.2;
    let plan = RunPlan::new(config);
    let world = World::build(&plan.config);

    let crowd = |threads: usize| {
        pd_core::stage::crowd_stage(&world, &plan, &Executor::new(threads), &NullObserver)
    };
    let serial = crowd(1);
    let fanned = crowd(4);
    let json = |a: &pd_core::CrowdArtifact| {
        serde_json::to_string(&serde_json::to_value(a)).expect("artifact serializes")
    };
    assert_eq!(
        json(&serial),
        json(&fanned),
        "failure injection must be deterministic across thread counts"
    );

    let clean_plan = RunPlan::new(ExperimentConfig::smoke(1307));
    let clean_world = World::build(&clean_plan.config);
    let clean = pd_core::stage::crowd_stage(
        &clean_world,
        &clean_plan,
        &Executor::serial(),
        &NullObserver,
    );
    assert!(
        serial.raw.len() < clean.raw.len(),
        "a 20% failure rate must drop crowd measurements ({} vs {})",
        serial.raw.len(),
        clean.raw.len()
    );

    let targets = world.paper_crawl_targets();
    let crawl = pd_core::stage::crawl_stage(
        &world,
        &plan.config,
        &targets,
        &Executor::new(4),
        &NullObserver,
    );
    let retries: usize = crawl.stats.iter().map(|s| s.retries).sum();
    assert!(retries > 0, "the crawler must retry injected failures");
}

/// The crowd-targeted crawl visits a genuinely different target set
/// than the paper's fixed list, and every extra domain it selects is a
/// true discriminator (the crowd signal, not noise, picks targets).
#[test]
fn targeted_crawl_selects_crowd_confirmed_discriminators() {
    let mut targeted = Experiment::builder()
        .scenario("targeted-crawl")
        .profile(Profile::Smoke)
        .seed(7)
        .build()
        .expect("targeted-crawl builds");
    let domains = targeted.crawl().store.domains();
    let mut paper = Experiment::builder()
        .scenario("paper")
        .profile(Profile::Smoke)
        .seed(7)
        .build()
        .expect("paper builds");
    assert_ne!(
        domains,
        paper.crawl().store.domains(),
        "targeted crawl must not just re-crawl the paper list"
    );
    for domain in &domains {
        let spec = targeted
            .world()
            .web
            .server_by_domain(domain)
            .map(|s| s.spec().clone());
        if let Some(spec) = spec {
            assert!(spec.is_discriminating(), "{domain} crawled but uniform");
        }
    }
}

proptest! {
    /// `ScenarioSpec` → JSON → `ScenarioSpec`: equal value, identical
    /// fingerprint, identical lowered plans — over randomized specs
    /// covering every axis kind, pinned/unpinned profiles and patch
    /// fields (including the f64 failure rate).
    #[test]
    fn prop_spec_json_round_trip_preserves_fingerprint(
        axes_mask in 0u8..64,
        seed_count in 1u64..4,
        rate_milli in 0u64..=1000,
        desync_mins in 0u64..90,
        scale_pct in 1u64..250,
        users in 1usize..300,
        pin in 0usize..5,
        name in "[a-z][a-z0-9-]{0,14}",
        label in "[a-z][a-z0-9]{0,6}",
    ) {
        let rate = rate_milli as f64 / 1000.0;
        let mut sweep = Vec::new();
        if axes_mask & 1 != 0 {
            sweep.push(SweepAxis::Seeds { count: seed_count });
        }
        if axes_mask & 2 != 0 {
            sweep.push(SweepAxis::Locales { arms: vec![
                pd_core::spec::LocaleArm { label: format!("{label}-us"), country: pd_net::geo::Country::UnitedStates },
                pd_core::spec::LocaleArm { label: format!("{label}-jp"), country: pd_net::geo::Country::Japan },
            ]});
        }
        if axes_mask & 4 != 0 {
            sweep.push(SweepAxis::CrowdSizes { arms: vec![
                pd_core::spec::CrowdSizeArm { label: format!("{label}-a"), scale_pct },
                pd_core::spec::CrowdSizeArm { label: format!("{label}-b"), scale_pct: scale_pct + 50 },
            ]});
        }
        if axes_mask & 8 != 0 {
            sweep.push(SweepAxis::FailureRates { arms: vec![
                pd_core::spec::FailureRateArm { label: format!("{label}-f"), rate },
            ]});
        }
        if axes_mask & 16 != 0 {
            sweep.push(SweepAxis::DesyncMins { arms: vec![
                pd_core::spec::DesyncArm { label: format!("{label}-d"), mins: desync_mins },
            ]});
        }
        if axes_mask & 32 != 0 {
            sweep.push(SweepAxis::VantageSubsets { arms: vec![
                pd_core::spec::VantageArm {
                    label: format!("{label}-v"),
                    labels: vec!["USA - Boston".to_owned(), "Finland - Tampere".to_owned()],
                },
            ]});
        }
        let profiles = ["smoke", "small", "medium", "paper"];
        let spec = ScenarioSpec {
            name,
            describe: "randomized spec".to_owned(),
            base: (pin > 0).then(|| profiles[pin - 1].to_owned()),
            patch: ConfigPatch {
                users: Some(users),
                failure_rate: Some(rate),
                desync_mins: Some(desync_mins),
                ..ConfigPatch::default()
            },
            sweep,
        };
        prop_assert!(spec.validate().is_ok(), "generated specs are valid by construction");

        let json = spec.to_json_pretty();
        let back = ScenarioSpec::from_json(&json).expect("round trip parses");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.fingerprint(), spec.fingerprint());

        let params = smoke_params();
        let direct = spec.plan(&params).into_variants();
        let via_json = back.plan(&params).into_variants();
        prop_assert_eq!(direct, via_json, "lowering must be JSON-stable");
    }
}

/// `pd scenarios show NAME --json` emits exactly the builtin spec, and
/// the emitted JSON feeds straight back into `pd run --spec`.
#[test]
fn cli_scenarios_show_round_trips_and_spec_runs() {
    let dir = tmp("cli-show");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let show = pd()
        .args(["scenarios", "show", "targeted-crawl", "--json"])
        .output()
        .expect("pd runs");
    assert!(show.status.success(), "show failed: {show:?}");
    let json = String::from_utf8(show.stdout).expect("utf8");
    let spec = ScenarioSpec::from_json(&json).expect("emitted spec parses");
    let builtin = builtin_specs()
        .into_iter()
        .find(|s| s.name == "targeted-crawl")
        .expect("builtin exists");
    assert_eq!(spec, builtin, "show must dump the builtin verbatim");

    let spec_file = dir.join("targeted.json");
    std::fs::write(&spec_file, &json).expect("write spec");
    let direct_json = dir.join("direct.json");
    let via_spec_json = dir.join("via-spec.json");
    let direct = pd()
        .args([
            "run",
            "targeted-crawl",
            "--profile",
            "smoke",
            "--seed",
            "9",
            "--json",
        ])
        .arg(&direct_json)
        .output()
        .expect("pd runs");
    assert!(direct.status.success(), "direct run failed: {direct:?}");
    let via_spec = pd()
        .args(["run", "--spec"])
        .arg(&spec_file)
        .args([
            "--profile",
            "smoke",
            "--seed",
            "9",
            "--threads",
            "2",
            "--json",
        ])
        .arg(&via_spec_json)
        .output()
        .expect("pd runs");
    assert!(via_spec.status.success(), "spec run failed: {via_spec:?}");
    assert_eq!(
        std::fs::read(&direct_json).expect("direct report"),
        std::fs::read(&via_spec_json).expect("spec report"),
        "spec file run must reproduce the registry run byte-for-byte"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `--set` overrides reach the run (fewer checks requested → fewer
/// crowd requests reported), bad keys/values and typo'd scenario names
/// are usage errors with helpful stderr.
#[test]
fn cli_set_overrides_and_error_paths() {
    let out = pd()
        .args([
            "run",
            "smoke",
            "--set",
            "crowd.checks=10",
            "--set",
            "crowd.users=5",
        ])
        .output()
        .expect("pd runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        stdout.contains("crowd requests:        10"),
        "--set crowd.checks must shrink the campaign:\n{stdout}"
    );

    let bad_key = pd()
        .args(["run", "smoke", "--set", "warp.speed=9"])
        .output()
        .expect("pd runs");
    assert_eq!(
        bad_key.status.code(),
        Some(2),
        "bad --set key is a usage error"
    );
    assert!(String::from_utf8_lossy(&bad_key.stderr).contains("unknown key"));

    let bad_value = pd()
        .args(["run", "smoke", "--set", "world.failure_rate=2.0"])
        .output()
        .expect("pd runs");
    assert_eq!(bad_value.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_value.stderr).contains("outside [0, 1]"));

    let conflict = pd()
        .args(["run", "failure-sweep", "--set", "world.failure_rate=0.9"])
        .output()
        .expect("pd runs");
    assert_eq!(
        conflict.status.code(),
        Some(1),
        "an override a sweep axis clobbers must be refused"
    );
    assert!(String::from_utf8_lossy(&conflict.stderr).contains("FailureRates sweep axis"));

    let typo_spec = tmp("typo-spec");
    std::fs::create_dir_all(&typo_spec).expect("mkdir");
    let typo_file = typo_spec.join("typo.json");
    std::fs::write(
        &typo_file,
        r#"{"name":"x","describe":"d","base":null,"patch":{"failure_rat":0.5},"sweep":[]}"#,
    )
    .expect("write");
    let unknown_key = pd()
        .args(["run", "--spec"])
        .arg(&typo_file)
        .output()
        .expect("pd runs");
    assert_eq!(
        unknown_key.status.code(),
        Some(1),
        "a misspelled spec key must not silently run the baseline"
    );
    assert!(String::from_utf8_lossy(&unknown_key.stderr).contains("failure_rat"));
    std::fs::remove_dir_all(&typo_spec).ok();

    let typo = pd().args(["run", "crowd-swep"]).output().expect("pd runs");
    assert_eq!(typo.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&typo.stderr);
    assert!(
        stderr.contains("did you mean \"crowd-sweep\"?"),
        "typo must get a did-you-mean hint:\n{stderr}"
    );

    let neither = pd().args(["run"]).output().expect("pd runs");
    assert_eq!(neither.status.code(), Some(2));
    let both = pd()
        .args(["run", "smoke", "--spec", "nope.json"])
        .output()
        .expect("pd runs");
    assert_eq!(
        both.status.code(),
        Some(2),
        "scenario AND --spec is ambiguous"
    );
}

/// A spec-driven artifact store records the exact producing spec in its
/// manifest, and a second engine built from that recorded spec reloads
/// the store without recomputing.
#[test]
fn spec_runs_record_their_spec_in_the_manifest() {
    let dir = tmp("manifest-spec");
    let spec = ScenarioSpec {
        patch: ConfigPatch {
            failure_rate: Some(0.05),
            ..ConfigPatch::default()
        },
        ..ScenarioSpec::single("flaky-once", "5% failures, single run")
    };
    let mut arms = Experiment::builder()
        .spec(spec.clone())
        .profile(Profile::Smoke)
        .seed(11)
        .artifacts(dir.clone())
        .run_sweep()
        .expect("spec runs");
    assert_eq!(arms.len(), 1);
    let arm = arms.remove(0);
    arm.engine.save_artifacts(&dir).expect("save");

    let manifest = ArtifactStore::open(&dir)
        .expect("store opens")
        .manifest()
        .clone();
    let recorded = manifest.spec.expect("manifest records the spec");
    assert_eq!(recorded, spec);
    assert_eq!(manifest.provenance.scenario, "flaky-once");

    // The recorded spec is executable: a fresh engine built from it
    // reuses every stored measurement stage.
    let mut reloaded = Experiment::builder()
        .spec(recorded)
        .profile(Profile::Smoke)
        .seed(11)
        .artifacts(dir.clone())
        .build()
        .expect("recorded spec builds");
    let report = reloaded.run();
    assert_eq!(
        reloaded.loaded_stages().len(),
        3,
        "all measurement stages must come from the store"
    );
    assert_eq!(report.to_json(), arm.analysis.report.to_json());
    std::fs::remove_dir_all(&dir).ok();
}
