//! The artifact-persistence contracts (ISSUE 3 acceptance):
//!
//! * save → load round-trips are **byte-identical** — property-tested
//!   over randomized measurement artifacts, and end-to-end over a full
//!   smoke `Report`,
//! * corrupted files and stale fingerprints are rejected (the engine
//!   recomputes; it never trusts a file name),
//! * a stored smoke crawl re-analyzes **across processes**: `pd run
//!   --artifacts` then `pd rerun` in a fresh process reproduce the
//!   direct run's JSON exactly, and the CLI's error paths exit nonzero
//!   on stderr.

use pd_core::store::{self, ArtifactStore, EntryHealth, Provenance, StoreError, StoreFormat};
use pd_core::{
    CrawlArtifact, CrowdArtifact, Experiment, ExperimentConfig, RunPlan, StageKind, TimingObserver,
};
use pd_currency::{Currency, Price};
use pd_net::clock::SimTime;
use pd_sheriff::measurement::{Measurement, NoiseTruth, PriceObservation};
use pd_sheriff::MeasurementStore;
use pd_util::{Money, RequestId, UserId, VantageId};
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pd-artifacts-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Builds a measurement from flat random draws (the property tests
/// randomize the payload, not the pipeline).
#[allow(clippy::cast_possible_truncation)]
fn measurement(i: u64, minor: i64, domain_tag: &str, fail: bool, time_ms: u64) -> Measurement {
    let currency = Currency::ALL[(i as usize) % Currency::ALL.len()];
    let price = Price::new(Money::from_minor(minor), currency);
    let observations = (0..(i % 4))
        .map(|v| {
            if fail && v == 0 {
                PriceObservation::failed(VantageId::new(v as u32), format!("boom {v}"))
            } else {
                PriceObservation::ok(
                    VantageId::new(v as u32),
                    price,
                    format!("{} \"{domain_tag}\"\n€", price.amount),
                )
            }
        })
        .collect();
    Measurement {
        request: RequestId::new(0),
        user: UserId::new((i % 97) as u32),
        domain: format!("www.{domain_tag}.example"),
        product_slug: format!("prod-{i}"),
        time: SimTime::from_millis(time_ms),
        user_price: (!fail).then_some(price),
        observations,
        noise_truth: match i % 3 {
            0 => NoiseTruth::Clean,
            1 => NoiseTruth::Customization,
            _ => NoiseTruth::MisHighlight,
        },
    }
}

proptest! {
    /// Save → load → save again: the second file must be byte-identical
    /// to the first, over randomized artifact contents (prices of every
    /// sign and currency, failure strings with escapes, arbitrary
    /// check times).
    #[test]
    fn prop_store_round_trip_is_byte_identical(
        n in 1usize..12,
        minor in -1_000_000i64..10_000_000,
        tag in "[a-z0-9]{1,12}",
        time_ms in 0u64..10_000_000_000,
        seed in 0u64..1_000_000,
    ) {
        let dir = tmp(&format!("prop-{seed}-{n}"));
        let plan = RunPlan::new(ExperimentConfig::smoke(seed));
        let mut raw = MeasurementStore::new();
        for i in 0..n as u64 {
            raw.push(measurement(i.wrapping_add(seed), minor + i as i64, &tag, i % 5 == 0, time_ms + i));
        }
        let artifact = CrowdArtifact {
            cleaned: raw.clone(),
            raw,
            cleaning: pd_sheriff::cleaning::CleaningReport {
                kept: n,
                dropped_inconsistent: n / 2,
                dropped_unhealthy: 0,
                dropped_tax_explained: 1,
                dropped_truly_noisy: 0,
                kept_truly_noisy: n / 3,
            },
        };
        let fp = store::crowd_fingerprint(&plan);
        let mut s = ArtifactStore::create(&dir, Provenance::new("prop", "", "smoke", seed, 1), &plan, None)
            .expect("store creates");
        s.save("crowd", fp, &[], &artifact).expect("first save");
        let first = std::fs::read(dir.join("crowd.json")).expect("artifact file exists");

        let loaded: CrowdArtifact = ArtifactStore::open(&dir)
            .expect("store reopens")
            .load("crowd", fp)
            .expect("round-trip load");
        prop_assert_eq!(loaded.raw.len(), artifact.raw.len());
        prop_assert_eq!(loaded.raw.records(), artifact.raw.records());
        prop_assert_eq!(loaded.cleaning, artifact.cleaning);

        s.save("crowd", fp, &[], &loaded).expect("re-save");
        let second = std::fs::read(dir.join("crowd.json")).expect("artifact file exists");
        prop_assert_eq!(first, second, "round-trip must be byte-identical");
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    /// The binary payload format agrees with JSON: the same artifact
    /// saved both ways loads to identical records, and the binary
    /// save → load → save loop is byte-identical on disk — over
    /// randomized contents (prices of every sign and currency, failure
    /// strings with escapes, arbitrary check times).
    #[test]
    fn prop_binary_store_matches_json(
        n in 1usize..12,
        minor in -1_000_000i64..10_000_000,
        tag in "[a-z0-9]{1,12}",
        time_ms in 0u64..10_000_000_000,
        seed in 0u64..1_000_000,
    ) {
        let json_dir = tmp(&format!("prop-fmt-json-{seed}-{n}"));
        let bin_dir = tmp(&format!("prop-fmt-bin-{seed}-{n}"));
        let plan = RunPlan::new(ExperimentConfig::smoke(seed));
        let mut raw = MeasurementStore::new();
        for i in 0..n as u64 {
            raw.push(measurement(i.wrapping_add(seed), minor + i as i64, &tag, i % 5 == 0, time_ms + i));
        }
        let artifact = CrowdArtifact {
            cleaned: raw.clone(),
            raw,
            cleaning: pd_sheriff::cleaning::CleaningReport {
                kept: n,
                dropped_inconsistent: n / 2,
                dropped_unhealthy: 0,
                dropped_tax_explained: 1,
                dropped_truly_noisy: 0,
                kept_truly_noisy: n / 3,
            },
        };
        let fp = store::crowd_fingerprint(&plan);
        let provenance = Provenance::new("prop", "", "smoke", seed, 1);
        let mut json_store = ArtifactStore::create(&json_dir, provenance.clone(), &plan, None)
            .expect("json store creates");
        json_store.save("crowd", fp, &[], &artifact).expect("json save");
        let mut bin_store = ArtifactStore::create(&bin_dir, provenance, &plan, None)
            .expect("binary store creates");
        bin_store.set_format(StoreFormat::Binary);
        bin_store.save("crowd", fp, &[], &artifact).expect("binary save");
        let first = std::fs::read(bin_dir.join("crowd.bin")).expect("binary file exists");

        let from_json: CrowdArtifact = ArtifactStore::open(&json_dir)
            .expect("json store reopens")
            .load("crowd", fp)
            .expect("json load");
        let from_bin: CrowdArtifact = ArtifactStore::open(&bin_dir)
            .expect("binary store reopens")
            .load("crowd", fp)
            .expect("binary load");
        prop_assert_eq!(from_bin.raw.records(), from_json.raw.records());
        prop_assert_eq!(from_bin.cleaned.records(), from_json.cleaned.records());
        prop_assert_eq!(from_bin.cleaning, from_json.cleaning);

        bin_store.save("crowd", fp, &[], &from_bin).expect("binary re-save");
        let second = std::fs::read(bin_dir.join("crowd.bin")).expect("binary file exists");
        prop_assert_eq!(first, second, "binary round-trip must be byte-identical");
        std::fs::remove_dir_all(&json_dir).ok();
        std::fs::remove_dir_all(&bin_dir).ok();
    }
}

/// The full acceptance loop in-process: a saved smoke run reloads into a
/// byte-identical `Report`, with the observer proving the measurement
/// stages never re-ran.
#[test]
fn stored_smoke_report_is_byte_identical() {
    let dir = tmp("byte-identical");
    let mut producer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .build()
        .expect("smoke builds");
    let direct = producer.run();
    producer.save_artifacts(&dir).expect("save");

    let observer = Arc::new(TimingObserver::new());
    let mut consumer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .observer(observer.clone())
        .artifacts(dir.clone())
        .build()
        .expect("smoke builds");
    let reloaded = consumer.run();
    assert_eq!(direct.to_json(), reloaded.to_json(), "JSON must match");
    assert_eq!(
        direct.render_all(),
        reloaded.render_all(),
        "rendered report must match byte for byte"
    );
    for kind in [StageKind::Crowd, StageKind::Crawl, StageKind::Personas] {
        assert_eq!(observer.starts(kind), 0, "{kind} must not recompute");
        assert_eq!(observer.loads(kind), 1, "{kind} must load from the store");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Corruption is rejected: a scribbled-over artifact file fails its
/// envelope check, the engine recomputes, and `verify` flags the entry.
#[test]
fn corrupted_artifacts_are_rejected_and_recomputed() {
    let dir = tmp("corrupt");
    let mut producer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .build()
        .expect("smoke builds");
    producer.crowd();
    producer.save_artifacts(&dir).expect("save");
    std::fs::write(dir.join("crowd.json"), "{\"schema_version\":1,").expect("corrupt the file");

    let s = ArtifactStore::open(&dir).expect("manifest still fine");
    let fp = store::crowd_fingerprint(&RunPlan::new(ExperimentConfig::smoke(7)));
    assert!(matches!(
        s.load::<CrowdArtifact>("crowd", fp),
        Err(StoreError::Corrupt { .. })
    ));
    assert!(matches!(s.verify()[0].1, EntryHealth::Corrupt(_)));

    let observer = Arc::new(TimingObserver::new());
    let mut consumer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .observer(observer.clone())
        .artifacts(dir.clone())
        .build()
        .expect("smoke builds");
    consumer.crowd();
    assert_eq!(observer.loads(StageKind::Crowd), 0, "corrupt must not load");
    assert_eq!(
        observer.starts(StageKind::Crowd),
        1,
        "corrupt must recompute"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Binary corruption is rejected chunk-by-chunk: scribbling over the
/// chunk region fails the per-chunk checksums at open, both the full
/// load and the streaming probe report `Corrupt`, and the engine falls
/// back to recomputing the stage.
#[test]
fn corrupted_binary_chunks_are_rejected_and_recomputed() {
    let dir = tmp("corrupt-binary");
    let mut producer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .store_format(StoreFormat::Binary)
        .build()
        .expect("smoke builds");
    producer.crawl();
    producer.save_artifacts(&dir).expect("save");

    // Flip bytes near the end of the file — inside the last domain
    // chunk, well past the header — then also try a truncated copy.
    let path = dir.join("crawl.bin");
    let pristine = std::fs::read(&path).expect("binary artifact exists");
    let mut flipped = pristine.clone();
    let at = flipped.len() - 32;
    for b in &mut flipped[at..] {
        *b ^= 0xff;
    }
    let fp = store::crawl_fingerprint(&RunPlan::new(ExperimentConfig::smoke(7)));
    for (label, bytes) in [
        ("flipped", flipped),
        ("truncated", pristine[..pristine.len() - 16].to_vec()),
    ] {
        std::fs::write(&path, bytes).expect("corrupt the file");
        let s = ArtifactStore::open(&dir).expect("manifest still fine");
        assert!(
            matches!(
                s.load::<CrawlArtifact>("crawl", fp),
                Err(StoreError::Corrupt { .. })
            ),
            "{label} chunk must fail the full load"
        );
        assert!(
            matches!(s.open_chunked("crawl", fp), Err(StoreError::Corrupt { .. })),
            "{label} chunk must fail the streaming probe"
        );
    }

    let observer = Arc::new(TimingObserver::new());
    let mut consumer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .observer(observer.clone())
        .artifacts(dir.clone())
        .build()
        .expect("smoke builds");
    consumer.crawl();
    assert_eq!(observer.loads(StageKind::Crawl), 0, "corrupt must not load");
    assert_eq!(
        observer.starts(StageKind::Crawl),
        1,
        "corrupt must recompute"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Formats and container versions mix freely within one store: a v2-era
/// JSON crawl (schema_version 2 envelope, no format/chunks manifest
/// keys) sits beside v3 binary stages, and a consumer loads all of them
/// into a byte-identical report.
#[test]
fn mixed_version_mixed_format_store_loads() {
    let dir = tmp("mixed-version");
    let mut producer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .store_format(StoreFormat::Binary)
        .build()
        .expect("smoke builds");
    let direct = producer.run();
    producer.save_artifacts(&dir).expect("save");

    // Re-save the crawl the way a v2 build laid it down: JSON payload,
    // schema_version 2 envelope, manifest entry without format/chunks.
    let plan = RunPlan::new(ExperimentConfig::smoke(7));
    let fp = store::crawl_fingerprint(&plan);
    let mut s = ArtifactStore::open(&dir).expect("store opens");
    let crawl: CrawlArtifact = s.load("crawl", fp).expect("binary crawl loads");
    s.set_format(StoreFormat::Json);
    s.save("crawl", fp, &[], &crawl).expect("json re-save");
    let envelope_path = dir.join("crawl.json");
    let mut envelope: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&envelope_path).expect("read"))
            .expect("parse");
    if let serde_json::Value::Object(map) = &mut envelope {
        map.insert("schema_version".to_owned(), serde_json::Value::UInt(2));
    }
    std::fs::write(
        &envelope_path,
        serde_json::to_string(&envelope).expect("render"),
    )
    .expect("write");
    let manifest_path = dir.join("manifest.json");
    let mut manifest: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&manifest_path).expect("read"))
            .expect("parse");
    if let serde_json::Value::Object(map) = &mut manifest {
        if let Some(serde_json::Value::Array(entries)) = map.get_mut("entries") {
            for entry in entries {
                if let serde_json::Value::Object(entry) = entry {
                    if entry.get("stage") == Some(&serde_json::Value::String("crawl".to_owned())) {
                        entry.remove("format");
                        entry.remove("chunks");
                    }
                }
            }
        }
    }
    std::fs::write(
        &manifest_path,
        serde_json::to_string_pretty(&manifest).expect("render"),
    )
    .expect("write");

    let observer = Arc::new(TimingObserver::new());
    let mut consumer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .observer(observer.clone())
        .artifacts(dir.clone())
        .build()
        .expect("smoke builds");
    let reloaded = consumer.run();
    assert_eq!(direct.to_json(), reloaded.to_json(), "JSON must match");
    for kind in [StageKind::Crowd, StageKind::Crawl, StageKind::Personas] {
        assert_eq!(observer.starts(kind), 0, "{kind} must not recompute");
        assert_eq!(observer.loads(kind), 1, "{kind} must load from the store");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Stale fingerprints are rejected even when every file name looks
/// right: artifacts produced under seed 7 must not satisfy a seed-8 run.
#[test]
fn stale_fingerprints_are_rejected() {
    let dir = tmp("stale");
    let mut producer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .build()
        .expect("smoke builds");
    producer.crowd();
    producer.save_artifacts(&dir).expect("save");

    let s = ArtifactStore::open(&dir).expect("store opens");
    let fp8 = store::crowd_fingerprint(&RunPlan::new(ExperimentConfig::smoke(8)));
    assert!(matches!(
        s.load::<CrowdArtifact>("crowd", fp8),
        Err(StoreError::StaleFingerprint { .. })
    ));

    let observer = Arc::new(TimingObserver::new());
    let mut consumer = Experiment::builder()
        .scenario("smoke")
        .seed(8)
        .observer(observer.clone())
        .artifacts(dir.clone())
        .build()
        .expect("smoke builds");
    consumer.crowd();
    assert_eq!(observer.loads(StageKind::Crowd), 0);
    assert_eq!(observer.starts(StageKind::Crowd), 1);
    std::fs::remove_dir_all(&dir).ok();
}

fn pd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pd"))
}

/// The cross-process acceptance: one process measures and persists, a
/// second process re-analyzes the stored crawl, and the reports agree
/// byte for byte. Also proves the second process skipped the
/// measurement stages (its stdout names the reused artifacts).
#[test]
fn rerun_reanalyzes_a_stored_smoke_crawl_across_processes() {
    let dir = tmp("cross-process");
    let direct_json = dir.join("direct.json");
    let rerun_json = dir.join("rerun.json");
    std::fs::create_dir_all(&dir).expect("mkdir");

    let run = pd()
        .args(["run", "smoke", "--seed", "7", "--artifacts"])
        .arg(&dir)
        .arg("--json")
        .arg(&direct_json)
        .output()
        .expect("pd run executes");
    assert!(run.status.success(), "pd run failed: {run:?}");

    let rerun = pd()
        .arg("rerun")
        .arg(&dir)
        .arg("--json")
        .arg(&rerun_json)
        .output()
        .expect("pd rerun executes");
    assert!(rerun.status.success(), "pd rerun failed: {rerun:?}");
    let stdout = String::from_utf8_lossy(&rerun.stdout);
    assert!(
        stdout.contains("reused crowd, crawl, personas"),
        "rerun must reuse every measurement stage:\n{stdout}"
    );

    let direct = std::fs::read(&direct_json).expect("direct report written");
    let reran = std::fs::read(&rerun_json).expect("rerun report written");
    assert_eq!(direct, reran, "rerun JSON must equal the direct run's");

    // `pd artifacts ls` sees a healthy, fully-lineaged store.
    let ls = pd()
        .args(["artifacts", "ls"])
        .arg(&dir)
        .output()
        .expect("ls");
    assert!(ls.status.success());
    let ls_out = String::from_utf8_lossy(&ls.stdout);
    for needle in ["crowd", "crawl", "personas", "analysis", "upstream", "ok"] {
        assert!(ls_out.contains(needle), "missing {needle:?} in:\n{ls_out}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The binary-format acceptance, cross-process: `pd run --format
/// binary` writes a store several times smaller than JSON, `pd rerun`
/// reproduces the direct report byte for byte from it, `pd artifacts
/// ls` shows the format and chunk counts, and `pd artifacts migrate`
/// converts in place without changing what a rerun computes.
#[test]
fn binary_store_reruns_byte_identically_across_processes() {
    let bin_dir = tmp("cross-binary");
    let json_dir = tmp("cross-binary-json");
    let direct_json = bin_dir.join("direct.json");
    let rerun_json = bin_dir.join("rerun.json");
    let migrated_json = bin_dir.join("migrated.json");
    std::fs::create_dir_all(&bin_dir).expect("mkdir");

    let run = pd()
        .args(["run", "smoke", "--seed", "7", "--artifacts"])
        .arg(&bin_dir)
        .args(["--format", "binary", "--json"])
        .arg(&direct_json)
        .output()
        .expect("pd run executes");
    assert!(run.status.success(), "pd run failed: {run:?}");
    let run_json = pd()
        .args(["run", "smoke", "--seed", "7", "--artifacts"])
        .arg(&json_dir)
        .output()
        .expect("pd run executes");
    assert!(run_json.status.success(), "pd run failed: {run_json:?}");

    // The compression target: the binary payloads together are at
    // least 3x smaller than their JSON twins.
    let total = |dir: &PathBuf, ext: &str| -> u64 {
        ["crowd", "crawl", "personas", "analysis"]
            .iter()
            .map(|stage| {
                std::fs::metadata(dir.join(format!("{stage}.{ext}")))
                    .unwrap_or_else(|_| panic!("{stage}.{ext} missing"))
                    .len()
            })
            .sum()
    };
    let (bin_total, json_total) = (total(&bin_dir, "bin"), total(&json_dir, "json"));
    assert!(
        bin_total * 3 <= json_total,
        "binary stores must be >= 3x smaller: {bin_total} vs {json_total} bytes"
    );

    let rerun = pd()
        .arg("rerun")
        .arg(&bin_dir)
        .arg("--json")
        .arg(&rerun_json)
        .output()
        .expect("pd rerun executes");
    assert!(rerun.status.success(), "pd rerun failed: {rerun:?}");
    let stdout = String::from_utf8_lossy(&rerun.stdout);
    assert!(
        stdout.contains("reused crowd, crawl, personas"),
        "rerun must reuse every measurement stage:\n{stdout}"
    );
    let direct = std::fs::read(&direct_json).expect("direct report written");
    assert_eq!(
        direct,
        std::fs::read(&rerun_json).expect("rerun report written"),
        "rerun from the binary store must equal the direct run's JSON"
    );

    let ls = pd()
        .args(["artifacts", "ls"])
        .arg(&bin_dir)
        .output()
        .expect("ls");
    assert!(ls.status.success());
    let ls_out = String::from_utf8_lossy(&ls.stdout);
    assert!(
        ls_out.contains("binary"),
        "ls must show the format:\n{ls_out}"
    );
    assert!(
        ls_out.contains("chunks"),
        "ls must show chunk counts:\n{ls_out}"
    );

    // Migrate binary -> json in place; a rerun still reproduces the
    // same report from the converted store.
    let migrate = pd()
        .args(["artifacts", "migrate"])
        .arg(&bin_dir)
        .args(["--format", "json"])
        .output()
        .expect("migrate");
    assert!(migrate.status.success(), "migrate failed: {migrate:?}");
    assert!(
        bin_dir.join("crawl.json").exists(),
        "migrate must re-encode"
    );
    assert!(
        !bin_dir.join("crawl.bin").exists(),
        "migrate must drop the old file"
    );
    let rerun2 = pd()
        .arg("rerun")
        .arg(&bin_dir)
        .arg("--json")
        .arg(&migrated_json)
        .output()
        .expect("pd rerun executes");
    assert!(
        rerun2.status.success(),
        "rerun after migrate failed: {rerun2:?}"
    );
    assert_eq!(
        direct,
        std::fs::read(&migrated_json).expect("migrated report written"),
        "rerun after migrate must equal the direct run's JSON"
    );
    std::fs::remove_dir_all(&bin_dir).ok();
    std::fs::remove_dir_all(&json_dir).ok();
}

/// CLI error-path contract: unknown scenarios/commands/stores exit
/// nonzero with the diagnostic on stderr (and the scenario list where
/// it helps), never a quiet success.
#[test]
fn cli_errors_hit_stderr_with_nonzero_exit() {
    let bad_scenario = pd().args(["run", "nope"]).output().expect("runs");
    assert_eq!(bad_scenario.status.code(), Some(2));
    let err = String::from_utf8_lossy(&bad_scenario.stderr);
    assert!(err.contains("unknown scenario"), "stderr: {err}");
    assert!(
        err.contains("desync-ablation") && err.contains("paper"),
        "error must list the registered scenarios: {err}"
    );
    assert!(bad_scenario.stdout.is_empty(), "errors must not hit stdout");

    let bad_cmd = pd().arg("frobnicate").output().expect("runs");
    assert_eq!(bad_cmd.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_cmd.stderr).contains("unknown command"));

    let no_store = pd()
        .arg("rerun")
        .arg(std::env::temp_dir().join("pd-definitely-not-a-store"))
        .output()
        .expect("runs");
    assert_eq!(no_store.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&no_store.stderr).contains("not an artifact store"));

    let bad_flag = pd().args(["run", "smoke", "--wat"]).output().expect("runs");
    assert_eq!(bad_flag.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_flag.stderr).contains("unknown flag"));
}

/// A store produced by one run is never silently destroyed by another:
/// saving under a different seed fails with guidance, succeeds with
/// `--overwrite-artifacts`, and the original artifacts survive the
/// refusal untouched.
#[test]
fn different_plan_never_clobbers_a_store_without_consent() {
    let dir = tmp("no-clobber");
    let run7 = pd()
        .args(["run", "smoke", "--seed", "7", "--artifacts"])
        .arg(&dir)
        .output()
        .expect("seed-7 run");
    assert!(run7.status.success());
    let crowd_before = std::fs::read(dir.join("crowd.json")).expect("stored");

    let run8 = pd()
        .args(["run", "smoke", "--seed", "8", "--artifacts"])
        .arg(&dir)
        .output()
        .expect("seed-8 run");
    assert_eq!(run8.status.code(), Some(1), "clobber must be refused");
    let err = String::from_utf8_lossy(&run8.stderr);
    assert!(err.contains("different run plan"), "stderr: {err}");
    assert!(err.contains("--overwrite-artifacts"), "stderr: {err}");
    assert_eq!(
        std::fs::read(dir.join("crowd.json")).expect("still stored"),
        crowd_before,
        "the refused save must leave the original artifacts intact"
    );

    let run8_forced = pd()
        .args([
            "run",
            "smoke",
            "--seed",
            "8",
            "--overwrite-artifacts",
            "--artifacts",
        ])
        .arg(&dir)
        .output()
        .expect("forced seed-8 run");
    assert!(run8_forced.status.success(), "{run8_forced:?}");
    let ls = pd()
        .args(["artifacts", "ls"])
        .arg(&dir)
        .output()
        .expect("ls");
    assert!(String::from_utf8_lossy(&ls.stdout).contains("seed 8"));
    std::fs::remove_dir_all(&dir).ok();
}
