//! The artifact-persistence contracts (ISSUE 3 acceptance):
//!
//! * save → load round-trips are **byte-identical** — property-tested
//!   over randomized measurement artifacts, and end-to-end over a full
//!   smoke `Report`,
//! * corrupted files and stale fingerprints are rejected (the engine
//!   recomputes; it never trusts a file name),
//! * a stored smoke crawl re-analyzes **across processes**: `pd run
//!   --artifacts` then `pd rerun` in a fresh process reproduce the
//!   direct run's JSON exactly, and the CLI's error paths exit nonzero
//!   on stderr.

use pd_core::store::{self, ArtifactStore, EntryHealth, Provenance, StoreError};
use pd_core::{CrowdArtifact, Experiment, ExperimentConfig, RunPlan, StageKind, TimingObserver};
use pd_currency::{Currency, Price};
use pd_net::clock::SimTime;
use pd_sheriff::measurement::{Measurement, NoiseTruth, PriceObservation};
use pd_sheriff::MeasurementStore;
use pd_util::{Money, RequestId, UserId, VantageId};
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pd-artifacts-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Builds a measurement from flat random draws (the property tests
/// randomize the payload, not the pipeline).
#[allow(clippy::cast_possible_truncation)]
fn measurement(i: u64, minor: i64, domain_tag: &str, fail: bool, time_ms: u64) -> Measurement {
    let currency = Currency::ALL[(i as usize) % Currency::ALL.len()];
    let price = Price::new(Money::from_minor(minor), currency);
    let observations = (0..(i % 4))
        .map(|v| {
            if fail && v == 0 {
                PriceObservation::failed(VantageId::new(v as u32), format!("boom {v}"))
            } else {
                PriceObservation::ok(
                    VantageId::new(v as u32),
                    price,
                    format!("{} \"{domain_tag}\"\n€", price.amount),
                )
            }
        })
        .collect();
    Measurement {
        request: RequestId::new(0),
        user: UserId::new((i % 97) as u32),
        domain: format!("www.{domain_tag}.example"),
        product_slug: format!("prod-{i}"),
        time: SimTime::from_millis(time_ms),
        user_price: (!fail).then_some(price),
        observations,
        noise_truth: match i % 3 {
            0 => NoiseTruth::Clean,
            1 => NoiseTruth::Customization,
            _ => NoiseTruth::MisHighlight,
        },
    }
}

proptest! {
    /// Save → load → save again: the second file must be byte-identical
    /// to the first, over randomized artifact contents (prices of every
    /// sign and currency, failure strings with escapes, arbitrary
    /// check times).
    #[test]
    fn prop_store_round_trip_is_byte_identical(
        n in 1usize..12,
        minor in -1_000_000i64..10_000_000,
        tag in "[a-z0-9]{1,12}",
        time_ms in 0u64..10_000_000_000,
        seed in 0u64..1_000_000,
    ) {
        let dir = tmp(&format!("prop-{seed}-{n}"));
        let plan = RunPlan::new(ExperimentConfig::smoke(seed));
        let mut raw = MeasurementStore::new();
        for i in 0..n as u64 {
            raw.push(measurement(i.wrapping_add(seed), minor + i as i64, &tag, i % 5 == 0, time_ms + i));
        }
        let artifact = CrowdArtifact {
            cleaned: raw.clone(),
            raw,
            cleaning: pd_sheriff::cleaning::CleaningReport {
                kept: n,
                dropped_inconsistent: n / 2,
                dropped_unhealthy: 0,
                dropped_tax_explained: 1,
                dropped_truly_noisy: 0,
                kept_truly_noisy: n / 3,
            },
        };
        let fp = store::crowd_fingerprint(&plan);
        let mut s = ArtifactStore::create(&dir, Provenance::new("prop", "", "smoke", seed, 1), &plan, None)
            .expect("store creates");
        s.save("crowd", fp, &[], &artifact).expect("first save");
        let first = std::fs::read(dir.join("crowd.json")).expect("artifact file exists");

        let loaded: CrowdArtifact = ArtifactStore::open(&dir)
            .expect("store reopens")
            .load("crowd", fp)
            .expect("round-trip load");
        prop_assert_eq!(loaded.raw.len(), artifact.raw.len());
        prop_assert_eq!(loaded.raw.records(), artifact.raw.records());
        prop_assert_eq!(loaded.cleaning, artifact.cleaning);

        s.save("crowd", fp, &[], &loaded).expect("re-save");
        let second = std::fs::read(dir.join("crowd.json")).expect("artifact file exists");
        prop_assert_eq!(first, second, "round-trip must be byte-identical");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The full acceptance loop in-process: a saved smoke run reloads into a
/// byte-identical `Report`, with the observer proving the measurement
/// stages never re-ran.
#[test]
fn stored_smoke_report_is_byte_identical() {
    let dir = tmp("byte-identical");
    let mut producer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .build()
        .expect("smoke builds");
    let direct = producer.run();
    producer.save_artifacts(&dir).expect("save");

    let observer = Arc::new(TimingObserver::new());
    let mut consumer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .observer(observer.clone())
        .artifacts(dir.clone())
        .build()
        .expect("smoke builds");
    let reloaded = consumer.run();
    assert_eq!(direct.to_json(), reloaded.to_json(), "JSON must match");
    assert_eq!(
        direct.render_all(),
        reloaded.render_all(),
        "rendered report must match byte for byte"
    );
    for kind in [StageKind::Crowd, StageKind::Crawl, StageKind::Personas] {
        assert_eq!(observer.starts(kind), 0, "{kind} must not recompute");
        assert_eq!(observer.loads(kind), 1, "{kind} must load from the store");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Corruption is rejected: a scribbled-over artifact file fails its
/// envelope check, the engine recomputes, and `verify` flags the entry.
#[test]
fn corrupted_artifacts_are_rejected_and_recomputed() {
    let dir = tmp("corrupt");
    let mut producer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .build()
        .expect("smoke builds");
    producer.crowd();
    producer.save_artifacts(&dir).expect("save");
    std::fs::write(dir.join("crowd.json"), "{\"schema_version\":1,").expect("corrupt the file");

    let s = ArtifactStore::open(&dir).expect("manifest still fine");
    let fp = store::crowd_fingerprint(&RunPlan::new(ExperimentConfig::smoke(7)));
    assert!(matches!(
        s.load::<CrowdArtifact>("crowd", fp),
        Err(StoreError::Corrupt { .. })
    ));
    assert!(matches!(s.verify()[0].1, EntryHealth::Corrupt(_)));

    let observer = Arc::new(TimingObserver::new());
    let mut consumer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .observer(observer.clone())
        .artifacts(dir.clone())
        .build()
        .expect("smoke builds");
    consumer.crowd();
    assert_eq!(observer.loads(StageKind::Crowd), 0, "corrupt must not load");
    assert_eq!(
        observer.starts(StageKind::Crowd),
        1,
        "corrupt must recompute"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Stale fingerprints are rejected even when every file name looks
/// right: artifacts produced under seed 7 must not satisfy a seed-8 run.
#[test]
fn stale_fingerprints_are_rejected() {
    let dir = tmp("stale");
    let mut producer = Experiment::builder()
        .scenario("smoke")
        .seed(7)
        .build()
        .expect("smoke builds");
    producer.crowd();
    producer.save_artifacts(&dir).expect("save");

    let s = ArtifactStore::open(&dir).expect("store opens");
    let fp8 = store::crowd_fingerprint(&RunPlan::new(ExperimentConfig::smoke(8)));
    assert!(matches!(
        s.load::<CrowdArtifact>("crowd", fp8),
        Err(StoreError::StaleFingerprint { .. })
    ));

    let observer = Arc::new(TimingObserver::new());
    let mut consumer = Experiment::builder()
        .scenario("smoke")
        .seed(8)
        .observer(observer.clone())
        .artifacts(dir.clone())
        .build()
        .expect("smoke builds");
    consumer.crowd();
    assert_eq!(observer.loads(StageKind::Crowd), 0);
    assert_eq!(observer.starts(StageKind::Crowd), 1);
    std::fs::remove_dir_all(&dir).ok();
}

fn pd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pd"))
}

/// The cross-process acceptance: one process measures and persists, a
/// second process re-analyzes the stored crawl, and the reports agree
/// byte for byte. Also proves the second process skipped the
/// measurement stages (its stdout names the reused artifacts).
#[test]
fn rerun_reanalyzes_a_stored_smoke_crawl_across_processes() {
    let dir = tmp("cross-process");
    let direct_json = dir.join("direct.json");
    let rerun_json = dir.join("rerun.json");
    std::fs::create_dir_all(&dir).expect("mkdir");

    let run = pd()
        .args(["run", "smoke", "--seed", "7", "--artifacts"])
        .arg(&dir)
        .arg("--json")
        .arg(&direct_json)
        .output()
        .expect("pd run executes");
    assert!(run.status.success(), "pd run failed: {run:?}");

    let rerun = pd()
        .arg("rerun")
        .arg(&dir)
        .arg("--json")
        .arg(&rerun_json)
        .output()
        .expect("pd rerun executes");
    assert!(rerun.status.success(), "pd rerun failed: {rerun:?}");
    let stdout = String::from_utf8_lossy(&rerun.stdout);
    assert!(
        stdout.contains("reused crowd, crawl, personas"),
        "rerun must reuse every measurement stage:\n{stdout}"
    );

    let direct = std::fs::read(&direct_json).expect("direct report written");
    let reran = std::fs::read(&rerun_json).expect("rerun report written");
    assert_eq!(direct, reran, "rerun JSON must equal the direct run's");

    // `pd artifacts ls` sees a healthy, fully-lineaged store.
    let ls = pd()
        .args(["artifacts", "ls"])
        .arg(&dir)
        .output()
        .expect("ls");
    assert!(ls.status.success());
    let ls_out = String::from_utf8_lossy(&ls.stdout);
    for needle in ["crowd", "crawl", "personas", "analysis", "upstream", "ok"] {
        assert!(ls_out.contains(needle), "missing {needle:?} in:\n{ls_out}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// CLI error-path contract: unknown scenarios/commands/stores exit
/// nonzero with the diagnostic on stderr (and the scenario list where
/// it helps), never a quiet success.
#[test]
fn cli_errors_hit_stderr_with_nonzero_exit() {
    let bad_scenario = pd().args(["run", "nope"]).output().expect("runs");
    assert_eq!(bad_scenario.status.code(), Some(2));
    let err = String::from_utf8_lossy(&bad_scenario.stderr);
    assert!(err.contains("unknown scenario"), "stderr: {err}");
    assert!(
        err.contains("desync-ablation") && err.contains("paper"),
        "error must list the registered scenarios: {err}"
    );
    assert!(bad_scenario.stdout.is_empty(), "errors must not hit stdout");

    let bad_cmd = pd().arg("frobnicate").output().expect("runs");
    assert_eq!(bad_cmd.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_cmd.stderr).contains("unknown command"));

    let no_store = pd()
        .arg("rerun")
        .arg(std::env::temp_dir().join("pd-definitely-not-a-store"))
        .output()
        .expect("runs");
    assert_eq!(no_store.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&no_store.stderr).contains("not an artifact store"));

    let bad_flag = pd().args(["run", "smoke", "--wat"]).output().expect("runs");
    assert_eq!(bad_flag.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_flag.stderr).contains("unknown flag"));
}

/// A store produced by one run is never silently destroyed by another:
/// saving under a different seed fails with guidance, succeeds with
/// `--overwrite-artifacts`, and the original artifacts survive the
/// refusal untouched.
#[test]
fn different_plan_never_clobbers_a_store_without_consent() {
    let dir = tmp("no-clobber");
    let run7 = pd()
        .args(["run", "smoke", "--seed", "7", "--artifacts"])
        .arg(&dir)
        .output()
        .expect("seed-7 run");
    assert!(run7.status.success());
    let crowd_before = std::fs::read(dir.join("crowd.json")).expect("stored");

    let run8 = pd()
        .args(["run", "smoke", "--seed", "8", "--artifacts"])
        .arg(&dir)
        .output()
        .expect("seed-8 run");
    assert_eq!(run8.status.code(), Some(1), "clobber must be refused");
    let err = String::from_utf8_lossy(&run8.stderr);
    assert!(err.contains("different run plan"), "stderr: {err}");
    assert!(err.contains("--overwrite-artifacts"), "stderr: {err}");
    assert_eq!(
        std::fs::read(dir.join("crowd.json")).expect("still stored"),
        crowd_before,
        "the refused save must leave the original artifacts intact"
    );

    let run8_forced = pd()
        .args([
            "run",
            "smoke",
            "--seed",
            "8",
            "--overwrite-artifacts",
            "--artifacts",
        ])
        .arg(&dir)
        .output()
        .expect("forced seed-8 run");
    assert!(run8_forced.status.success(), "{run8_forced:?}");
    let ls = pd()
        .args(["artifacts", "ls"])
        .arg(&dir)
        .output()
        .expect("ls");
    assert!(String::from_utf8_lossy(&ls.stdout).contains("seed 8"));
    std::fs::remove_dir_all(&dir).ok();
}
