//! `pd` — the scenario-driven experiment runner.
//!
//! ```text
//! pd run <scenario> [--seed N] [--threads N]
//!                   [--profile smoke|small|medium|paper]
//!                   [--json PATH] [--render] [--timings]
//! pd list
//! pd --help
//! ```
//!
//! Scenarios come from the `pd_core` registry; `pd list` (and `--help`)
//! print the registered names. Sweep scenarios (e.g. `seed-sweep`) run
//! every arm and label the output; `--json` then writes one object keyed
//! by arm label.

use pd_core::{Experiment, Profile, ScenarioRegistry, TimingObserver};
use std::sync::Arc;

struct RunArgs {
    scenario: String,
    seed: u64,
    threads: usize,
    profile: Profile,
    json: Option<String>,
    render: bool,
    timings: bool,
}

fn usage(registry: &ScenarioRegistry) -> String {
    let mut out = String::from(
        "pd — scenario-driven reproduction of Mikians et al. (CoNEXT 2013)\n\
         \n\
         USAGE:\n\
         \x20 pd run <scenario> [--seed N] [--threads N]\n\
         \x20                   [--profile smoke|small|medium|paper]\n\
         \x20                   [--json PATH] [--render] [--timings]\n\
         \x20 pd list\n\
         \x20 pd --help\n\
         \n\
         OPTIONS:\n\
         \x20 --seed N       root seed (default 1307, the paper seed)\n\
         \x20 --threads N    worker threads; 0 = all cores (default 1).\n\
         \x20                The report is byte-identical at any value.\n\
         \x20 --profile P    workload scale (default small)\n\
         \x20 --json PATH    write the full report(s) as JSON\n\
         \x20 --render       print every figure, not just the summary\n\
         \x20 --timings      print per-stage wall-times\n\
         \n\
         SCENARIOS:\n",
    );
    for s in registry.iter() {
        out.push_str(&format!("  {:<16} {}\n", s.name(), s.describe()));
    }
    out
}

fn parse_run(mut args: std::env::Args, registry: &ScenarioRegistry) -> Result<RunArgs, String> {
    let scenario = args.next().ok_or("`pd run` needs a scenario name")?;
    if registry.get(&scenario).is_none() {
        return Err(format!(
            "unknown scenario {scenario:?}; `pd list` shows the registry"
        ));
    }
    let mut run = RunArgs {
        scenario,
        seed: 1307,
        threads: 1,
        profile: Profile::Small,
        json: None,
        render: false,
        timings: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                run.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                run.threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
            }
            "--profile" => {
                let v = args.next().ok_or("--profile needs a value")?;
                run.profile = Profile::parse(&v).ok_or(format!("unknown profile {v:?}"))?;
            }
            "--json" => run.json = Some(args.next().ok_or("--json needs a path")?),
            "--render" => run.render = true,
            "--timings" => run.timings = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(run)
}

fn execute(run: &RunArgs) -> Result<(), String> {
    let observer = Arc::new(TimingObserver::new());
    let variants = Experiment::builder()
        .scenario(&run.scenario)
        .seed(run.seed)
        .profile(run.profile)
        .threads(run.threads)
        .observer(observer.clone())
        .build_variants()
        .map_err(|e| e.to_string())?;

    let mut reports = Vec::new();
    for (label, mut engine) in variants {
        let fleet = engine.world().sheriff.vantage_points().len();
        let report = engine.run();
        if label.is_empty() {
            println!(
                "== {} (profile {}, seed {}, {} threads, {fleet} probes) ==",
                run.scenario,
                run.profile.name(),
                run.seed,
                engine.executor().threads(),
            );
        } else {
            println!("== {} / {label} ==", run.scenario);
        }
        print!("{}", report.render_summary());
        if run.render {
            println!("{}", report.render_all());
        }
        println!();
        reports.push((label, report));
    }

    if run.timings {
        println!("stage wall-times:");
        for t in observer.timings() {
            let counters: Vec<String> =
                t.counters.iter().map(|(n, v)| format!("{n}={v}")).collect();
            println!(
                "  {:<9} {:>9.1} ms  {}",
                t.stage.to_string(),
                t.wall.as_secs_f64() * 1000.0,
                counters.join(" ")
            );
        }
    }

    if let Some(path) = &run.json {
        let json = if reports.len() == 1 && reports[0].0.is_empty() {
            reports[0].1.to_json()
        } else {
            let body: Vec<String> = reports
                .iter()
                .map(|(label, r)| format!("{:?}: {}", label, r.to_json()))
                .collect();
            format!("{{\n{}\n}}", body.join(",\n"))
        };
        std::fs::write(path, json).map_err(|e| format!("writing {path:?}: {e}"))?;
        println!("report JSON written to {path}");
    }
    Ok(())
}

fn main() {
    let registry = ScenarioRegistry::builtin();
    let mut args = std::env::args();
    let _ = args.next(); // argv[0]
    match args.next().as_deref() {
        Some("run") => {
            let run = parse_run(args, &registry).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
            if let Err(e) = execute(&run) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Some("list") => {
            for s in registry.iter() {
                println!("{:<16} {}", s.name(), s.describe());
            }
        }
        Some("--help" | "-h" | "help") | None => print!("{}", usage(&registry)),
        Some(other) => {
            eprintln!("error: unknown command {other:?}\n\n{}", usage(&registry));
            std::process::exit(2);
        }
    }
}
