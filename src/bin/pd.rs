//! `pd` — the scenario-driven experiment runner.
//!
//! ```text
//! pd run <scenario>|--spec FILE.json
//!                   [--set key=value]... [--seed N] [--threads N]
//!                   [--profile smoke|small|medium|paper]
//!                   [--json PATH] [--render] [--timings]
//!                   [--artifacts DIR [--overwrite-artifacts]
//!                    [--format json|binary]]
//! pd rerun <DIR> [--threads N] [--fig1-top N] [--attribution-products N]
//!                [--json PATH] [--render] [--timings]
//! pd scenarios show <NAME> [--json]
//! pd artifacts ls <DIR>
//! pd artifacts migrate <DIR> [--format json|binary]
//! pd serve [--addr HOST:PORT] [--threads N] [--job-threads N]
//!          [--runners N] [--artifacts DIR] [--queue N]
//! pd submit <scenario>|--spec FILE_OR_NAME [--addr HOST:PORT]
//!           [--set key=value]... [--seed N] [--profile P]
//! pd poll <JOB-ID> [--addr HOST:PORT] [--json PATH] [--timeout-secs N]
//! pd metrics [--addr HOST:PORT]
//! pd shutdown [--addr HOST:PORT]
//! pd list
//! pd --help
//! ```
//!
//! Scenarios come from the `pd_core` registry; `pd list` (and `--help`)
//! print the registered names, and a typo gets a did-you-mean hint.
//! Every scenario is a declarative `ScenarioSpec`: `pd scenarios show
//! NAME --json` dumps any builtin as an editable JSON file, `pd run
//! --spec FILE.json` executes such a file, and `--set key=value` layers
//! one-off typed overrides (e.g. `--set world.failure_rate=0.1`) onto
//! either — overrides compose with sweep axes because they patch the
//! base plan before the axes expand. Sweep scenarios (e.g.
//! `seed-sweep`) run every arm **concurrently** on the deterministic
//! executor (the `--threads` budget splits arm-level × intra-arm) and
//! label the output in arm order; `--json` then writes one object keyed
//! by arm label, and `--artifacts` gives each arm its own store
//! subdirectory (the manifest records the exact producing spec).
//!
//! `--artifacts DIR` is a transparent read-through cache: a stage whose
//! fingerprint matches a stored artifact is loaded instead of computed,
//! and freshly computed artifacts are persisted after the run. A store
//! produced by a *different* run is never silently replaced — that
//! takes `--overwrite-artifacts`. `--format binary` saves the compact
//! chunked encoding (5–10x smaller; loads stream one domain chunk at a
//! time); `pd artifacts migrate DIR` converts a store in place either
//! way, byte-identically. `pd rerun DIR` re-analyzes a stored crawl —
//! optionally under different analysis knobs — without re-measuring
//! anything.
//!
//! `--spec` accepts a file path or a bare name: bare names resolve
//! against the spec search path (`examples/specs/`, then each
//! colon-separated directory in `$PD_SPEC_PATH`), with a did-you-mean
//! hint over every spec found on the path.
//!
//! `pd serve` starts the long-running measurement service (see the
//! `pd-serve` crate): a TCP daemon with one process-wide warm
//! `FrameCache` shared across jobs, an HTTP/1.1 JSON API, and live
//! `/metrics`. `pd submit` queues a job on a running daemon (printing
//! its `j-N` id to stdout), `pd poll` waits for one and can fetch its
//! report — byte-identical to `pd run --json` for the same inputs —
//! and `pd shutdown` drains the daemon gracefully.
//!
//! Exit codes: `0` success, `1` runtime failure (store/report/IO), `2`
//! usage error (unknown command, flag, scenario or profile). All errors
//! go to stderr.

use pd_core::store::{ArtifactStore, Provenance, StoreError, StoreFormat};
use pd_core::{
    ConfigPatch, Engine, Executor, Experiment, Profile, ScenarioRegistry, ScenarioSpec, StageKind,
    TimingObserver,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

struct RunArgs {
    scenario: Option<String>,
    spec: Option<String>,
    overrides: ConfigPatch,
    seed: u64,
    threads: usize,
    profile: Profile,
    json: Option<String>,
    render: bool,
    timings: bool,
    artifacts: Option<PathBuf>,
    overwrite_artifacts: bool,
    format: StoreFormat,
}

struct RerunArgs {
    dir: PathBuf,
    threads: usize,
    fig1_top: Option<usize>,
    attribution_products: Option<usize>,
    json: Option<String>,
    render: bool,
    timings: bool,
}

/// The daemon's default listen address, shared by every service
/// subcommand's `--addr` flag.
const DEFAULT_ADDR: &str = "127.0.0.1:7413";

struct ServeArgs {
    addr: String,
    threads: usize,
    job_threads: usize,
    runners: usize,
    artifacts: Option<PathBuf>,
    queue: usize,
}

struct SubmitArgs {
    scenario: Option<String>,
    spec: Option<String>,
    overrides: ConfigPatch,
    has_overrides: bool,
    seed: Option<u64>,
    profile: Option<Profile>,
    addr: String,
}

struct PollArgs {
    id: String,
    addr: String,
    json: Option<String>,
    timeout_secs: u64,
}

/// The SCENARIOS block, shared by `--help`, `pd list` context and the
/// unknown-scenario error so the fix is always one screen away.
fn scenario_lines(registry: &ScenarioRegistry) -> String {
    let mut out = String::new();
    for s in registry.iter() {
        out.push_str(&format!("  {:<16} {}\n", s.name, s.describe));
    }
    out
}

/// The unknown-scenario error: did-you-mean hint (nearest registered
/// name by edit distance) plus the full scenario list.
fn unknown_scenario(registry: &ScenarioRegistry, name: &str) -> String {
    let hint = registry
        .suggest(name)
        .map_or_else(String::new, |near| format!(" (did you mean {near:?}?)"));
    format!(
        "unknown scenario {name:?}{hint}; registered scenarios are:\n\n{}",
        scenario_lines(registry)
    )
}

fn usage(registry: &ScenarioRegistry) -> String {
    format!(
        "pd — scenario-driven reproduction of Mikians et al. (CoNEXT 2013)\n\
         \n\
         USAGE:\n\
         \x20 pd run <scenario>|--spec FILE.json [--set key=value]...\n\
         \x20                   [--seed N] [--threads N]\n\
         \x20                   [--profile smoke|small|medium|paper]\n\
         \x20                   [--json PATH] [--render] [--timings]\n\
         \x20                   [--artifacts DIR [--format json|binary]]\n\
         \x20 pd rerun <DIR> [--threads N] [--fig1-top N] [--attribution-products N]\n\
         \x20                [--json PATH] [--render] [--timings]\n\
         \x20 pd scenarios show <NAME> [--json]\n\
         \x20 pd artifacts ls <DIR>\n\
         \x20 pd artifacts migrate <DIR> [--format json|binary]\n\
         \x20 pd serve [--addr HOST:PORT] [--threads N] [--job-threads N]\n\
         \x20          [--runners N] [--artifacts DIR] [--queue N]\n\
         \x20 pd submit <scenario>|--spec FILE_OR_NAME [--addr HOST:PORT]\n\
         \x20           [--set key=value]... [--seed N] [--profile P]\n\
         \x20 pd poll <JOB-ID> [--addr HOST:PORT] [--json PATH] [--timeout-secs N]\n\
         \x20 pd metrics [--addr HOST:PORT]\n\
         \x20 pd shutdown [--addr HOST:PORT]\n\
         \x20 pd list\n\
         \x20 pd --help\n\
         \n\
         OPTIONS:\n\
         \x20 --spec FILE      run a declarative scenario spec (JSON); start\n\
         \x20                  from `pd scenarios show NAME --json`. A bare\n\
         \x20                  name (no '/') searches examples/specs/ and each\n\
         \x20                  directory in $PD_SPEC_PATH for NAME[.json]\n\
         \x20 --set key=value  override one spec field (repeatable), e.g.\n\
         \x20                  --set crowd.users=120 --set world.failure_rate=0.1;\n\
         \x20                  composes with sweep axes (patches the base plan)\n\
         \x20 --seed N         root seed (default 1307, the paper seed)\n\
         \x20 --threads N      worker threads; 0 = auto (all available cores;\n\
         \x20                  default 1). Sweep arms run concurrently, splitting\n\
         \x20                  the budget (arms × per-arm workers ≤ N). The\n\
         \x20                  report is byte-identical at any value.\n\
         \x20 --profile P      workload scale (default small)\n\
         \x20 --json PATH      write the full report(s) as JSON\n\
         \x20 --render         print every figure, not just the summary\n\
         \x20 --timings        print per-stage wall-times and store loads\n\
         \x20 --artifacts DIR  persist stage artifacts to DIR and reuse any\n\
         \x20                  stored artifact whose fingerprint matches the\n\
         \x20                  run (measure once, re-analyze forever)\n\
         \x20 --overwrite-artifacts  allow --artifacts to replace a store\n\
         \x20                  produced by a different run (refused otherwise)\n\
         \x20 --format F       payload format for saved artifacts: json\n\
         \x20                  (default, human-readable) or binary (compact\n\
         \x20                  chunked encoding; loads stream per-domain\n\
         \x20                  chunks). `pd artifacts migrate` converts a\n\
         \x20                  store in place, byte-identically\n\
         \n\
         RERUN OPTIONS (re-analyze a stored crawl without re-measuring):\n\
         \x20 --fig1-top N              rank N domains in Fig. 1 (default 27)\n\
         \x20 --attribution-products N  products probed per retailer by the\n\
         \x20                           attribution extension (default 8)\n\
         \n\
         SERVICE (pd serve / submit / poll / metrics / shutdown):\n\
         \x20 --addr HOST:PORT daemon address (default {DEFAULT_ADDR})\n\
         \x20 --threads N      serve: accept-loop worker threads (default 4)\n\
         \x20 --job-threads N  serve: executor threads per job (default 1)\n\
         \x20 --runners N      serve: runner-pool threads executing jobs\n\
         \x20                  concurrently (default 0 = auto: available\n\
         \x20                  cores / job-threads, at least 1). Reports are\n\
         \x20                  byte-identical at any value\n\
         \x20 --queue N        serve: bounded job queue capacity (default 16;\n\
         \x20                  a full queue answers 503 + Retry-After)\n\
         \x20 --timeout-secs N poll: give up waiting after N seconds\n\
         \x20                  (default 300)\n\
         \x20 Jobs share the daemon's warm frame cache; a repeated analysis\n\
         \x20 reports frames built=0. `pd poll --json PATH` writes the\n\
         \x20 report byte-identically to an offline `pd run --json`.\n\
         \n\
         SCENARIOS:\n{}",
        scenario_lines(registry)
    )
}

fn parse_run(mut args: std::env::Args, registry: &ScenarioRegistry) -> Result<RunArgs, String> {
    let mut run = RunArgs {
        scenario: None,
        spec: None,
        overrides: ConfigPatch::default(),
        seed: 1307,
        threads: 1,
        profile: Profile::Small,
        json: None,
        render: false,
        timings: false,
        artifacts: None,
        overwrite_artifacts: false,
        format: StoreFormat::Json,
    };
    let mut first = true;
    while let Some(arg) = args.next() {
        if std::mem::take(&mut first) && !arg.starts_with("--") {
            if registry.get(&arg).is_none() {
                return Err(unknown_scenario(registry, &arg));
            }
            run.scenario = Some(arg);
            continue;
        }
        match arg.as_str() {
            "--spec" => {
                run.spec = Some(args.next().ok_or("--spec needs a file path or name")?);
            }
            "--set" => {
                let kv = args.next().ok_or("--set needs key=value")?;
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--set {kv:?} is not key=value"))?;
                // Parse eagerly so a bad key or value is a usage error
                // (exit 2) before any work happens.
                run.overrides.set(key, value)?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                run.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                run.threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
            }
            "--profile" => {
                let v = args.next().ok_or("--profile needs a value")?;
                run.profile = Profile::parse(&v).ok_or(format!("unknown profile {v:?}"))?;
            }
            "--json" => run.json = Some(args.next().ok_or("--json needs a path")?),
            "--render" => run.render = true,
            "--timings" => run.timings = true,
            "--artifacts" => {
                run.artifacts = Some(PathBuf::from(
                    args.next().ok_or("--artifacts needs a directory")?,
                ));
            }
            "--overwrite-artifacts" => run.overwrite_artifacts = true,
            "--format" => {
                let v = args.next().ok_or("--format needs json or binary")?;
                run.format =
                    StoreFormat::parse(&v).ok_or(format!("unknown format {v:?} (json|binary)"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    match (&run.scenario, &run.spec) {
        (None, None) => Err("`pd run` needs a scenario name or --spec FILE".to_owned()),
        (Some(_), Some(_)) => Err("pass a scenario name or --spec FILE, not both".to_owned()),
        _ => Ok(run),
    }
}

fn parse_rerun(mut args: std::env::Args) -> Result<RerunArgs, String> {
    let dir = args.next().ok_or("`pd rerun` needs a store directory")?;
    let mut rerun = RerunArgs {
        dir: PathBuf::from(dir),
        threads: 1,
        fig1_top: None,
        attribution_products: None,
        json: None,
        render: false,
        timings: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                rerun.threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
            }
            "--fig1-top" => {
                let v = args.next().ok_or("--fig1-top needs a value")?;
                rerun.fig1_top = Some(v.parse().map_err(|_| format!("bad count {v:?}"))?);
            }
            "--attribution-products" => {
                let v = args.next().ok_or("--attribution-products needs a value")?;
                rerun.attribution_products =
                    Some(v.parse().map_err(|_| format!("bad count {v:?}"))?);
            }
            "--json" => rerun.json = Some(args.next().ok_or("--json needs a path")?),
            "--render" => rerun.render = true,
            "--timings" => rerun.timings = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(rerun)
}

fn print_timings(observer: &TimingObserver) {
    println!("stage wall-times:");
    for (stage, fp) in observer.loaded() {
        println!("  {stage:<9} loaded from store (fingerprint {fp})");
    }
    for t in observer.timings() {
        let counters: Vec<String> = t.counters.iter().map(|(n, v)| format!("{n}={v}")).collect();
        let stage = if t.arm.is_empty() {
            t.stage.to_string()
        } else {
            format!("{}/{}", t.arm, t.stage)
        };
        println!(
            "  {:<22} {:>9.1} ms  {}",
            stage,
            t.wall.as_secs_f64() * 1000.0,
            counters.join(" ")
        );
    }
}

fn stage_names(stages: &[StageKind]) -> String {
    stages
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

fn write_json(path: &str, reports: &[(String, pd_core::Report)]) -> Result<(), String> {
    // One shared formatter (`pd_core::reports_to_json`) renders the CLI
    // file, the daemon's stored report, and the bench comparisons — so
    // "byte-identical to `pd run --json`" holds by construction.
    let json = pd_core::reports_to_json(reports);
    std::fs::write(path, json).map_err(|e| format!("writing {path:?}: {e}"))?;
    println!("report JSON written to {path}");
    Ok(())
}

/// Layers `--set` overrides onto a resolved spec, refusing overrides a
/// sweep axis would overwrite in every arm — the value would silently
/// never run (axes that derive from the base plan, like Seeds and
/// CrowdSizes, compose fine and pass).
fn apply_overrides(spec: &mut ScenarioSpec, overrides: &ConfigPatch) -> Result<(), String> {
    let conflicts = spec.override_conflicts(overrides);
    if let Some((key, axis)) = conflicts.first() {
        return Err(format!(
            "--set {key} conflicts with the {axis} sweep axis of scenario {:?}: \
             every arm overwrites that field, so the override would never run \
             (edit the spec's axis arms instead)",
            spec.name
        ));
    }
    spec.patch.merge(overrides);
    Ok(())
}

/// Resolves the spec a `pd run` invocation asks for: a registered
/// builtin by name, or a file/bare name via `--spec` (bare names search
/// `examples/specs/` and `$PD_SPEC_PATH`) — then layers any `--set`
/// overrides onto its patch.
fn resolve_spec(run: &RunArgs, registry: &ScenarioRegistry) -> Result<ScenarioSpec, String> {
    let mut spec = match (&run.scenario, &run.spec) {
        (Some(name), None) => registry
            .get(name)
            .ok_or_else(|| unknown_scenario(registry, name))?
            .clone(),
        (None, Some(arg)) => pd_core::load_spec(arg)?,
        _ => unreachable!("parse_run enforces scenario xor spec"),
    };
    apply_overrides(&mut spec, &run.overrides)?;
    Ok(spec)
}

fn execute_run(run: &RunArgs, registry: &ScenarioRegistry) -> Result<(), String> {
    let spec = resolve_spec(run, registry)?;
    let scenario_name = spec.name.clone();
    let observer = Arc::new(TimingObserver::new());
    let mut builder = Experiment::builder()
        .spec(spec)
        .seed(run.seed)
        .profile(run.profile)
        .threads(run.threads)
        .observer(observer.clone());
    if let Some(dir) = &run.artifacts {
        builder = builder.artifacts(dir.clone()).store_format(run.format);
    }
    // Sweep arms run concurrently (the thread budget splits arm-level ×
    // intra-arm); output, artifact saves and observer events stay in
    // label order.
    let arms = builder.run_sweep().map_err(|e| e.to_string())?;

    let mut reports = Vec::new();
    for pd_core::SweepArmRun {
        label,
        engine,
        analysis,
    } in arms
    {
        let fleet = engine.world().sheriff.vantage_points().len();
        let report = analysis.report.clone();
        if label.is_empty() {
            println!(
                "== {} (profile {}, seed {}, {} threads, {fleet} probes) ==",
                scenario_name,
                run.profile.name(),
                run.seed,
                engine.executor().threads(),
            );
        } else {
            println!("== {scenario_name} / {label} ==");
        }
        print!("{}", report.render_summary());
        if run.render {
            println!("{}", report.render_all());
        }
        if let Some(dir) = engine.artifacts_dir().map(Path::to_path_buf) {
            if !engine.loaded_stages().is_empty() {
                println!(
                    "artifacts: reused {} from {}",
                    stage_names(engine.loaded_stages()),
                    dir.display()
                );
            }
            let saved = match engine.save_artifacts(&dir) {
                Ok(saved) => saved,
                // A store from a different run is never silently
                // clobbered; replacing it takes an explicit flag.
                Err(StoreError::PlanMismatch { .. }) if run.overwrite_artifacts => {
                    std::fs::remove_dir_all(&dir)
                        .map_err(|e| format!("clearing {}: {e}", dir.display()))?;
                    engine.save_artifacts(&dir).map_err(|e| e.to_string())?
                }
                Err(e @ StoreError::PlanMismatch { .. }) => {
                    return Err(format!(
                        "{e}; pass --overwrite-artifacts to replace the store"
                    ));
                }
                Err(e) => return Err(e.to_string()),
            };
            engine
                .save_analysis(&dir, &analysis)
                .map_err(|e| e.to_string())?;
            if saved.saved.is_empty() {
                println!("artifacts: store up to date ({})", dir.display());
            } else {
                println!(
                    "artifacts: saved {} + analysis to {}",
                    saved.saved.join(", "),
                    dir.display()
                );
            }
        }
        println!();
        reports.push((label, report));
    }

    if run.timings {
        print_timings(&observer);
    }
    if let Some(path) = &run.json {
        write_json(path, &reports)?;
    }
    Ok(())
}

fn execute_rerun(rerun: &RerunArgs) -> Result<(), String> {
    let store = ArtifactStore::open(&rerun.dir).map_err(|e| e.to_string())?;
    let manifest = store.manifest().clone();
    drop(store);

    let mut plan = manifest.plan.to_plan();
    if let Some(n) = rerun.fig1_top {
        plan.config.analysis.fig1_domains = n;
    }
    if let Some(n) = rerun.attribution_products {
        plan.config.analysis.attribution_products = n;
    }

    let observer = Arc::new(TimingObserver::new());
    let p = &manifest.provenance;
    let mut engine =
        Engine::from_plan(plan, Executor::new(rerun.threads), observer.clone()).with_provenance(
            Provenance::new(&p.scenario, &p.label, &p.profile, p.seed, rerun.threads),
        );
    let summary = engine
        .load_artifacts(&rerun.dir)
        .map_err(|e| e.to_string())?;
    if !summary.complete() {
        let mut problems = Vec::new();
        if !summary.missing.is_empty() {
            problems.push(format!("missing: {}", stage_names(&summary.missing)));
        }
        if !summary.stale.is_empty() {
            problems.push(format!(
                "stale fingerprints: {}",
                stage_names(&summary.stale)
            ));
        }
        if !summary.corrupt.is_empty() {
            problems.push(format!("corrupt: {}", stage_names(&summary.corrupt)));
        }
        return Err(format!(
            "cannot re-analyze {}: {} (run `pd artifacts ls {}` for details)",
            rerun.dir.display(),
            problems.join("; "),
            rerun.dir.display(),
        ));
    }

    let report = engine.analyze().report;
    println!(
        "== rerun {} (stored scenario {}{}, seed {}, {} threads) ==",
        rerun.dir.display(),
        p.scenario,
        if p.label.is_empty() {
            String::new()
        } else {
            format!(" / {}", p.label)
        },
        p.seed,
        engine.executor().threads(),
    );
    println!(
        "artifacts: reused {} from {}",
        stage_names(engine.loaded_stages()),
        rerun.dir.display()
    );
    print!("{}", report.render_summary());
    if rerun.render {
        println!("{}", report.render_all());
    }
    println!();
    if rerun.timings {
        print_timings(&observer);
    }
    if let Some(path) = &rerun.json {
        write_json(path, &[(String::new(), report)])?;
    }
    Ok(())
}

fn execute_artifacts_ls(dir: &Path) -> Result<(), String> {
    let store = ArtifactStore::open(dir).map_err(|e| e.to_string())?;
    let m = store.manifest();
    let p = &m.provenance;
    println!("artifact store {}", dir.display());
    println!(
        "  scenario {}{}  profile {}  seed {}  threads {}",
        p.scenario,
        if p.label.is_empty() {
            String::new()
        } else {
            format!(" / {}", p.label)
        },
        p.profile,
        p.seed,
        p.threads,
    );
    println!(
        "  schema v{}  created {} (unix ms)",
        m.schema_version, p.created_unix_ms
    );
    println!(
        "  {:<10} {:<17} {:>10} {:>10} {:>7} {:>7}  status",
        "stage", "fingerprint", "bytes", "payload", "format", "chunks"
    );
    for (entry, health) in store.verify() {
        // Payload size (the artifact body inside the envelope, recorded
        // at save time). "-" for manifests written before the field
        // existed; likewise chunks for JSON entries (unchunked).
        let payload = entry
            .payload_bytes
            .map_or_else(|| "-".to_owned(), |b| b.to_string());
        let chunks = entry
            .chunks
            .map_or_else(|| "-".to_owned(), |c| c.to_string());
        println!(
            "  {:<10} {:<17} {:>10} {:>10} {:>7} {:>7}  {}",
            entry.stage,
            entry.fingerprint,
            entry.bytes,
            payload,
            entry.store_format().as_str(),
            chunks,
            health
        );
        for up in &entry.upstream {
            println!("  {:<10} upstream {up}", "");
        }
    }
    Ok(())
}

/// `pd artifacts migrate DIR`: re-encode every stored payload in the
/// requested format (binary by default), in place, under the same
/// fingerprints — a later load sees byte-identical artifacts.
fn execute_artifacts_migrate(dir: &Path, format: StoreFormat) -> Result<(), String> {
    let mut store = ArtifactStore::open(dir).map_err(|e| e.to_string())?;
    let moved = store.migrate(format).map_err(|e| e.to_string())?;
    println!("migrated {} to {format} payloads", dir.display());
    if moved.is_empty() {
        println!("  (store has no entries)");
    }
    for (stage, old_bytes, new_bytes) in moved {
        println!("  {stage:<10} {old_bytes:>10} -> {new_bytes:>10} bytes");
    }
    Ok(())
}

/// `pd scenarios show NAME [--json]`: dump a registered scenario — the
/// human summary by default, the editable JSON spec with `--json`
/// (pipe it to a file, edit, and feed it back through `pd run --spec`).
fn execute_scenarios_show(
    registry: &ScenarioRegistry,
    name: &str,
    json: bool,
) -> Result<(), String> {
    let spec = registry
        .get(name)
        .ok_or_else(|| unknown_scenario(registry, name))?;
    if json {
        println!("{}", spec.to_json_pretty());
        return Ok(());
    }
    println!("{:<12} {}", "scenario", spec.name);
    println!("{:<12} {}", "describe", spec.describe);
    println!(
        "{:<12} {}",
        "base",
        spec.base.as_deref().unwrap_or("(requested profile)")
    );
    let patch = serde_json::to_string(&spec.patch).map_err(|e| e.to_string())?;
    println!("{:<12} {patch}", "patch");
    if spec.sweep.is_empty() {
        println!("{:<12} (single run)", "sweep");
    } else {
        for axis in &spec.sweep {
            let axis = serde_json::to_string(axis).map_err(|e| e.to_string())?;
            println!("{:<12} {axis}", "sweep");
        }
    }
    println!("\n(dump as an editable spec: pd scenarios show {name} --json)");
    Ok(())
}

fn parse_serve(mut args: std::env::Args) -> Result<ServeArgs, String> {
    let mut serve = ServeArgs {
        addr: DEFAULT_ADDR.to_owned(),
        threads: 4,
        job_threads: 1,
        runners: 0,
        artifacts: None,
        queue: 16,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => serve.addr = args.next().ok_or("--addr needs HOST:PORT")?,
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                serve.threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
            }
            "--job-threads" => {
                let v = args.next().ok_or("--job-threads needs a value")?;
                serve.job_threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
            }
            "--runners" => {
                let v = args.next().ok_or("--runners needs a value")?;
                serve.runners = v.parse().map_err(|_| format!("bad runner count {v:?}"))?;
            }
            "--artifacts" => {
                serve.artifacts = Some(PathBuf::from(
                    args.next().ok_or("--artifacts needs a directory")?,
                ));
            }
            "--queue" => {
                let v = args.next().ok_or("--queue needs a capacity")?;
                serve.queue = v.parse().map_err(|_| format!("bad queue capacity {v:?}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(serve)
}

fn parse_submit(
    mut args: std::env::Args,
    registry: &ScenarioRegistry,
) -> Result<SubmitArgs, String> {
    let mut submit = SubmitArgs {
        scenario: None,
        spec: None,
        overrides: ConfigPatch::default(),
        has_overrides: false,
        seed: None,
        profile: None,
        addr: DEFAULT_ADDR.to_owned(),
    };
    let mut first = true;
    while let Some(arg) = args.next() {
        if std::mem::take(&mut first) && !arg.starts_with("--") {
            if registry.get(&arg).is_none() {
                return Err(unknown_scenario(registry, &arg));
            }
            submit.scenario = Some(arg);
            continue;
        }
        match arg.as_str() {
            "--spec" => {
                submit.spec = Some(args.next().ok_or("--spec needs a file path or name")?);
            }
            "--set" => {
                let kv = args.next().ok_or("--set needs key=value")?;
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--set {kv:?} is not key=value"))?;
                submit.overrides.set(key, value)?;
                submit.has_overrides = true;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                submit.seed = Some(v.parse().map_err(|_| format!("bad seed {v:?}"))?);
            }
            "--profile" => {
                let v = args.next().ok_or("--profile needs a value")?;
                submit.profile = Some(Profile::parse(&v).ok_or(format!("unknown profile {v:?}"))?);
            }
            "--addr" => submit.addr = args.next().ok_or("--addr needs HOST:PORT")?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    match (&submit.scenario, &submit.spec) {
        (None, None) => Err("`pd submit` needs a scenario name or --spec FILE_OR_NAME".to_owned()),
        (Some(_), Some(_)) => Err("pass a scenario name or --spec, not both".to_owned()),
        _ => Ok(submit),
    }
}

fn parse_poll(mut args: std::env::Args) -> Result<PollArgs, String> {
    let id = args.next().ok_or("`pd poll` needs a job id (e.g. j-1)")?;
    let mut poll = PollArgs {
        id,
        addr: DEFAULT_ADDR.to_owned(),
        json: None,
        timeout_secs: 300,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => poll.addr = args.next().ok_or("--addr needs HOST:PORT")?,
            "--json" => poll.json = Some(args.next().ok_or("--json needs a path")?),
            "--timeout-secs" => {
                let v = args.next().ok_or("--timeout-secs needs a value")?;
                poll.timeout_secs = v.parse().map_err(|_| format!("bad timeout {v:?}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(poll)
}

/// Parses the `[--addr HOST:PORT]` tail shared by `pd metrics` and
/// `pd shutdown`.
fn parse_addr_only(mut args: std::env::Args, command: &str) -> Result<String, String> {
    let mut addr = DEFAULT_ADDR.to_owned();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().ok_or("--addr needs HOST:PORT")?,
            other => {
                return Err(format!(
                    "unknown flag {other:?} (usage: pd {command} [--addr HOST:PORT])"
                ))
            }
        }
    }
    Ok(addr)
}

/// `pd serve`: start the daemon and block until it drains (via
/// `POST /shutdown`). Exit 0 after a graceful drain.
fn execute_serve(serve: &ServeArgs) -> Result<(), String> {
    let config = pd_serve::ServeConfig {
        addr: serve.addr.clone(),
        threads: serve.threads,
        job_threads: serve.job_threads,
        runners: serve.runners,
        artifacts: serve.artifacts.clone(),
        queue_capacity: serve.queue,
        ..pd_serve::ServeConfig::default()
    };
    let runner_count = config.effective_runners();
    let server = pd_serve::Server::start(config)?;
    println!(
        "pd serve listening on {} ({} workers, {} runners, queue capacity {})",
        server.addr(),
        serve.threads.max(1),
        runner_count,
        serve.queue.max(1),
    );
    if let Some(dir) = &serve.artifacts {
        println!("artifact store (read-through): {}", dir.display());
    }
    println!("endpoints: POST /runs, GET /runs[/ID[/report]], GET /healthz, GET /metrics, POST /shutdown");
    server.join();
    println!("pd serve: drained and exited");
    Ok(())
}

/// `pd submit`: queue one job on a running daemon. A bare scenario name
/// without `--set` is sent by name (the daemon resolves it against its
/// registry and spec search path); `--spec` and `--set` resolve
/// client-side and send the full inline spec.
fn execute_submit(submit: &SubmitArgs, registry: &ScenarioRegistry) -> Result<(), String> {
    let mut request = pd_serve::SubmitRequest {
        seed: submit.seed,
        profile: submit.profile.map(|p| p.name().to_owned()),
        ..pd_serve::SubmitRequest::default()
    };
    match (&submit.scenario, &submit.spec) {
        (Some(name), None) if !submit.has_overrides => request.scenario = Some(name.clone()),
        (Some(name), None) => {
            let mut spec = registry
                .get(name)
                .ok_or_else(|| unknown_scenario(registry, name))?
                .clone();
            apply_overrides(&mut spec, &submit.overrides)?;
            request.spec = Some(spec);
        }
        (None, Some(arg)) => {
            let mut spec = pd_core::load_spec(arg)?;
            apply_overrides(&mut spec, &submit.overrides)?;
            request.spec = Some(spec);
        }
        _ => unreachable!("parse_submit enforces scenario xor spec"),
    }
    let client = pd_serve::Client::new(&submit.addr);
    let id = client.submit(&request)?;
    eprintln!(
        "submitted to {}; poll with: pd poll {id} --addr {}",
        submit.addr, submit.addr
    );
    // The bare id on stdout so scripts can capture it: ID=$(pd submit …).
    println!("{id}");
    Ok(())
}

/// `pd poll`: wait for a job, print its frame-cache counters (one
/// greppable line) and rendered summary, optionally write the report —
/// byte-identical to the offline `pd run --json` output.
fn execute_poll(poll: &PollArgs) -> Result<(), String> {
    let client = pd_serve::Client::new(&poll.addr);
    let done = client.wait_done(&poll.id, std::time::Duration::from_secs(poll.timeout_secs))?;
    println!(
        "job {} done: scenario {} (queued {} ms, ran {} ms)",
        done.id,
        done.scenario,
        done.queued_ms.unwrap_or(0),
        done.run_ms.unwrap_or(0),
    );
    println!(
        "frames: built={} reused={} chunks_loaded={} store_loads={}",
        done.frames_built, done.frames_reused, done.frames_chunks_loaded, done.store_loads,
    );
    if let Some(rendered) = &done.rendered {
        print!("{rendered}");
    }
    if let Some(path) = &poll.json {
        let report = client.report(&done.id)?;
        std::fs::write(path, report).map_err(|e| format!("writing {path:?}: {e}"))?;
        println!("report JSON written to {path}");
    }
    Ok(())
}

fn fail(code: i32, msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(code);
}

fn main() {
    let registry = ScenarioRegistry::builtin();
    let mut args = std::env::args();
    let _ = args.next(); // argv[0]
    match args.next().as_deref() {
        Some("run") => {
            let run = parse_run(args, &registry).unwrap_or_else(|e| fail(2, &e));
            if let Err(e) = execute_run(&run, &registry) {
                fail(1, &e);
            }
        }
        Some("rerun") => {
            let rerun = parse_rerun(args).unwrap_or_else(|e| fail(2, &e));
            if let Err(e) = execute_rerun(&rerun) {
                fail(1, &e);
            }
        }
        Some("artifacts") => match (args.next().as_deref(), args.next()) {
            (Some("ls"), Some(dir)) => {
                if let Err(e) = execute_artifacts_ls(Path::new(&dir)) {
                    fail(1, &e);
                }
            }
            (Some("migrate"), Some(dir)) => {
                let format = match (args.next().as_deref(), args.next()) {
                    (None, None) => StoreFormat::Binary,
                    (Some("--format"), Some(v)) => StoreFormat::parse(&v)
                        .unwrap_or_else(|| fail(2, &format!("unknown format {v:?} (json|binary)"))),
                    _ => fail(
                        2,
                        "usage: pd artifacts migrate <DIR> [--format json|binary]",
                    ),
                };
                if let Err(e) = execute_artifacts_migrate(Path::new(&dir), format) {
                    fail(1, &e);
                }
            }
            _ => fail(
                2,
                "usage: pd artifacts ls <DIR> | pd artifacts migrate <DIR> [--format json|binary]",
            ),
        },
        Some("scenarios") => match (args.next().as_deref(), args.next(), args.next().as_deref()) {
            (Some("show"), Some(name), json) if json.is_none() || json == Some("--json") => {
                if let Err(e) = execute_scenarios_show(&registry, &name, json.is_some()) {
                    fail(2, &e);
                }
            }
            (Some("list" | "ls"), None, None) => print!("{}", scenario_lines(&registry)),
            _ => fail(
                2,
                "usage: pd scenarios show <NAME> [--json] | pd scenarios list",
            ),
        },
        Some("serve") => {
            let serve = parse_serve(args).unwrap_or_else(|e| fail(2, &e));
            if let Err(e) = execute_serve(&serve) {
                fail(1, &e);
            }
        }
        Some("submit") => {
            let submit = parse_submit(args, &registry).unwrap_or_else(|e| fail(2, &e));
            if let Err(e) = execute_submit(&submit, &registry) {
                fail(1, &e);
            }
        }
        Some("poll") => {
            let poll = parse_poll(args).unwrap_or_else(|e| fail(2, &e));
            if let Err(e) = execute_poll(&poll) {
                fail(1, &e);
            }
        }
        Some("metrics") => {
            let addr = parse_addr_only(args, "metrics").unwrap_or_else(|e| fail(2, &e));
            match pd_serve::Client::new(&addr).metrics() {
                Ok(text) => print!("{text}"),
                Err(e) => fail(1, &e),
            }
        }
        Some("shutdown") => {
            let addr = parse_addr_only(args, "shutdown").unwrap_or_else(|e| fail(2, &e));
            if let Err(e) = pd_serve::Client::new(&addr).shutdown() {
                fail(1, &e);
            }
            println!("shutdown requested; {addr} is draining");
        }
        Some("list") => {
            print!("{}", scenario_lines(&registry));
        }
        Some("--help" | "-h" | "help") | None => print!("{}", usage(&registry)),
        Some(other) => {
            fail(
                2,
                &format!("unknown command {other:?}\n\n{}", usage(&registry)),
            );
        }
    }
}
