//! Workspace root package.
//!
//! This crate only hosts the workspace-level `examples/` and `tests/`;
//! the library code lives in `crates/`:
//!
//! * [`pd_core`] — the public pipeline API (start here),
//! * `pd-util`, `pd-net`, `pd-html`, `pd-currency`, `pd-pricing`,
//!   `pd-web`, `pd-extract`, `pd-sheriff`, `pd-crawler`, `pd-analysis` —
//!   the substrates and stages, re-exported through `pd_core`.

pub use pd_core;
