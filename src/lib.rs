//! Workspace root package.
//!
//! This crate hosts the workspace-level `examples/`, `tests/` and the
//! `pd` CLI (`src/bin/pd.rs` — the scenario runner: `pd run <scenario>
//! [--threads N]`); the library code lives in `crates/`:
//!
//! * [`pd_core`] — scenarios, typed stages, the deterministic engine
//!   (start here),
//! * `pd-util`, `pd-net`, `pd-html`, `pd-currency`, `pd-pricing`,
//!   `pd-web`, `pd-extract`, `pd-sheriff`, `pd-crawler`, `pd-analysis` —
//!   the substrates and stages, re-exported through `pd_core`.

pub use pd_core;
