//! Structural node paths — the representation of a user's highlight.
//!
//! When a $heriff user highlights a price, the extension records *where*
//! in the page that text lives. That record must survive the trip to 13
//! other vantage points whose copies of the page differ: other currency
//! symbols, other recommended products, sometimes extra banner elements.
//!
//! A [`NodePath`] captures the highlighted element three ways, strongest
//! first:
//!
//! 1. **Anchor id** — the nearest ancestor with an `id` attribute plus the
//!    relative tag/index steps below it,
//! 2. **Class signature** — the element's tag and class list,
//! 3. **Absolute steps** — tag + same-tag sibling index from the root.
//!
//! [`NodePath::resolve`] tries the strategies in that order. The layered
//! design is what makes extraction robust when a foreign copy inserts or
//! removes sibling elements — exactly the noise the paper had to survive.

use crate::dom::{Document, NodeData, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One step of a structural path: "the `index`-th `tag` child".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step {
    /// Lowercased tag name.
    pub tag: String,
    /// 0-based index among same-tag element siblings.
    pub index: usize,
}

/// A resolvable description of one element's position in a document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePath {
    /// Nearest ancestor `id` (if any) and steps from that anchor down to
    /// the element (empty steps = the anchor itself).
    pub anchor: Option<(String, Vec<Step>)>,
    /// Tag of the target element.
    pub tag: String,
    /// Class list of the target element (sorted, for stable comparison).
    pub classes: Vec<String>,
    /// Absolute steps from the root.
    pub absolute: Vec<Step>,
}

impl NodePath {
    /// Captures the path of `el` in `doc`.
    ///
    /// # Panics
    ///
    /// Panics if `el` is not an element node — highlights always land on
    /// elements (the extension normalizes text selections to their parent
    /// element).
    #[must_use]
    pub fn capture(doc: &Document, el: NodeId) -> Self {
        let tag = doc
            .tag(el)
            .expect("highlight target must be an element")
            .to_owned();
        let mut classes: Vec<String> = doc.classes(el).map(str::to_owned).collect();
        classes.sort();

        // Absolute steps root → el.
        let mut chain = Vec::new();
        let mut cur = Some(el);
        while let Some(n) = cur {
            if let NodeData::Element { tag, .. } = &doc.node(n).data {
                chain.push(Step {
                    tag: tag.clone(),
                    index: doc.same_tag_sibling_index(n),
                });
            }
            cur = doc.node(n).parent;
        }
        chain.reverse();

        // Anchor: nearest ancestor (or self) with an id.
        let mut anchor = None;
        let mut steps_below = Vec::new();
        let mut cur = Some(el);
        while let Some(n) = cur {
            if let Some(id) = doc.element_id(n) {
                anchor = Some((id.to_owned(), {
                    let mut s = steps_below.clone();
                    s.reverse();
                    s
                }));
                break;
            }
            if let NodeData::Element { tag, .. } = &doc.node(n).data {
                steps_below.push(Step {
                    tag: tag.clone(),
                    index: doc.same_tag_sibling_index(n),
                });
            }
            cur = doc.node(n).parent;
        }

        NodePath {
            anchor,
            tag,
            classes,
            absolute: chain,
        }
    }

    /// Resolves the path against a (possibly different) document.
    ///
    /// Strategy order: anchor id, then class signature, then absolute
    /// steps. Returns `None` when nothing matches — the measurement is
    /// then recorded as an extraction failure, as $heriff did.
    #[must_use]
    pub fn resolve(&self, doc: &Document) -> Option<NodeId> {
        self.resolve_by_anchor(doc)
            .or_else(|| self.resolve_by_classes(doc))
            .or_else(|| self.resolve_by_absolute(doc))
    }

    /// Which strategy [`NodePath::resolve`] would use on `doc`, for
    /// diagnostics and the extraction-robustness ablation.
    #[must_use]
    pub fn resolve_strategy(&self, doc: &Document) -> Option<ResolveStrategy> {
        if self.resolve_by_anchor(doc).is_some() {
            Some(ResolveStrategy::Anchor)
        } else if self.resolve_by_classes(doc).is_some() {
            Some(ResolveStrategy::ClassSignature)
        } else if self.resolve_by_absolute(doc).is_some() {
            Some(ResolveStrategy::Absolute)
        } else {
            None
        }
    }

    fn resolve_by_anchor(&self, doc: &Document) -> Option<NodeId> {
        let (id, steps) = self.anchor.as_ref()?;
        let anchor = doc
            .elements()
            .into_iter()
            .find(|&el| doc.element_id(el) == Some(id.as_str()))?;
        let target = walk_steps(doc, anchor, steps)?;
        // The target must still look like what was highlighted.
        (doc.tag(target) == Some(self.tag.as_str())).then_some(target)
    }

    fn resolve_by_classes(&self, doc: &Document) -> Option<NodeId> {
        if self.classes.is_empty() {
            return None;
        }
        let mut hits = doc.elements().into_iter().filter(|&el| {
            if doc.tag(el) != Some(self.tag.as_str()) {
                return false;
            }
            let mut cls: Vec<String> = doc.classes(el).map(str::to_owned).collect();
            cls.sort();
            cls == self.classes
        });
        let first = hits.next()?;
        // Ambiguity (several same-class nodes, e.g. recommended products)
        // means this strategy cannot be trusted.
        if hits.next().is_some() {
            return None;
        }
        Some(first)
    }

    fn resolve_by_absolute(&self, doc: &Document) -> Option<NodeId> {
        // The root's element chain starts below ROOT.
        walk_steps(doc, NodeId::ROOT, &self.absolute)
    }
}

/// Strategy that succeeded when resolving a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolveStrategy {
    /// Matched via the nearest `id` anchor.
    Anchor,
    /// Matched via the tag + class signature.
    ClassSignature,
    /// Matched via absolute tag/index steps.
    Absolute,
}

fn walk_steps(doc: &Document, from: NodeId, steps: &[Step]) -> Option<NodeId> {
    let mut cur = from;
    for step in steps {
        cur = *doc
            .node(cur)
            .children
            .iter()
            .filter(|&&c| doc.tag(c) == Some(step.tag.as_str()))
            .nth(step.index)?;
    }
    Some(cur)
}

impl fmt::Display for NodePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some((id, steps)) = &self.anchor {
            write!(f, "#{id}")?;
            for s in steps {
                write!(f, " > {}[{}]", s.tag, s.index)?;
            }
        } else {
            let mut first = true;
            for s in &self.absolute {
                if !first {
                    write!(f, " > ")?;
                }
                write!(f, "{}[{}]", s.tag, s.index)?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::selector::Selector;

    const PAGE_A: &str = r#"
        <html><body>
          <div class="banner">SALE!</div>
          <div id="product">
            <h1>Camera</h1>
            <span class="value main-price">$1,299.00</span>
          </div>
          <div class="reco"><span class="value">$19.99</span></div>
        </body></html>"#;

    /// Same template rendered at another vantage point: different
    /// currency, an extra banner inserted before the product.
    const PAGE_B: &str = r#"
        <html><body>
          <div class="banner">SOLDES!</div>
          <div class="banner">LIVRAISON GRATUITE</div>
          <div id="product">
            <h1>Camera</h1>
            <span class="value main-price">1.199,00&nbsp;&euro;</span>
          </div>
          <div class="reco"><span class="value">18,99&nbsp;&euro;</span></div>
        </body></html>"#;

    fn highlight(docsrc: &str) -> (crate::dom::Document, NodePath) {
        let doc = parse(docsrc);
        let el = Selector::parse("#product span")
            .unwrap()
            .query_first(&doc)
            .unwrap();
        let path = NodePath::capture(&doc, el);
        (doc, path)
    }

    #[test]
    fn capture_records_anchor_and_classes() {
        let (_, path) = highlight(PAGE_A);
        let (id, steps) = path.anchor.as_ref().unwrap();
        assert_eq!(id, "product");
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].tag, "span");
        assert_eq!(path.tag, "span");
        assert_eq!(
            path.classes,
            vec!["main-price".to_string(), "value".to_string()]
        );
    }

    #[test]
    fn resolve_on_same_document() {
        let (doc, path) = highlight(PAGE_A);
        let hit = path.resolve(&doc).unwrap();
        assert_eq!(doc.text_content(hit), "$1,299.00");
        assert_eq!(path.resolve_strategy(&doc), Some(ResolveStrategy::Anchor));
    }

    #[test]
    fn resolve_on_foreign_copy_with_inserted_siblings() {
        // The extra banner shifts absolute indices; anchor resolution
        // must still find the right node.
        let (_, path) = highlight(PAGE_A);
        let doc_b = parse(PAGE_B);
        let hit = path.resolve(&doc_b).unwrap();
        assert_eq!(doc_b.text_content(hit), "1.199,00\u{a0}€");
    }

    #[test]
    fn class_fallback_when_anchor_missing() {
        let (_, path) = highlight(PAGE_A);
        // Same page but the id was renamed (template variant).
        let variant = PAGE_A.replace("id=\"product\"", "class=\"product\"");
        let doc = parse(&variant);
        let hit = path.resolve(&doc).unwrap();
        assert_eq!(doc.text_content(hit), "$1,299.00");
        assert_eq!(
            path.resolve_strategy(&doc),
            Some(ResolveStrategy::ClassSignature)
        );
    }

    #[test]
    fn class_fallback_refuses_ambiguity() {
        let (_, path) = highlight(PAGE_A);
        // Two identical class signatures and no anchor: must not guess.
        let ambiguous = r#"
            <html><body>
              <span class="value main-price">$1</span>
              <span class="value main-price">$2</span>
            </body></html>"#;
        let doc = parse(ambiguous);
        // Anchor fails (no #product), class is ambiguous, absolute path
        // points at body's first span-ish position which doesn't exist
        // along the captured chain.
        assert_eq!(path.resolve_strategy(&doc), None);
        assert!(path.resolve(&doc).is_none());
    }

    #[test]
    fn absolute_fallback_when_no_anchor_no_classes() {
        let src = "<html><body><div><span>$5</span></div></body></html>";
        let doc = parse(src);
        let el = Selector::parse("span").unwrap().query_first(&doc).unwrap();
        let path = NodePath::capture(&doc, el);
        assert!(path.anchor.is_none());
        assert!(path.classes.is_empty());
        let doc2 = parse(src);
        assert_eq!(
            path.resolve_strategy(&doc2),
            Some(ResolveStrategy::Absolute)
        );
        let hit = path.resolve(&doc2).unwrap();
        assert_eq!(doc2.text_content(hit), "$5");
    }

    #[test]
    fn anchor_verifies_tag() {
        let (_, path) = highlight(PAGE_A);
        // Anchor exists but the step now lands on a <b>: must reject and
        // fall back (here: class signature still matches nothing of tag
        // span under new layout? it does match — only tag check matters).
        let mutated = PAGE_A.replace(
            r#"<span class="value main-price">$1,299.00</span>"#,
            r#"<b class="other">$1,299.00</b>"#,
        );
        let doc = parse(&mutated);
        assert_ne!(path.resolve_strategy(&doc), Some(ResolveStrategy::Anchor));
    }

    #[test]
    fn display_renders_anchor_form() {
        let (_, path) = highlight(PAGE_A);
        assert_eq!(path.to_string(), "#product > span[0]");
    }

    #[test]
    fn display_renders_absolute_form() {
        let doc = parse("<html><body><span>x</span></body></html>");
        let el = Selector::parse("span").unwrap().query_first(&doc).unwrap();
        let path = NodePath::capture(&doc, el);
        assert_eq!(path.to_string(), "html[0] > body[0] > span[0]");
    }

    #[test]
    fn capture_of_anchor_element_itself() {
        // Highlighting the anchor element: steps below the anchor are empty.
        let doc = parse(r#"<div id="price-box">$7</div>"#);
        let el = Selector::parse("#price-box")
            .unwrap()
            .query_first(&doc)
            .unwrap();
        let path = NodePath::capture(&doc, el);
        let (id, steps) = path.anchor.as_ref().unwrap();
        assert_eq!(id, "price-box");
        assert!(steps.is_empty());
        assert_eq!(path.resolve(&doc), Some(el));
    }
}
