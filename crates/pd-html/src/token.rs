//! Streaming HTML tokenizer.
//!
//! Produces a flat token stream — start tags with attributes, end tags,
//! text, comments, doctype — from raw HTML. The tokenizer is lenient in
//! the ways 2013 retail HTML demands: unquoted and single-quoted
//! attributes, boolean attributes, stray `<` in text, `<script>`/`<style>`
//! raw-text handling, and unterminated constructs at end of input.

use serde::{Deserialize, Serialize};

/// One HTML attribute (`name="value"`); value is raw (entities are
/// resolved by the parser, not the tokenizer).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Lowercased attribute name.
    pub name: String,
    /// Attribute value; empty string for boolean attributes.
    pub value: String,
}

/// A token of the HTML stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Token {
    /// `<!doctype html>`.
    Doctype(String),
    /// `<tag attr=v ...>`; `self_closing` records an explicit `/>`.
    StartTag {
        /// Lowercased tag name.
        name: String,
        /// Attributes in source order.
        attrs: Vec<Attribute>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</tag>`.
    EndTag {
        /// Lowercased tag name.
        name: String,
    },
    /// A run of character data (entities unresolved).
    Text(String),
    /// `<!-- ... -->`.
    Comment(String),
}

/// Tokenizes an HTML string. Never fails: malformed input degrades to
/// text tokens, as in browsers.
#[must_use]
pub fn tokenize(input: &str) -> Vec<Token> {
    Tokenizer::new(input).run()
}

struct Tokenizer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Self {
        Tokenizer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'<' {
                self.tag_open();
            } else {
                self.text_run();
            }
        }
        self.tokens
    }

    fn remaining(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn starts_with_ci(&self, prefix: &str) -> bool {
        let rest = &self.bytes[self.pos..];
        rest.len() >= prefix.len()
            && rest[..prefix.len()]
                .iter()
                .zip(prefix.as_bytes())
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }

    /// Consumes a text run up to the next plausible tag start.
    fn text_run(&mut self) {
        let start = self.pos;
        self.pos += 1;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'<' && self.plausible_tag_at(self.pos) {
                break;
            }
            self.pos += 1;
        }
        let text = &self.input[start..self.pos];
        if !text.is_empty() {
            self.tokens.push(Token::Text(text.to_owned()));
        }
    }

    /// A `<` starts markup only if followed by a letter, `/`, `!` or `?`
    /// — otherwise it is literal text ("price < 10€").
    fn plausible_tag_at(&self, at: usize) -> bool {
        match self.bytes.get(at + 1) {
            Some(b) => b.is_ascii_alphabetic() || *b == b'/' || *b == b'!' || *b == b'?',
            None => false,
        }
    }

    fn tag_open(&mut self) {
        if !self.plausible_tag_at(self.pos) {
            self.text_run();
            return;
        }
        if self.starts_with_ci("<!--") {
            self.comment();
        } else if self.starts_with_ci("<!doctype") {
            self.doctype();
        } else if self.starts_with_ci("</") {
            self.end_tag();
        } else if self.starts_with_ci("<?") {
            // Processing instruction / bogus comment: skip to '>'.
            self.skip_until(b'>');
            self.pos = (self.pos + 1).min(self.bytes.len());
        } else if self.starts_with_ci("<!") {
            // Bogus comment (e.g. <![CDATA[ ... in HTML): skip to '>'.
            self.skip_until(b'>');
            self.pos = (self.pos + 1).min(self.bytes.len());
        } else {
            self.start_tag();
        }
    }

    fn comment(&mut self) {
        self.pos += 4; // "<!--"
        let start = self.pos;
        let end = self.remaining().find("-->").map(|o| self.pos + o);
        match end {
            Some(end) => {
                self.tokens
                    .push(Token::Comment(self.input[start..end].to_owned()));
                self.pos = end + 3;
            }
            None => {
                // Unterminated comment: swallow the rest.
                self.tokens
                    .push(Token::Comment(self.input[start..].to_owned()));
                self.pos = self.bytes.len();
            }
        }
    }

    fn doctype(&mut self) {
        self.pos += "<!doctype".len();
        let start = self.pos;
        self.skip_until(b'>');
        let body = self.input[start..self.pos].trim().to_owned();
        self.tokens.push(Token::Doctype(body));
        self.pos = (self.pos + 1).min(self.bytes.len());
    }

    fn end_tag(&mut self) {
        self.pos += 2; // "</"
        let name = self.tag_name();
        self.skip_until(b'>');
        self.pos = (self.pos + 1).min(self.bytes.len());
        if !name.is_empty() {
            self.tokens.push(Token::EndTag { name });
        }
    }

    fn start_tag(&mut self) {
        self.pos += 1; // "<"
        let name = self.tag_name();
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            self.skip_whitespace();
            match self.bytes.get(self.pos) {
                None => break,
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'>') {
                        self.pos += 1;
                        self_closing = true;
                        break;
                    }
                }
                Some(_) => {
                    if let Some(attr) = self.attribute() {
                        attrs.push(attr);
                    }
                }
            }
        }
        // Raw-text elements: consume until the matching close tag without
        // tokenizing the contents.
        if name == "script" || name == "style" {
            self.tokens.push(Token::StartTag {
                name: name.clone(),
                attrs,
                self_closing,
            });
            let close = format!("</{name}");
            let rest = self.remaining();
            let end = find_ci(rest, &close).unwrap_or(rest.len());
            if end > 0 {
                self.tokens
                    .push(Token::Text(self.input[self.pos..self.pos + end].to_owned()));
            }
            self.pos += end;
            // Consume the close tag if present.
            if self.pos < self.bytes.len() {
                self.end_tag_raw();
            }
            return;
        }
        self.tokens.push(Token::StartTag {
            name,
            attrs,
            self_closing,
        });
    }

    /// Consumes `</script>`-style closers after raw text; emits EndTag.
    fn end_tag_raw(&mut self) {
        self.pos += 2;
        let name = self.tag_name();
        self.skip_until(b'>');
        self.pos = (self.pos + 1).min(self.bytes.len());
        self.tokens.push(Token::EndTag { name });
    }

    fn tag_name(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric()
                || self.bytes[self.pos] == b'-'
                || self.bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        self.input[start..self.pos].to_ascii_lowercase()
    }

    fn attribute(&mut self) -> Option<Attribute> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && !matches!(
                self.bytes[self.pos],
                b'=' | b'>' | b'/' | b' ' | b'\t' | b'\n' | b'\r'
            )
        {
            self.pos += 1;
        }
        if self.pos == start {
            // Unparseable byte (e.g. stray quote): skip it to make progress.
            self.pos += 1;
            return None;
        }
        let name = self.input[start..self.pos].to_ascii_lowercase();
        self.skip_whitespace();
        if self.bytes.get(self.pos) != Some(&b'=') {
            return Some(Attribute {
                name,
                value: String::new(),
            });
        }
        self.pos += 1; // '='
        self.skip_whitespace();
        let value = match self.bytes.get(self.pos) {
            Some(&q @ (b'"' | b'\'')) => {
                self.pos += 1;
                let vstart = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != q {
                    self.pos += 1;
                }
                let v = self.input[vstart..self.pos].to_owned();
                self.pos = (self.pos + 1).min(self.bytes.len());
                v
            }
            _ => {
                let vstart = self.pos;
                while self.pos < self.bytes.len()
                    && !matches!(self.bytes[self.pos], b'>' | b' ' | b'\t' | b'\n' | b'\r')
                {
                    self.pos += 1;
                }
                self.input[vstart..self.pos].to_owned()
            }
        };
        Some(Attribute { name, value })
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, byte: u8) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != byte {
            self.pos += 1;
        }
    }
}

/// Case-insensitive substring search (ASCII).
fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    let hay = haystack.as_bytes();
    let nee = needle.as_bytes();
    (0..=hay.len() - nee.len()).find(|&i| {
        hay[i..i + nee.len()]
            .iter()
            .zip(nee)
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn start(name: &str, attrs: &[(&str, &str)]) -> Token {
        Token::StartTag {
            name: name.into(),
            attrs: attrs
                .iter()
                .map(|(n, v)| Attribute {
                    name: (*n).into(),
                    value: (*v).into(),
                })
                .collect(),
            self_closing: false,
        }
    }

    #[test]
    fn basic_document() {
        let toks = tokenize("<html><body>Hi</body></html>");
        assert_eq!(
            toks,
            vec![
                start("html", &[]),
                start("body", &[]),
                Token::Text("Hi".into()),
                Token::EndTag {
                    name: "body".into()
                },
                Token::EndTag {
                    name: "html".into()
                },
            ]
        );
    }

    #[test]
    fn attributes_quoted_unquoted_boolean() {
        let toks = tokenize(r#"<div id="p1" class='price main' data-x=5 hidden>"#);
        assert_eq!(
            toks,
            vec![start(
                "div",
                &[
                    ("id", "p1"),
                    ("class", "price main"),
                    ("data-x", "5"),
                    ("hidden", ""),
                ]
            )]
        );
    }

    #[test]
    fn self_closing_and_void() {
        let toks = tokenize("<br/><img src=x.png />");
        assert_eq!(
            toks,
            vec![
                Token::StartTag {
                    name: "br".into(),
                    attrs: vec![],
                    self_closing: true
                },
                Token::StartTag {
                    name: "img".into(),
                    attrs: vec![Attribute {
                        name: "src".into(),
                        value: "x.png".into()
                    }],
                    self_closing: true
                },
            ]
        );
    }

    #[test]
    fn doctype_and_comment() {
        let toks = tokenize("<!DOCTYPE html><!-- tracker --><p>x</p>");
        assert_eq!(toks[0], Token::Doctype("html".into()));
        assert_eq!(toks[1], Token::Comment(" tracker ".into()));
    }

    #[test]
    fn tag_names_lowercased() {
        let toks = tokenize("<DIV CLASS=Price></DIV>");
        assert_eq!(toks[0], start("div", &[("class", "Price")]));
        assert_eq!(toks[1], Token::EndTag { name: "div".into() });
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = tokenize("price < 10 eur");
        assert_eq!(toks, vec![Token::Text("price < 10 eur".into())]);
    }

    #[test]
    fn script_contents_not_tokenized() {
        let html = r#"<script>if (a < b) { track("<div>"); }</script><p>after</p>"#;
        let toks = tokenize(html);
        // raw text is emitted before the script start tag marker
        assert!(toks
            .iter()
            .any(|t| matches!(t, Token::Text(s) if s.contains("a < b") && s.contains("<div>"))));
        assert!(toks
            .iter()
            .any(|t| matches!(t, Token::StartTag { name, .. } if name == "p")));
    }

    #[test]
    fn unterminated_comment_consumed() {
        let toks = tokenize("<!-- never ends");
        assert_eq!(toks, vec![Token::Comment(" never ends".into())]);
    }

    #[test]
    fn unterminated_tag_at_eof() {
        let toks = tokenize("<div class=");
        assert_eq!(toks.len(), 1);
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "div"));
    }

    #[test]
    fn entities_left_unresolved() {
        let toks = tokenize("<span>&euro;12</span>");
        assert_eq!(toks[1], Token::Text("&euro;12".into()));
    }

    #[test]
    fn processing_instruction_skipped() {
        let toks = tokenize("<?xml version=\"1.0\"?><p>x</p>");
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "p"));
    }

    #[test]
    fn find_ci_works() {
        assert_eq!(find_ci("abcDEFg", "def"), Some(3));
        assert_eq!(find_ci("abc", "zz"), None);
        assert_eq!(find_ci("ab", "abc"), None);
        assert_eq!(find_ci("x</SCRIPT>", "</script"), Some(1));
    }

    proptest! {
        #[test]
        fn prop_tokenizer_never_panics(s in "\\PC{0,256}") {
            let _ = tokenize(&s);
        }

        #[test]
        fn prop_tokenizer_terminates_on_angle_soup(s in "[<>a-z/!\"= -]{0,256}") {
            let _ = tokenize(&s);
        }

        #[test]
        fn prop_text_round_trips_when_no_markup(s in "[a-zA-Z0-9 .,]{1,64}") {
            let toks = tokenize(&s);
            prop_assert_eq!(toks, vec![Token::Text(s.clone())]);
        }
    }
}
