//! Tree construction: tokens → [`Document`].
//!
//! A pragmatic subset of the HTML5 tree-building rules, sufficient for the
//! sloppy-but-sane markup of 2013 retail templates:
//!
//! * void elements never push onto the open-element stack,
//! * `<li>`, `<p>`, `<option>`, `<tr>`, `<td>`, `<th>` close an open
//!   element of the same tag implicitly,
//! * stray end tags are ignored,
//! * unclosed elements are closed at end of input,
//! * raw `<script>`/`<style>` text arrives pre-chunked from the tokenizer.

use crate::dom::{is_void, Document, NodeData, NodeId};
use crate::token::{tokenize, Token};

/// Parses HTML text into a document. Total: never fails, never panics;
/// arbitrarily broken input yields a best-effort tree.
///
/// # Examples
///
/// ```
/// use pd_html::{parse, Selector};
///
/// let doc = parse(r#"<div class="price">$12.99</div>"#);
/// let sel = Selector::parse("div.price").unwrap();
/// let hit = sel.query_first(&doc).unwrap();
/// assert_eq!(doc.text_content(hit), "$12.99");
/// ```
#[must_use]
pub fn parse(input: &str) -> Document {
    let mut doc = Document::new();
    let mut stack: Vec<NodeId> = vec![NodeId::ROOT];

    for token in tokenize(input) {
        let top = *stack.last().expect("stack never empty");
        match token {
            Token::Doctype(d) => {
                doc.append(NodeId::ROOT, NodeData::Doctype(d));
            }
            Token::Comment(c) => {
                doc.append(top, NodeData::Comment(c));
            }
            Token::Text(t) => {
                // Skip pure inter-tag whitespace to keep trees small; real
                // content whitespace (inside inline elements) survives
                // because it always neighbours non-space characters.
                if !t.trim().is_empty() || doc.tag(top).is_some_and(is_phrasing_container) {
                    doc.append_text(top, &t);
                }
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                // Implicit close: a new <li> closes the previous <li>, etc.
                if implicitly_self_nesting(&name) {
                    if let Some(pos) = stack.iter().rposition(|&n| doc.tag(n) == Some(&*name)) {
                        // Only close if the match is above the nearest
                        // scoping ancestor (a list/table container).
                        let blocked = stack[pos + 1..]
                            .iter()
                            .any(|&n| doc.tag(n).is_some_and(is_scope_boundary));
                        if !blocked {
                            stack.truncate(pos);
                        }
                    }
                }
                let parent = *stack.last().expect("stack never empty");
                let id = doc.append_element(parent, &name, attrs);
                if !self_closing && !is_void(&name) {
                    stack.push(id);
                }
            }
            Token::EndTag { name } => {
                if let Some(pos) = stack.iter().rposition(|&n| doc.tag(n) == Some(&*name)) {
                    if pos > 0 {
                        stack.truncate(pos);
                    }
                }
                // Stray end tag: ignored.
            }
        }
    }
    doc
}

/// Elements whose start tag implicitly closes a same-tag ancestor.
fn implicitly_self_nesting(tag: &str) -> bool {
    matches!(
        tag,
        "li" | "p" | "option" | "tr" | "td" | "th" | "dt" | "dd"
    )
}

/// Elements that bound the implicit-close search (a nested `<ul>` starts a
/// fresh `<li>` scope).
fn is_scope_boundary(tag: &str) -> bool {
    matches!(tag, "ul" | "ol" | "table" | "div" | "section" | "article")
}

/// Containers where whitespace-only text is meaningful enough to keep.
fn is_phrasing_container(tag: &str) -> bool {
    matches!(
        tag,
        "span" | "b" | "i" | "em" | "strong" | "a" | "small" | "sup" | "sub"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::Selector;
    use proptest::prelude::*;

    #[test]
    fn parses_nested_structure() {
        let doc = parse("<html><body><div id=a><p>one</p><p>two</p></div></body></html>");
        let sel = Selector::parse("div p").unwrap();
        let hits = sel.query_all(&doc);
        assert_eq!(hits.len(), 2);
        assert_eq!(doc.text_content(hits[0]), "one");
        assert_eq!(doc.text_content(hits[1]), "two");
    }

    #[test]
    fn doctype_recorded() {
        let doc = parse("<!DOCTYPE html><html></html>");
        let root_children = &doc.node(NodeId::ROOT).children;
        assert!(matches!(
            doc.node(root_children[0]).data,
            NodeData::Doctype(_)
        ));
    }

    #[test]
    fn li_implicit_close() {
        let doc = parse("<ul><li>a<li>b<li>c</ul>");
        let sel = Selector::parse("ul > li").unwrap();
        let lis = sel.query_all(&doc);
        assert_eq!(lis.len(), 3);
        assert_eq!(doc.text_content(lis[0]), "a");
        assert_eq!(doc.text_content(lis[2]), "c");
    }

    #[test]
    fn nested_list_does_not_close_outer_li() {
        let doc = parse("<ul><li>a<ul><li>inner</li></ul></li><li>b</li></ul>");
        let outer = Selector::parse("ul > li").unwrap().query_all(&doc);
        // Outer list has 2 items; inner list has 1. query_all sees all 3
        // li elements, but the first outer li must *contain* the inner.
        let all_li = Selector::parse("li").unwrap().query_all(&doc);
        assert_eq!(all_li.len(), 3);
        assert!(doc.text_content(outer[0]).contains("inner"));
    }

    #[test]
    fn p_implicit_close() {
        let doc = parse("<body><p>first<p>second</body>");
        let ps = Selector::parse("p").unwrap().query_all(&doc);
        assert_eq!(ps.len(), 2);
        assert_eq!(doc.text_content(ps[0]), "first");
    }

    #[test]
    fn stray_end_tag_ignored() {
        let doc = parse("<div>a</span></div><p>b</p>");
        let ps = Selector::parse("p").unwrap().query_all(&doc);
        assert_eq!(ps.len(), 1);
        assert_eq!(doc.text_content(ps[0]), "b");
    }

    #[test]
    fn unclosed_elements_closed_at_eof() {
        let doc = parse("<div><span>x");
        let span = Selector::parse("div > span").unwrap().query_first(&doc);
        assert!(span.is_some());
        assert_eq!(doc.text_content(span.unwrap()), "x");
    }

    #[test]
    fn void_elements_do_not_nest() {
        let doc = parse("<div><img src=a.png><span>after</span></div>");
        // <span> must be a child of <div>, not of <img>.
        let span = Selector::parse("div > span").unwrap().query_first(&doc);
        assert!(span.is_some());
    }

    #[test]
    fn script_text_preserved_raw() {
        let doc = parse("<script>var a = \"<div>\" ;</script>");
        let script = Selector::parse("script")
            .unwrap()
            .query_first(&doc)
            .unwrap();
        assert!(doc.text_content(script).contains("<div>"));
        // No spurious div element was created.
        assert!(Selector::parse("div").unwrap().query_first(&doc).is_none());
    }

    #[test]
    fn whitespace_between_blocks_dropped() {
        let doc = parse("<div>\n  <p>a</p>\n  <p>b</p>\n</div>");
        let div = Selector::parse("div").unwrap().query_first(&doc).unwrap();
        // Children: exactly the two <p>, no whitespace text nodes.
        assert_eq!(doc.node(div).children.len(), 2);
    }

    #[test]
    fn entity_in_text_decoded() {
        let doc = parse("<span class=price>&euro;12,99</span>");
        let s = Selector::parse("span.price")
            .unwrap()
            .query_first(&doc)
            .unwrap();
        assert_eq!(doc.text_content(s), "€12,99");
    }

    #[test]
    fn table_cells_implicitly_close() {
        let doc = parse("<table><tr><td>a<td>b<tr><td>c</table>");
        let tds = Selector::parse("td").unwrap().query_all(&doc);
        assert_eq!(tds.len(), 3);
        let trs = Selector::parse("tr").unwrap().query_all(&doc);
        assert_eq!(trs.len(), 2);
    }

    proptest! {
        #[test]
        fn prop_parse_never_panics(s in "\\PC{0,512}") {
            let _ = parse(&s);
        }

        #[test]
        fn prop_parse_tag_soup_never_panics(s in "[<>/a-z \"=!-]{0,512}") {
            let _ = parse(&s);
        }

        #[test]
        fn prop_reserialized_output_reparses_to_same_tree(
            s in "[a-z<>/ ]{0,128}"
        ) {
            // Parse → serialize → parse must be a fixed point (idempotent
            // normal form), a classic parser invariant.
            let d1 = parse(&s);
            let html1 = d1.to_html(crate::dom::NodeId::ROOT);
            let d2 = parse(&html1);
            let html2 = d2.to_html(crate::dom::NodeId::ROOT);
            prop_assert_eq!(html1, html2);
        }
    }
}
