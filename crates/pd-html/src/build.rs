//! Ergonomic document builder.
//!
//! The synthetic retailer templates (`pd-web`) assemble product pages
//! programmatically; this builder keeps that code readable. It is a thin
//! cursor over [`Document`]: `open` descends, `close` ascends, `text` and
//! `leaf` append.

use crate::dom::{Document, NodeData, NodeId};
use crate::token::Attribute;

/// A cursor-style builder over a [`Document`].
///
/// # Examples
///
/// ```
/// use pd_html::DocBuilder;
///
/// let doc = DocBuilder::page(|b| {
///     b.open("div", &[("id", "product")]);
///     b.open("span", &[("class", "price")]);
///     b.text("$9.99");
///     b.close();
///     b.close();
/// });
/// assert!(doc.to_html(pd_html::NodeId::ROOT).contains("$9.99"));
/// ```
#[derive(Debug)]
pub struct DocBuilder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl DocBuilder {
    /// Starts an empty builder positioned at the root.
    #[must_use]
    pub fn new() -> Self {
        DocBuilder {
            doc: Document::new(),
            stack: vec![NodeId::ROOT],
        }
    }

    /// Builds a full page: doctype + `<html><head></head><body>…</body></html>`,
    /// with `f` invoked inside `<body>`.
    #[must_use]
    pub fn page(f: impl FnOnce(&mut DocBuilder)) -> Document {
        let mut b = DocBuilder::new();
        b.doctype("html");
        b.open("html", &[]);
        b.open("head", &[]);
        b.close();
        b.open("body", &[]);
        f(&mut b);
        b.close(); // body
        b.close(); // html
        b.finish()
    }

    /// Like [`DocBuilder::page`] but lets the caller populate `<head>` too.
    #[must_use]
    pub fn page_with_head(
        head: impl FnOnce(&mut DocBuilder),
        body: impl FnOnce(&mut DocBuilder),
    ) -> Document {
        let mut b = DocBuilder::new();
        b.doctype("html");
        b.open("html", &[]);
        b.open("head", &[]);
        head(&mut b);
        b.close();
        b.open("body", &[]);
        body(&mut b);
        b.close();
        b.close();
        b.finish()
    }

    /// Appends a doctype at the current position.
    pub fn doctype(&mut self, d: &str) {
        let top = self.top();
        self.doc.append(top, NodeData::Doctype(d.to_owned()));
    }

    /// Opens an element and descends into it.
    pub fn open(&mut self, tag: &str, attrs: &[(&str, &str)]) -> &mut Self {
        let top = self.top();
        let id = self.doc.append_element(top, tag, to_attrs(attrs));
        self.stack.push(id);
        self
    }

    /// Closes the current element.
    ///
    /// # Panics
    ///
    /// Panics when called at the root — a builder bug in the template.
    pub fn close(&mut self) -> &mut Self {
        assert!(self.stack.len() > 1, "close() without matching open()");
        self.stack.pop();
        self
    }

    /// Appends a text node at the current position.
    pub fn text(&mut self, t: &str) -> &mut Self {
        let top = self.top();
        self.doc.append(top, NodeData::Text(t.to_owned()));
        self
    }

    /// Appends a childless element (e.g. `<img>`, `<meta>`).
    pub fn leaf(&mut self, tag: &str, attrs: &[(&str, &str)]) -> &mut Self {
        let top = self.top();
        self.doc.append_element(top, tag, to_attrs(attrs));
        self
    }

    /// Appends an element containing a single text node — the most common
    /// template pattern (`<span class=price>$9.99</span>`).
    pub fn text_element(&mut self, tag: &str, attrs: &[(&str, &str)], text: &str) -> &mut Self {
        self.open(tag, attrs);
        self.text(text);
        self.close();
        self
    }

    /// Appends a comment.
    pub fn comment(&mut self, c: &str) -> &mut Self {
        let top = self.top();
        self.doc.append(top, NodeData::Comment(c.to_owned()));
        self
    }

    /// Id of the element currently being built (the top of the stack).
    #[must_use]
    pub fn current(&self) -> NodeId {
        self.top()
    }

    /// Finishes and returns the document.
    ///
    /// # Panics
    ///
    /// Panics if elements remain open — templates must be balanced.
    #[must_use]
    pub fn finish(self) -> Document {
        assert_eq!(
            self.stack.len(),
            1,
            "unbalanced builder: {} elements left open",
            self.stack.len() - 1
        );
        self.doc
    }

    fn top(&self) -> NodeId {
        *self.stack.last().expect("stack never empty")
    }
}

impl Default for DocBuilder {
    fn default() -> Self {
        Self::new()
    }
}

fn to_attrs(attrs: &[(&str, &str)]) -> Vec<Attribute> {
    attrs
        .iter()
        .map(|(n, v)| Attribute {
            name: (*n).to_owned(),
            value: (*v).to_owned(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::selector::Selector;

    #[test]
    fn builds_and_serializes() {
        let doc = DocBuilder::page(|b| {
            b.text_element("h1", &[], "Title");
            b.open("div", &[("class", "x")]);
            b.leaf("img", &[("src", "p.png")]);
            b.close();
        });
        let html = doc.to_html(NodeId::ROOT);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<h1>Title</h1>"));
        assert!(html.contains("<img src=\"p.png\">"));
    }

    #[test]
    fn built_document_round_trips_through_parser() {
        let doc = DocBuilder::page(|b| {
            b.open("div", &[("id", "product")]);
            b.text_element("span", &[("class", "price")], "$1,299.00");
            b.close();
        });
        let html = doc.to_html(NodeId::ROOT);
        let reparsed = parse(&html);
        let hit = Selector::parse("#product > span.price")
            .unwrap()
            .query_first(&reparsed)
            .unwrap();
        assert_eq!(reparsed.text_content(hit), "$1,299.00");
    }

    #[test]
    fn page_with_head_populates_head() {
        let doc = DocBuilder::page_with_head(
            |h| {
                h.text_element("title", &[], "Shop");
                h.leaf("meta", &[("charset", "utf-8")]);
            },
            |b| {
                b.text_element("p", &[], "body");
            },
        );
        let html = doc.to_html(NodeId::ROOT);
        assert!(html.contains("<title>Shop</title>"));
        assert!(html.contains("<meta charset=\"utf-8\">"));
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_builder_panics() {
        let mut b = DocBuilder::new();
        b.open("div", &[]);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "close() without matching open()")]
    fn close_at_root_panics() {
        let mut b = DocBuilder::new();
        b.close();
    }

    #[test]
    fn current_tracks_position() {
        let mut b = DocBuilder::new();
        let before = b.current();
        b.open("div", &[]);
        assert_ne!(b.current(), before);
        b.close();
        assert_eq!(b.current(), before);
    }
}
