//! CSS-like selector engine.
//!
//! Supports the selector grammar the extraction layer needs:
//!
//! ```text
//! selector   := compound ( combinator compound )*
//! combinator := ">" (child) | whitespace (descendant)
//! compound   := [ tag ] simple*
//! simple     := "#" ident | "." ident | "[" ident ("=" value)? "]"
//!              | ":nth-of-type(" n ")"
//! ```
//!
//! `:nth-of-type` is 1-based like CSS. Matching walks right-to-left, the
//! standard engine strategy.

use crate::dom::{Document, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One simple condition within a compound selector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum Simple {
    Tag(String),
    Id(String),
    Class(String),
    AttrExists(String),
    AttrEq(String, String),
    NthOfType(usize),
}

/// A compound selector (all conditions must hold on one element).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Compound {
    simples: Vec<Simple>,
}

/// How a compound relates to the one on its right.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Combinator {
    Descendant,
    Child,
}

/// A parsed selector.
///
/// # Examples
///
/// ```
/// use pd_html::{parse, Selector};
///
/// let doc = parse(r#"<div id="main"><span class="price">$9</span></div>"#);
/// let sel = Selector::parse("#main > span.price").unwrap();
/// assert!(sel.query_first(&doc).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Selector {
    /// Compounds left-to-right; `combinators[i]` links `compounds[i]` to
    /// `compounds[i+1]`.
    compounds: Vec<Compound>,
    combinators: Vec<Combinator>,
    source: String,
}

/// Error produced for a malformed selector string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the source string.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "selector parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Selector {
    /// Parses a selector string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on empty input, dangling combinators, or
    /// malformed simple selectors.
    pub fn parse(input: &str) -> Result<Self, ParseError> {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
        .parse()
    }

    /// The source string this selector was parsed from.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }

    /// All elements matching the selector, in document order.
    #[must_use]
    pub fn query_all(&self, doc: &Document) -> Vec<NodeId> {
        doc.elements()
            .into_iter()
            .filter(|&el| self.matches(doc, el))
            .collect()
    }

    /// First matching element in document order.
    #[must_use]
    pub fn query_first(&self, doc: &Document) -> Option<NodeId> {
        doc.elements().into_iter().find(|&el| self.matches(doc, el))
    }

    /// Whether `el` matches this selector (right-to-left walk).
    #[must_use]
    pub fn matches(&self, doc: &Document, el: NodeId) -> bool {
        let last = self.compounds.len() - 1;
        if !compound_matches(doc, el, &self.compounds[last]) {
            return false;
        }
        self.match_ancestors(doc, el, last)
    }

    fn match_ancestors(&self, doc: &Document, el: NodeId, idx: usize) -> bool {
        if idx == 0 {
            return true;
        }
        let comb = self.combinators[idx - 1];
        let target = &self.compounds[idx - 1];
        match comb {
            Combinator::Child => {
                let Some(parent) = doc.node(el).parent else {
                    return false;
                };
                compound_matches(doc, parent, target) && self.match_ancestors(doc, parent, idx - 1)
            }
            Combinator::Descendant => {
                let mut cur = doc.node(el).parent;
                while let Some(p) = cur {
                    if compound_matches(doc, p, target) && self.match_ancestors(doc, p, idx - 1) {
                        return true;
                    }
                    cur = doc.node(p).parent;
                }
                false
            }
        }
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

fn compound_matches(doc: &Document, el: NodeId, compound: &Compound) -> bool {
    let Some(tag) = doc.tag(el) else {
        return false;
    };
    compound.simples.iter().all(|s| match s {
        Simple::Tag(t) => t == tag,
        Simple::Id(id) => doc.element_id(el) == Some(id.as_str()),
        Simple::Class(c) => doc.has_class(el, c),
        Simple::AttrExists(a) => doc.attr(el, a).is_some(),
        Simple::AttrEq(a, v) => doc.attr(el, a) == Some(v.as_str()),
        Simple::NthOfType(n) => doc.same_tag_sibling_index(el) + 1 == *n,
    })
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(mut self) -> Result<Selector, ParseError> {
        let mut compounds = Vec::new();
        let mut combinators = Vec::new();
        self.skip_ws();
        if self.pos >= self.bytes.len() {
            return Err(self.err("empty selector"));
        }
        loop {
            compounds.push(self.compound()?);
            let had_ws = self.skip_ws();
            if self.pos >= self.bytes.len() {
                break;
            }
            if self.bytes[self.pos] == b'>' {
                self.pos += 1;
                self.skip_ws();
                combinators.push(Combinator::Child);
            } else if had_ws {
                combinators.push(Combinator::Descendant);
            } else {
                return Err(self.err("unexpected character"));
            }
            if self.pos >= self.bytes.len() {
                return Err(self.err("dangling combinator"));
            }
        }
        Ok(Selector {
            compounds,
            combinators,
            source: self.input.to_owned(),
        })
    }

    fn compound(&mut self) -> Result<Compound, ParseError> {
        let mut simples = Vec::new();
        let mut universal = false;
        if self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'*')
        {
            if self.bytes[self.pos] == b'*' {
                self.pos += 1; // universal selector: matches any element
                universal = true;
            } else {
                let tag = self.ident();
                simples.push(Simple::Tag(tag.to_ascii_lowercase()));
            }
        }
        loop {
            match self.bytes.get(self.pos) {
                Some(b'#') => {
                    self.pos += 1;
                    let id = self.ident();
                    if id.is_empty() {
                        return Err(self.err("empty #id"));
                    }
                    simples.push(Simple::Id(id));
                }
                Some(b'.') => {
                    self.pos += 1;
                    let class = self.ident();
                    if class.is_empty() {
                        return Err(self.err("empty .class"));
                    }
                    simples.push(Simple::Class(class));
                }
                Some(b'[') => {
                    self.pos += 1;
                    let name = self.ident();
                    if name.is_empty() {
                        return Err(self.err("empty attribute name"));
                    }
                    if self.bytes.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        let value = self.attr_value();
                        if self.bytes.get(self.pos) != Some(&b']') {
                            return Err(self.err("unterminated attribute selector"));
                        }
                        self.pos += 1;
                        simples.push(Simple::AttrEq(name, value));
                    } else if self.bytes.get(self.pos) == Some(&b']') {
                        self.pos += 1;
                        simples.push(Simple::AttrExists(name));
                    } else {
                        return Err(self.err("unterminated attribute selector"));
                    }
                }
                Some(b':') => {
                    self.pos += 1;
                    let name = self.ident();
                    if name != "nth-of-type" {
                        return Err(self.err("unsupported pseudo-class"));
                    }
                    if self.bytes.get(self.pos) != Some(&b'(') {
                        return Err(self.err("expected '('"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                        self.pos += 1;
                    }
                    let n: usize = self.input[start..self.pos]
                        .parse()
                        .map_err(|_| self.err("bad nth-of-type index"))?;
                    if n == 0 {
                        return Err(self.err("nth-of-type is 1-based"));
                    }
                    if self.bytes.get(self.pos) != Some(&b')') {
                        return Err(self.err("expected ')'"));
                    }
                    self.pos += 1;
                    simples.push(Simple::NthOfType(n));
                }
                _ => break,
            }
        }
        if simples.is_empty() && !universal {
            return Err(self.err("expected a simple selector"));
        }
        Ok(Compound { simples })
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'-' || *b == b'_')
        {
            self.pos += 1;
        }
        self.input[start..self.pos].to_owned()
    }

    fn attr_value(&mut self) -> String {
        if self.bytes.get(self.pos) == Some(&b'"') {
            self.pos += 1;
            let start = self.pos;
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'"' {
                self.pos += 1;
            }
            let v = self.input[start..self.pos].to_owned();
            self.pos = (self.pos + 1).min(self.bytes.len());
            v
        } else {
            let start = self.pos;
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b']' {
                self.pos += 1;
            }
            self.input[start..self.pos].to_owned()
        }
    }

    fn skip_ws(&mut self) -> bool {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_whitespace)
        {
            self.pos += 1;
        }
        self.pos > start
    }

    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            at: self.pos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use proptest::prelude::*;

    const PAGE: &str = r#"
        <html><body>
          <div id="product" class="card main">
            <h1>Camera X100</h1>
            <span class="price" data-currency="USD">$1,299.00</span>
          </div>
          <div class="recommended">
            <div class="card"><span class="price">$24.99</span></div>
            <div class="card"><span class="price">$89.00</span></div>
          </div>
        </body></html>"#;

    #[test]
    fn tag_selector() {
        let doc = parse(PAGE);
        let sel = Selector::parse("span").unwrap();
        assert_eq!(sel.query_all(&doc).len(), 3);
    }

    #[test]
    fn id_selector() {
        let doc = parse(PAGE);
        let sel = Selector::parse("#product").unwrap();
        let hit = sel.query_first(&doc).unwrap();
        assert_eq!(doc.tag(hit), Some("div"));
    }

    #[test]
    fn class_selector_distinguishes_product_from_recommended() {
        let doc = parse(PAGE);
        // This is the paper's challenge: "price" alone matches 3 nodes...
        assert_eq!(Selector::parse(".price").unwrap().query_all(&doc).len(), 3);
        // ...but the highlight-derived selector is unambiguous.
        let sel = Selector::parse("#product > span.price").unwrap();
        let hits = sel.query_all(&doc);
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.text_content(hits[0]), "$1,299.00");
    }

    #[test]
    fn descendant_vs_child() {
        let doc = parse(PAGE);
        assert_eq!(
            Selector::parse("body span.price")
                .unwrap()
                .query_all(&doc)
                .len(),
            3
        );
        assert_eq!(
            Selector::parse("body > span.price")
                .unwrap()
                .query_all(&doc)
                .len(),
            0
        );
    }

    #[test]
    fn attribute_selectors() {
        let doc = parse(PAGE);
        assert_eq!(
            Selector::parse("[data-currency]")
                .unwrap()
                .query_all(&doc)
                .len(),
            1
        );
        assert_eq!(
            Selector::parse("span[data-currency=USD]")
                .unwrap()
                .query_all(&doc)
                .len(),
            1
        );
        assert_eq!(
            Selector::parse("span[data-currency=\"USD\"]")
                .unwrap()
                .query_all(&doc)
                .len(),
            1
        );
        assert_eq!(
            Selector::parse("span[data-currency=EUR]")
                .unwrap()
                .query_all(&doc)
                .len(),
            0
        );
    }

    #[test]
    fn nth_of_type() {
        let doc = parse(PAGE);
        let sel = Selector::parse(".recommended > div:nth-of-type(2) .price").unwrap();
        let hit = sel.query_first(&doc).unwrap();
        assert_eq!(doc.text_content(hit), "$89.00");
    }

    #[test]
    fn compound_multiple_classes() {
        let doc = parse(PAGE);
        assert_eq!(
            Selector::parse("div.card.main")
                .unwrap()
                .query_all(&doc)
                .len(),
            1
        );
    }

    #[test]
    fn universal_selector() {
        let doc = parse("<div><p>a</p></div>");
        let sel = Selector::parse("div > *").unwrap();
        assert_eq!(sel.query_all(&doc).len(), 1);
    }

    #[test]
    fn parse_errors() {
        assert!(Selector::parse("").is_err());
        assert!(Selector::parse("  ").is_err());
        assert!(Selector::parse("div >").is_err());
        assert!(Selector::parse("div ]").is_err());
        assert!(Selector::parse(".").is_err());
        assert!(Selector::parse("#").is_err());
        assert!(Selector::parse("[").is_err());
        assert!(Selector::parse("[a").is_err());
        assert!(Selector::parse("p:hover").is_err());
        assert!(Selector::parse("p:nth-of-type(0)").is_err());
        assert!(Selector::parse("p:nth-of-type(x)").is_err());
    }

    #[test]
    fn display_round_trips_source() {
        let s = Selector::parse("#a > .b c[d=e]").unwrap();
        assert_eq!(s.to_string(), "#a > .b c[d=e]");
        assert_eq!(s.source(), "#a > .b c[d=e]");
    }

    #[test]
    fn tag_match_is_case_insensitive_on_selector_side() {
        let doc = parse("<DIV>x</DIV>");
        assert!(Selector::parse("DIV").unwrap().query_first(&doc).is_some());
    }

    proptest! {
        #[test]
        fn prop_selector_parse_never_panics(s in "\\PC{0,64}") {
            let _ = Selector::parse(&s);
        }

        #[test]
        fn prop_query_never_panics(sel in "[a-z#.> \\[\\]=*:()0-9]{1,32}", html in "[a-z<>/ ]{0,128}") {
            if let Ok(s) = Selector::parse(&sel) {
                let doc = parse(&html);
                let _ = s.query_all(&doc);
            }
        }
    }
}
