//! Arena-backed document tree.
//!
//! Nodes live in a flat `Vec`; [`NodeId`] is an index. This keeps the tree
//! cache-friendly, trivially serializable, and free of `Rc` cycles — the
//! same layout smoltcp-style Rust favors for protocol state. Parent and
//! child links are explicit indices.

use crate::escape::{escape_text, unescape};
use crate::token::Attribute;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// The document root (always index 0).
    pub const ROOT: NodeId = NodeId(0);

    pub(crate) fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node arena overflow"))
    }

    /// Arena index of the node.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Payload of a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeData {
    /// The synthetic root that holds the doctype and `<html>`.
    Root,
    /// An element with lowercased tag name and source-order attributes.
    Element {
        /// Lowercased tag name.
        tag: String,
        /// Attributes in source order (values entity-decoded).
        attrs: Vec<Attribute>,
    },
    /// A text node (entity-decoded).
    Text(String),
    /// A comment.
    Comment(String),
    /// The doctype, e.g. `html`.
    Doctype(String),
}

/// One node: payload plus tree links.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Payload.
    pub data: NodeData,
    /// Parent link (`None` only for the root).
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
}

/// An HTML document: an arena of nodes rooted at [`NodeId::ROOT`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// Creates an empty document containing only the root.
    #[must_use]
    pub fn new() -> Self {
        Document {
            nodes: vec![Node {
                data: NodeData::Root,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics on an id from another document (out of bounds).
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes, including the root.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: the root exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Checks whether `id` belongs to this document.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len()
    }

    /// Appends a child under `parent` and returns its id.
    pub fn append(&mut self, parent: NodeId, data: NodeData) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node {
            data,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Appends an element child, decoding attribute entities.
    pub fn append_element(&mut self, parent: NodeId, tag: &str, attrs: Vec<Attribute>) -> NodeId {
        let attrs = attrs
            .into_iter()
            .map(|a| Attribute {
                name: a.name,
                value: unescape(&a.value).into_owned(),
            })
            .collect();
        self.append(
            parent,
            NodeData::Element {
                tag: tag.to_ascii_lowercase(),
                attrs,
            },
        )
    }

    /// Appends a text child, decoding entities.
    pub fn append_text(&mut self, parent: NodeId, raw: &str) -> NodeId {
        self.append(parent, NodeData::Text(unescape(raw).into_owned()))
    }

    /// Tag name of an element node, `None` otherwise.
    #[must_use]
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).data {
            NodeData::Element { tag, .. } => Some(tag),
            _ => None,
        }
    }

    /// Attribute value of an element node.
    #[must_use]
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.node(id).data {
            NodeData::Element { attrs, .. } => attrs
                .iter()
                .find(|a| a.name == name)
                .map(|a| a.value.as_str()),
            _ => None,
        }
    }

    /// `id` attribute shortcut.
    #[must_use]
    pub fn element_id(&self, id: NodeId) -> Option<&str> {
        self.attr(id, "id")
    }

    /// Whitespace-separated class list of an element.
    pub fn classes(&self, id: NodeId) -> impl Iterator<Item = &str> {
        self.attr(id, "class").unwrap_or("").split_whitespace()
    }

    /// True if the element carries class `class_name`.
    #[must_use]
    pub fn has_class(&self, id: NodeId, class_name: &str) -> bool {
        self.classes(id).any(|c| c == class_name)
    }

    /// Concatenated text content of the subtree rooted at `id`
    /// (document order, no separators) — what a user sees highlighted.
    #[must_use]
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.node(id).data {
            NodeData::Text(t) => out.push_str(t),
            NodeData::Comment(_) | NodeData::Doctype(_) => {}
            _ => {
                for &child in &self.node(id).children {
                    self.collect_text(child, out);
                }
            }
        }
    }

    /// Depth-first pre-order traversal of the whole document.
    #[must_use]
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            // Push children reversed so the traversal is document order.
            for &c in self.node(n).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All element ids in document order.
    #[must_use]
    pub fn elements(&self) -> Vec<NodeId> {
        self.descendants(NodeId::ROOT)
            .into_iter()
            .filter(|&n| matches!(self.node(n).data, NodeData::Element { .. }))
            .collect()
    }

    /// Index of `id` among its element siblings with the same tag
    /// (0-based), the quantity CSS `nth-of-type` uses and node paths
    /// record.
    #[must_use]
    pub fn same_tag_sibling_index(&self, id: NodeId) -> usize {
        let Some(parent) = self.node(id).parent else {
            return 0;
        };
        let tag = self.tag(id);
        self.node(parent)
            .children
            .iter()
            .filter(|&&c| self.tag(c) == tag && self.tag(c).is_some())
            .position(|&c| c == id)
            .unwrap_or(0)
    }

    /// Serializes the subtree at `id` back to HTML.
    #[must_use]
    pub fn to_html(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.write_html(id, &mut out);
        out
    }

    fn write_html(&self, id: NodeId, out: &mut String) {
        match &self.node(id).data {
            NodeData::Root => {
                for &c in &self.node(id).children {
                    self.write_html(c, out);
                }
            }
            NodeData::Doctype(d) => {
                out.push_str("<!DOCTYPE ");
                out.push_str(d);
                out.push('>');
            }
            NodeData::Comment(c) => {
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
            }
            NodeData::Text(t) => {
                out.push_str(&escape_text(t));
            }
            NodeData::Element { tag, attrs } => {
                out.push('<');
                out.push_str(tag);
                for a in attrs {
                    out.push(' ');
                    out.push_str(&a.name);
                    if !a.value.is_empty() {
                        out.push_str("=\"");
                        out.push_str(&escape_text(&a.value));
                        out.push('"');
                    }
                }
                out.push('>');
                if is_void(tag) {
                    return;
                }
                for &c in &self.node(id).children {
                    self.write_html(c, out);
                }
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            }
        }
    }
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

/// HTML void elements (may not have children or close tags).
#[must_use]
pub fn is_void(tag: &str) -> bool {
    matches!(
        tag,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(n: &str, v: &str) -> Attribute {
        Attribute {
            name: n.into(),
            value: v.into(),
        }
    }

    #[test]
    fn build_small_tree() {
        let mut doc = Document::new();
        let html = doc.append_element(NodeId::ROOT, "html", vec![]);
        let body = doc.append_element(html, "body", vec![]);
        let p = doc.append_element(body, "p", vec![attr("class", "price main")]);
        doc.append_text(p, "12.99");
        assert_eq!(doc.len(), 5);
        assert_eq!(doc.tag(p), Some("p"));
        assert!(doc.has_class(p, "price"));
        assert!(doc.has_class(p, "main"));
        assert!(!doc.has_class(p, "pric"));
        assert_eq!(doc.text_content(p), "12.99");
        assert_eq!(doc.text_content(NodeId::ROOT), "12.99");
    }

    #[test]
    fn attr_lookup() {
        let mut doc = Document::new();
        let div = doc.append_element(NodeId::ROOT, "div", vec![attr("id", "x"), attr("a", "1")]);
        assert_eq!(doc.element_id(div), Some("x"));
        assert_eq!(doc.attr(div, "a"), Some("1"));
        assert_eq!(doc.attr(div, "b"), None);
    }

    #[test]
    fn attribute_entities_decoded() {
        let mut doc = Document::new();
        let a = doc.append_element(NodeId::ROOT, "a", vec![attr("title", "Tom &amp; Jerry")]);
        assert_eq!(doc.attr(a, "title"), Some("Tom & Jerry"));
    }

    #[test]
    fn text_entities_decoded() {
        let mut doc = Document::new();
        let s = doc.append_element(NodeId::ROOT, "span", vec![]);
        doc.append_text(s, "&euro;9");
        assert_eq!(doc.text_content(s), "€9");
    }

    #[test]
    fn descendants_are_document_order() {
        let mut doc = Document::new();
        let a = doc.append_element(NodeId::ROOT, "a", vec![]);
        let b = doc.append_element(a, "b", vec![]);
        let c = doc.append_element(a, "c", vec![]);
        let d = doc.append_element(b, "d", vec![]);
        assert_eq!(
            doc.descendants(NodeId::ROOT),
            vec![NodeId::ROOT, a, b, d, c]
        );
    }

    #[test]
    fn same_tag_sibling_index_counts_only_same_tag() {
        let mut doc = Document::new();
        let ul = doc.append_element(NodeId::ROOT, "ul", vec![]);
        let li0 = doc.append_element(ul, "li", vec![]);
        let _sp = doc.append_element(ul, "span", vec![]);
        let li1 = doc.append_element(ul, "li", vec![]);
        assert_eq!(doc.same_tag_sibling_index(li0), 0);
        assert_eq!(doc.same_tag_sibling_index(li1), 1);
        assert_eq!(doc.same_tag_sibling_index(NodeId::ROOT), 0);
    }

    #[test]
    fn to_html_round_trip_escaping() {
        let mut doc = Document::new();
        let p = doc.append_element(NodeId::ROOT, "p", vec![attr("title", "a\"b")]);
        doc.append_text(p, "1 < 2 & 3");
        let html = doc.to_html(NodeId::ROOT);
        assert_eq!(html, "<p title=\"a&quot;b\">1 &lt; 2 &amp; 3</p>");
    }

    #[test]
    fn void_elements_render_without_close() {
        let mut doc = Document::new();
        doc.append_element(NodeId::ROOT, "br", vec![]);
        assert_eq!(doc.to_html(NodeId::ROOT), "<br>");
        assert!(is_void("img"));
        assert!(!is_void("div"));
    }

    #[test]
    fn text_content_skips_comments() {
        let mut doc = Document::new();
        let p = doc.append_element(NodeId::ROOT, "p", vec![]);
        doc.append(p, NodeData::Comment("hidden".into()));
        doc.append_text(p, "visible");
        assert_eq!(doc.text_content(p), "visible");
    }
}
