//! From-scratch HTML substrate.
//!
//! Challenge (i) of the paper (Sec. 2.2) is that every retailer renders
//! products with a different HTML template, and price extraction from an
//! unknown template is non-trivial — "a simple search for dollar or euro
//! sign would fail since typically product pages include additional
//! recommended or advertised products along with their prices". $heriff
//! solves this by letting the *user* highlight the price once; the system
//! then re-finds the same element in the copies downloaded at every
//! vantage point.
//!
//! Reproducing that mechanism needs a real HTML pipeline, which this crate
//! provides, dependency-free:
//!
//! * [`escape`] — entity escaping/unescaping,
//! * [`token`] — a streaming tokenizer,
//! * [`dom`] — an arena-backed document tree,
//! * [`parser`] — tree construction from tokens,
//! * [`selector`] — a CSS-like selector engine (tag / `#id` / `.class` /
//!   `[attr]`, descendant and child combinators),
//! * [`path`] — structural node paths, the representation of a user's
//!   highlight that travels to the other vantage points,
//! * [`build`] — an ergonomic document builder used by the synthetic
//!   retailer templates.
//!
//! The parser targets the well-formed-but-sloppy HTML that 2013 retail
//! templates produce: unquoted attributes, void elements, unclosed `<li>`
//! / `<p>`, comments, raw-text `<script>`/`<style>`. It never panics on
//! arbitrary input (a property-based test pins that down).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod dom;
pub mod escape;
pub mod parser;
pub mod path;
pub mod selector;
pub mod token;

pub use build::DocBuilder;
pub use dom::{Document, Node, NodeData, NodeId};
pub use parser::parse;
pub use path::NodePath;
pub use selector::Selector;
