//! HTML entity escaping and unescaping.
//!
//! Price strings travel *into* templates (escaped) and *out of* parsed
//! documents (unescaped). Currency symbols are exactly the characters
//! retail templates love to write as entities (`&euro;`, `&pound;`,
//! `&#8364;`), so the unescaper must handle named, decimal and hex forms —
//! otherwise the extractor would misparse "€1.299,00".

use std::borrow::Cow;

/// Escapes text for use inside an HTML text node.
///
/// Only `&`, `<`, `>` need escaping in text content; we escape quotes too
/// so the same function is safe for attribute values.
#[must_use]
pub fn escape_text(input: &str) -> Cow<'_, str> {
    if !input.contains(['&', '<', '>', '"', '\'']) {
        return Cow::Borrowed(input);
    }
    let mut out = String::with_capacity(input.len() + 8);
    for ch in input.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// The named entities that occur in retail price markup, plus the HTML
/// basics. Deliberately small: unknown entities pass through verbatim
/// (browser-like leniency).
fn named_entity(name: &str) -> Option<char> {
    Some(match name {
        "amp" => '&',
        "lt" => '<',
        "gt" => '>',
        "quot" => '"',
        "apos" => '\'',
        "nbsp" => '\u{a0}',
        "euro" => '€',
        "pound" => '£',
        "yen" => '¥',
        "cent" => '¢',
        "copy" => '©',
        "reg" => '®',
        "trade" => '™',
        "mdash" => '—',
        "ndash" => '–',
        "hellip" => '…',
        "laquo" => '«',
        "raquo" => '»',
        "times" => '×',
        _ => return None,
    })
}

/// Unescapes HTML entities in `input`.
///
/// Handles named (`&euro;`), decimal (`&#8364;`) and hex (`&#x20AC;`)
/// references. Malformed references are passed through unchanged, as
/// browsers do.
#[must_use]
pub fn unescape(input: &str) -> Cow<'_, str> {
    if !input.contains('&') {
        return Cow::Borrowed(input);
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Advance over one UTF-8 scalar.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // Find the terminating ';' within a sane distance.
        let end = input[i + 1..]
            .char_indices()
            .take(32)
            .find(|(_, c)| *c == ';')
            .map(|(off, _)| i + 1 + off);
        let Some(end) = end else {
            out.push('&');
            i += 1;
            continue;
        };
        let body = &input[i + 1..end];
        let decoded = decode_entity(body);
        match decoded {
            Some(c) => {
                out.push(c);
                i = end + 1;
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    Cow::Owned(out)
}

fn decode_entity(body: &str) -> Option<char> {
    if let Some(num) = body.strip_prefix('#') {
        let code = if let Some(hex) = num.strip_prefix(['x', 'X']) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            num.parse::<u32>().ok()?
        };
        char::from_u32(code)
    } else {
        named_entity(body)
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn escape_basic() {
        assert_eq!(escape_text("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&#39;");
        assert_eq!(escape_text("plain"), "plain");
        assert!(matches!(escape_text("plain"), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_named() {
        assert_eq!(unescape("&euro;1.299,00"), "€1.299,00");
        assert_eq!(unescape("&pound;12.99"), "£12.99");
        assert_eq!(unescape("a&amp;b"), "a&b");
        assert_eq!(unescape("x&nbsp;y"), "x\u{a0}y");
    }

    #[test]
    fn unescape_numeric() {
        assert_eq!(unescape("&#8364;5"), "€5");
        assert_eq!(unescape("&#x20AC;5"), "€5");
        assert_eq!(unescape("&#X20ac;5"), "€5");
        assert_eq!(unescape("&#65;"), "A");
    }

    #[test]
    fn unescape_malformed_passes_through() {
        assert_eq!(unescape("AT&T"), "AT&T");
        assert_eq!(unescape("a & b"), "a & b");
        assert_eq!(unescape("&unknown;"), "&unknown;");
        assert_eq!(unescape("&#xZZ;"), "&#xZZ;");
        assert_eq!(unescape("&#1114112;"), "&#1114112;"); // beyond char range
        assert_eq!(unescape("trailing&"), "trailing&");
    }

    #[test]
    fn unescape_no_entities_borrows() {
        assert!(matches!(unescape("no entities"), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_multibyte_passthrough() {
        assert_eq!(unescape("ほげ€ & ふが"), "ほげ€ & ふが");
    }

    proptest! {
        #[test]
        fn prop_escape_then_unescape_round_trips(s in "\\PC{0,64}") {
            let escaped = escape_text(&s);
            let unescaped = unescape(&escaped);
            prop_assert_eq!(unescaped.as_ref(), s.as_str());
        }

        #[test]
        fn prop_unescape_never_panics(s in "\\PC{0,128}") {
            let _ = unescape(&s);
        }

        #[test]
        fn prop_escaped_has_no_raw_specials(s in "\\PC{0,64}") {
            let escaped = escape_text(&s);
            prop_assert!(!escaped.contains('<'));
            prop_assert!(!escaped.contains('>'));
            prop_assert!(!escaped.contains('"'));
        }
    }
}
