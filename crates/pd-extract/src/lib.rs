//! Price extraction from product pages.
//!
//! This crate is the detector side of the paper's challenge (i). It
//! offers two extractors:
//!
//! * [`extractor::HighlightExtractor`] — $heriff's mechanism: resolve the
//!   user's highlight ([`pd_html::NodePath`]) on each vantage point's
//!   copy of the page and parse the element's text with the vantage's
//!   expected locale (falling back to symbol-driven detection).
//! * [`extractor::extract_naive`] — the strawman the paper dismisses:
//!   take the first currency-looking string on the page. The ablation
//!   bench quantifies exactly how often this grabs a promo banner or a
//!   recommended product instead of the product price.
//!
//! [`parse_price`] holds the symbol-driven generic parser: currency
//! symbol tables, separator inference ("1.234,56" vs "1,234.56"), and the
//! documented ambiguity rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extractor;
pub mod parse_price;

pub use extractor::{extract_naive, ExtractError, Extracted, HighlightExtractor};
pub use parse_price::parse_price_text;
