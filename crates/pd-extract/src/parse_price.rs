//! Symbol-driven generic price parsing.
//!
//! Used when the vantage's exact locale parse fails (or by the naive
//! baseline, which has no locale to go on). The parser finds a currency
//! symbol, takes the adjacent digit run, and infers the separator
//! convention:
//!
//! 1. both `.` and `,` present → the **later** one is the decimal
//!    separator, the other groups thousands;
//! 2. a single separator followed by exactly **3** digits, with at least
//!    one digit before it → thousands (`1,234` = 1234);
//! 3. a single separator followed by 1–2 digits → decimal (`12,5` = 12.5,
//!    `12.34` = 12.34);
//! 4. spaces and non-breaking spaces inside the number group thousands.
//!
//! Rule 2/3 is genuinely ambiguous on real pages (`1,234` could be a
//! decimal in a de-DE context); the paper handles this by *knowing* each
//! vantage's locale, which is why the generic parser is only a fallback.

use pd_currency::{Currency, Price};
use pd_util::Money;

/// Symbols ordered longest-first so `R$`/`C$`/`A$` win over `$`.
const SYMBOLS: [(&str, Currency); 9] = [
    ("R$", Currency::Brl),
    ("C$", Currency::Cad),
    ("A$", Currency::Aud),
    ("zł", Currency::Pln),
    ("kr", Currency::Sek),
    ("€", Currency::Eur),
    ("£", Currency::Gbp),
    ("¥", Currency::Jpy),
    ("$", Currency::Usd),
];

/// Parses a single price out of free text, returning the first parsable
/// `symbol + number` (or `number + symbol`) occurrence.
///
/// Returns `None` when no currency symbol with an adjacent number exists.
#[must_use]
pub fn parse_price_text(text: &str) -> Option<Price> {
    // Find the earliest symbol occurrence (longest symbol wins on ties).
    let mut best: Option<(usize, &str, Currency)> = None;
    for (sym, cur) in SYMBOLS {
        if let Some(pos) = text.find(sym) {
            let better = match best {
                None => true,
                Some((bpos, bsym, _)) => pos < bpos || (pos == bpos && sym.len() > bsym.len()),
            };
            if better {
                best = Some((pos, sym, cur));
            }
        }
    }
    let (pos, sym, currency) = best?;

    // Prefer the number after the symbol (prefix convention), else the
    // number before it (suffix convention).
    let after = &text[pos + sym.len()..];
    if let Some(amount) = leading_number(after, currency) {
        return Some(Price::new(amount, currency));
    }
    let before = &text[..pos];
    if let Some(amount) = trailing_number(before, currency) {
        return Some(Price::new(amount, currency));
    }
    None
}

/// Parses the number at the start of `s` (skipping spaces), if any.
fn leading_number(s: &str, currency: Currency) -> Option<Money> {
    let s = s.trim_start_matches([' ', '\u{a0}']);
    let end = number_span_from_start(s)?;
    parse_number(&s[..end], currency)
}

/// Parses the number at the end of `s` (skipping spaces), if any.
fn trailing_number(s: &str, currency: Currency) -> Option<Money> {
    let s = s.trim_end_matches([' ', '\u{a0}']);
    let start = number_span_from_end(s)?;
    parse_number(&s[start..], currency)
}

/// Length of the numeric prefix (digits, separators, optional sign).
fn number_span_from_start(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    if bytes.first() == Some(&b'-') {
        i = 1;
    }
    let digits_start = i;
    while i < s.len() {
        let c = s[i..].chars().next().expect("in-bounds char");
        if c.is_ascii_digit() || c == '.' || c == ',' || c == '\u{a0}' || c == ' ' {
            // Spaces are only number-internal if a digit follows.
            if (c == ' ' || c == '\u{a0}')
                && !s[i + c.len_utf8()..]
                    .chars()
                    .next()
                    .is_some_and(|n| n.is_ascii_digit())
            {
                break;
            }
            i += c.len_utf8();
        } else {
            break;
        }
    }
    // Trim trailing separators ("12.99." → "12.99").
    let trimmed = s[..i].trim_end_matches(['.', ',', ' ', '\u{a0}']);
    (trimmed.len() > digits_start).then_some(trimmed.len())
}

/// Start index of the numeric suffix.
fn number_span_from_end(s: &str) -> Option<usize> {
    let mut start = s.len();
    for (idx, c) in s.char_indices().rev() {
        if c.is_ascii_digit() || c == '.' || c == ',' || c == '\u{a0}' || c == ' ' {
            start = idx;
        } else {
            break;
        }
    }
    let trimmed_start = start
        + s[start..].len().saturating_sub(
            s[start..]
                .trim_start_matches(['.', ',', ' ', '\u{a0}'])
                .len(),
        );
    (trimmed_start < s.len() && s[trimmed_start..].bytes().any(|b| b.is_ascii_digit()))
        .then_some(trimmed_start)
}

/// Applies the separator-inference rules to a raw digit group.
fn parse_number(raw: &str, currency: Currency) -> Option<Money> {
    let (raw, negative) = match raw.strip_prefix('-') {
        Some(r) => (r, true),
        None => (raw, false),
    };
    // Normalize space-grouping away first.
    let cleaned: String = raw
        .chars()
        .filter(|c| *c != ' ' && *c != '\u{a0}')
        .collect();
    if cleaned.is_empty() || !cleaned.bytes().any(|b| b.is_ascii_digit()) {
        return None;
    }
    let last_dot = cleaned.rfind('.');
    let last_comma = cleaned.rfind(',');
    let (int_part, frac_part): (String, String) = match (last_dot, last_comma) {
        (Some(d), Some(c)) => {
            let (dec_idx, group) = if d > c { (d, ',') } else { (c, '.') };
            let int: String = cleaned[..dec_idx]
                .chars()
                .filter(|ch| *ch != group)
                .collect();
            (int, cleaned[dec_idx + 1..].to_owned())
        }
        (Some(idx), None) | (None, Some(idx)) => {
            let tail_len = cleaned.len() - idx - 1;
            let head_len = idx;
            if tail_len == 3 && head_len >= 1 {
                // Rule 2: thousands grouping.
                let sep = cleaned.as_bytes()[idx] as char;
                (
                    cleaned.chars().filter(|c| *c != sep).collect(),
                    String::new(),
                )
            } else {
                // Rule 3: decimal separator.
                (cleaned[..idx].to_owned(), cleaned[idx + 1..].to_owned())
            }
        }
        (None, None) => (cleaned.clone(), String::new()),
    };
    if !int_part.bytes().all(|b| b.is_ascii_digit())
        || !frac_part.bytes().all(|b| b.is_ascii_digit())
        || int_part.is_empty()
        || frac_part.len() > 2
    {
        return None;
    }
    let major: i64 = int_part.parse().ok()?;
    let minor: i64 = if frac_part.is_empty() {
        0
    } else if frac_part.len() == 1 {
        frac_part.parse::<i64>().ok()? * 10
    } else {
        frac_part.parse().ok()?
    };
    if currency.decimals() == 0 && minor != 0 {
        // A "¥12.34" is not a plausible yen price.
        return None;
    }
    let mut value = major.checked_mul(100)?.checked_add(minor)?;
    if negative {
        value = -value;
    }
    Some(Money::from_minor(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_net::geo::Country;
    use proptest::prelude::*;

    fn assert_parses(text: &str, minor: i64, currency: Currency) {
        let p = parse_price_text(text).unwrap_or_else(|| panic!("cannot parse {text:?}"));
        assert_eq!(p.amount.to_minor(), minor, "{text:?}");
        assert_eq!(p.currency, currency, "{text:?}");
    }

    #[test]
    fn us_prefix_forms() {
        assert_parses("$1,234.56", 123_456, Currency::Usd);
        assert_parses("$12.99", 1_299, Currency::Usd);
        assert_parses("$0.99", 99, Currency::Usd);
        assert_parses("Now only $5!", 500, Currency::Usd);
    }

    #[test]
    fn continental_suffix_forms() {
        assert_parses("1.234,56\u{a0}€", 123_456, Currency::Eur);
        assert_parses("12,99 €", 1_299, Currency::Eur);
        assert_parses("1\u{a0}234,56\u{a0}zł", 123_456, Currency::Pln);
        assert_parses("999,00 kr", 99_900, Currency::Sek);
    }

    #[test]
    fn multi_char_symbols_beat_dollar() {
        assert_parses("R$1.234,56", 123_456, Currency::Brl);
        assert_parses("C$19.99", 1_999, Currency::Cad);
        assert_parses("A$250.00", 25_000, Currency::Aud);
    }

    #[test]
    fn yen_integer_amounts() {
        assert_parses("¥1,235", 123_500, Currency::Jpy);
        assert_parses("¥980", 98_000, Currency::Jpy);
        assert!(
            parse_price_text("¥12.34").is_none(),
            "fractional yen rejected"
        );
    }

    #[test]
    fn ambiguity_rules() {
        // Rule 2: single separator + 3 trailing digits = thousands.
        assert_parses("$1,234", 123_400, Currency::Usd);
        assert_parses("1.234 €", 123_400, Currency::Eur);
        // Rule 3: 1-2 trailing digits = decimal.
        assert_parses("$12,5", 1_250, Currency::Usd);
        assert_parses("12,34 €", 1_234, Currency::Eur);
    }

    #[test]
    fn both_separators_later_wins() {
        assert_parses("$1.234,56", 123_456, Currency::Usd);
        assert_parses("$1,234.56", 123_456, Currency::Usd);
        assert_parses("€1,234,567.89", 123_456_789, Currency::Eur);
    }

    #[test]
    fn negative_prices() {
        assert_parses("$-10.99", -1_099, Currency::Usd);
    }

    #[test]
    fn rejects_symbol_without_number() {
        assert!(parse_price_text("$ see price in cart").is_none());
        assert!(parse_price_text("price on request").is_none());
        assert!(parse_price_text("").is_none());
        assert!(parse_price_text("costs money").is_none());
    }

    #[test]
    fn rejects_long_fractions() {
        assert!(parse_price_text("$1.2345").is_none());
    }

    #[test]
    fn first_symbol_occurrence_wins() {
        // The naive trap: promo before product price.
        assert_parses("Save $10 today! Product: $99.99", 1_000, Currency::Usd);
    }

    #[test]
    fn every_locale_formatting_parses_generically() {
        // The generic parser must at minimum handle every string our own
        // locales emit (except ambiguous thousands cases, constructed to
        // avoid here by using amounts with decimals).
        for &c in &Country::ALL {
            let loc = pd_currency::Locale::of_country(c);
            let amount = if loc.currency.decimals() == 0 {
                Money::from_major_minor(987, 0)
            } else {
                Money::from_minor(98_765)
            };
            let text = loc.format(amount);
            let p = parse_price_text(&text).unwrap_or_else(|| panic!("{c:?}: {text:?}"));
            assert_eq!(p.amount, amount, "{c:?} via {text:?}");
            assert_eq!(p.currency, loc.currency);
        }
    }

    proptest! {
        #[test]
        fn prop_never_panics(s in "\\PC{0,64}") {
            let _ = parse_price_text(&s);
        }

        #[test]
        fn prop_symbol_soup_never_panics(s in "[$€£¥R\\-.,0-9 a-z]{0,64}") {
            let _ = parse_price_text(&s);
        }

        #[test]
        fn prop_round_trips_unambiguous_usd(minor in 0i64..100_000_000) {
            // Amounts with a nonzero cents part are never ambiguous.
            let minor = if minor % 100 == 0 { minor + 1 } else { minor };
            let text = format!("${}", Money::from_minor(minor));
            let p = parse_price_text(&text).unwrap();
            prop_assert_eq!(p.amount.to_minor(), minor);
        }
    }
}
