//! The highlight extractor and the naive baseline.

use crate::parse_price::parse_price_text;
use pd_currency::{Locale, Price};
use pd_html::path::ResolveStrategy;
use pd_html::{Document, NodePath, Selector};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an extraction failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtractError {
    /// The highlight's node path matched nothing in this copy.
    NodeNotFound,
    /// The node resolved but holds no text.
    EmptyText,
    /// The node's text is not a parsable price.
    UnparsablePrice(String),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::NodeNotFound => write!(f, "highlighted node not found in page copy"),
            ExtractError::EmptyText => write!(f, "highlighted node holds no text"),
            ExtractError::UnparsablePrice(t) => write!(f, "unparsable price text: {t:?}"),
        }
    }
}

impl std::error::Error for ExtractError {}

/// A successful extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Extracted {
    /// The parsed price.
    pub price: Price,
    /// Which node-path strategy resolved the highlight.
    pub strategy: ResolveStrategy,
    /// The raw text of the node (kept for the measurement DB, as $heriff
    /// stored full pages for offline analysis).
    pub raw_text: String,
}

/// $heriff's extractor: a captured highlight replayed against page copies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HighlightExtractor {
    path: NodePath,
}

impl HighlightExtractor {
    /// Wraps a captured highlight.
    #[must_use]
    pub fn new(path: NodePath) -> Self {
        HighlightExtractor { path }
    }

    /// Simulates the user's highlight action: captures the node the
    /// ground-truth selector finds on *their own* rendered page.
    ///
    /// Returns `None` if the selector matches nothing (malformed page).
    #[must_use]
    pub fn from_highlight(doc: &Document, highlighted: &Selector) -> Option<Self> {
        let node = highlighted.query_first(doc)?;
        Some(HighlightExtractor {
            path: NodePath::capture(doc, node),
        })
    }

    /// The underlying node path.
    #[must_use]
    pub fn path(&self) -> &NodePath {
        &self.path
    }

    /// Extracts the price from one page copy.
    ///
    /// `locale_hint` is the locale the vantage point *expects* (derived
    /// from its country); exact locale parsing is tried first, then the
    /// generic symbol-driven parser — mirroring how $heriff handled
    /// pages that rendered an unexpected currency.
    ///
    /// # Errors
    ///
    /// See [`ExtractError`].
    pub fn extract(
        &self,
        doc: &Document,
        locale_hint: Option<Locale>,
    ) -> Result<Extracted, ExtractError> {
        let node = self.path.resolve(doc).ok_or(ExtractError::NodeNotFound)?;
        let strategy = self
            .path
            .resolve_strategy(doc)
            .expect("resolve succeeded, strategy exists");
        let text = doc.text_content(node);
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Err(ExtractError::EmptyText);
        }
        let price = locale_hint
            .and_then(|loc| loc.parse(trimmed).ok())
            .or_else(|| parse_price_text(trimmed))
            .ok_or_else(|| ExtractError::UnparsablePrice(trimmed.to_owned()))?;
        Ok(Extracted {
            price,
            strategy,
            raw_text: trimmed.to_owned(),
        })
    }
}

/// The naive baseline: first currency-looking string in document order.
///
/// This is the approach the paper rules out — product pages "include
/// additional recommended or advertised products along with their
/// prices", and nothing guarantees the first match is the product's. The
/// extraction-robustness ablation measures its accuracy against the
/// highlight extractor on the full template corpus.
#[must_use]
pub fn extract_naive(doc: &Document) -> Option<Price> {
    for node in doc.descendants(pd_html::NodeId::ROOT) {
        if let pd_html::NodeData::Text(t) = &doc.node(node).data {
            // Skip script/style text: currency strings inside tracking
            // code are not prices.
            let parent_tag = doc.node(node).parent.and_then(|p| doc.tag(p)).unwrap_or("");
            if parent_tag == "script" || parent_tag == "style" {
                continue;
            }
            if let Some(price) = parse_price_text(t) {
                return Some(price);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_currency::Currency;
    use pd_html::parse;
    use pd_net::geo::Country;
    use pd_util::Money;

    const US_PAGE: &str = r##"
        <html><body>
          <div class="promo-banner"><em>Save $10 today!</em></div>
          <div id="product-detail">
            <h1>Camera</h1>
            <span class="price">$1,299.00</span>
          </div>
          <div class="recommendations">
            <div class="reco-card"><a href="#">Lens</a><span class="price">$24.99</span></div>
          </div>
        </body></html>"##;

    const FI_PAGE: &str = r##"
        <html><body>
          <div class="promo-banner"><em>Save $10 today!</em></div>
          <div id="product-detail">
            <h1>Camera</h1>
            <span class="price">1.234,00&nbsp;&euro;</span>
          </div>
          <div class="recommendations">
            <div class="reco-card"><a href="#">Lens</a><span class="price">23,99&nbsp;&euro;</span></div>
          </div>
        </body></html>"##;

    fn highlighter() -> HighlightExtractor {
        let doc = parse(US_PAGE);
        let sel = Selector::parse("#product-detail > span.price").unwrap();
        HighlightExtractor::from_highlight(&doc, &sel).unwrap()
    }

    #[test]
    fn extracts_from_own_page() {
        let doc = parse(US_PAGE);
        let ex = highlighter()
            .extract(&doc, Some(Locale::of_country(Country::UnitedStates)))
            .unwrap();
        assert_eq!(ex.price.amount, Money::from_minor(129_900));
        assert_eq!(ex.price.currency, Currency::Usd);
        assert_eq!(ex.raw_text, "$1,299.00");
    }

    #[test]
    fn extracts_foreign_currency_copy() {
        // The same highlight replayed on the Finnish copy parses EUR.
        let doc = parse(FI_PAGE);
        let ex = highlighter()
            .extract(&doc, Some(Locale::of_country(Country::Finland)))
            .unwrap();
        assert_eq!(ex.price.amount, Money::from_minor(123_400));
        assert_eq!(ex.price.currency, Currency::Eur);
    }

    #[test]
    fn falls_back_to_generic_parse_on_locale_mismatch() {
        // Vantage expected EUR but the retailer served USD (no
        // localization): generic parsing still recovers the price.
        let doc = parse(US_PAGE);
        let ex = highlighter()
            .extract(&doc, Some(Locale::of_country(Country::Finland)))
            .unwrap();
        assert_eq!(ex.price.currency, Currency::Usd);
        assert_eq!(ex.price.amount, Money::from_minor(129_900));
    }

    #[test]
    fn node_not_found_on_unrelated_page() {
        let doc = parse("<html><body><p>maintenance</p></body></html>");
        let err = highlighter().extract(&doc, None).unwrap_err();
        assert_eq!(err, ExtractError::NodeNotFound);
    }

    #[test]
    fn empty_text_reported() {
        let page = US_PAGE.replace("$1,299.00", "");
        let doc = parse(&page);
        let err = highlighter().extract(&doc, None).unwrap_err();
        // Empty node may also fail resolution by class/anchor; both are
        // acceptable failures, but with the anchor present it resolves.
        assert!(matches!(
            err,
            ExtractError::EmptyText | ExtractError::NodeNotFound
        ));
    }

    #[test]
    fn unparsable_price_reported() {
        let page = US_PAGE.replace("$1,299.00", "call us!");
        let doc = parse(&page);
        let err = highlighter().extract(&doc, None).unwrap_err();
        assert_eq!(err, ExtractError::UnparsablePrice("call us!".to_owned()));
    }

    #[test]
    fn naive_extractor_falls_for_the_promo() {
        // The paper's point, demonstrated: naive extraction grabs the
        // banner's $10, not the product's $1,299.
        let doc = parse(US_PAGE);
        let naive = extract_naive(&doc).unwrap();
        assert_eq!(naive.amount, Money::from_minor(1_000));
        let correct = highlighter().extract(&doc, None).unwrap();
        assert_ne!(naive.amount, correct.price.amount);
    }

    #[test]
    fn naive_extractor_skips_scripts() {
        let page = r#"<html><head><script>var px = "$9.99";</script></head>
            <body><span>$42.00</span></body></html>"#;
        let doc = parse(page);
        assert_eq!(
            extract_naive(&doc).unwrap().amount,
            Money::from_minor(4_200)
        );
    }

    #[test]
    fn naive_extractor_none_on_priceless_page() {
        let doc = parse("<html><body><p>welcome</p></body></html>");
        assert!(extract_naive(&doc).is_none());
    }

    #[test]
    fn from_highlight_none_when_selector_misses() {
        let doc = parse("<html><body></body></html>");
        let sel = Selector::parse(".price").unwrap();
        assert!(HighlightExtractor::from_highlight(&doc, &sel).is_none());
    }

    #[test]
    fn end_to_end_with_real_template() {
        // Render every pd-web template family, highlight, re-extract.
        use pd_pricing::retailer::ThirdParty;
        use pd_web::template::{price_selector, render, RenderInput};
        let input = RenderInput {
            domain: "shop.example",
            product_name: "Widget",
            price_text: "1.299,00\u{a0}€".to_owned(),
            recommended: vec![("Other".to_owned(), "9,99\u{a0}€".to_owned())],
            third_parties: &[ThirdParty::GoogleAnalytics],
            promo_text: "Save $10!".to_owned(),
        };
        for style in 0..5u8 {
            let doc = render(style, &input);
            let ex = HighlightExtractor::from_highlight(&doc, &price_selector(style))
                .unwrap()
                .extract(&doc, Some(Locale::of_country(Country::Germany)))
                .unwrap();
            assert_eq!(
                ex.price.amount,
                Money::from_minor(129_900),
                "family {style}"
            );
            assert_eq!(ex.price.currency, Currency::Eur);
        }
    }
}
