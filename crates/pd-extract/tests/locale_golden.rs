//! Locale-format golden tests for the symbol-driven generic price parser.
//!
//! `parse_price_text` is the fallback when the vantage's exact locale
//! parse fails, so it has to handle every formatting convention the
//! simulated retailers emit — and refuse garbage rather than hallucinate
//! a price. Each case here is a concrete string with its expected minor
//! units and currency.

use pd_currency::Currency;
use pd_extract::parse_price_text;

fn assert_golden(text: &str, minor: i64, currency: Currency) {
    let price = parse_price_text(text).unwrap_or_else(|| panic!("expected {text:?} to parse"));
    assert_eq!(price.amount.to_minor(), minor, "amount of {text:?}");
    assert_eq!(price.currency, currency, "currency of {text:?}");
}

#[test]
fn us_dollar_with_thousands_grouping() {
    assert_golden("$1,299.00", 129_900, Currency::Usd);
    assert_golden("$ 1,299.00", 129_900, Currency::Usd);
    assert_golden("Price: $1,299.00 today only", 129_900, Currency::Usd);
}

#[test]
fn continental_euro_suffix_form() {
    assert_golden("1.299,00 €", 129_900, Currency::Eur);
    assert_golden("1.299,00\u{a0}€", 129_900, Currency::Eur);
    // Prefix euro also appears in sloppy templates.
    assert_golden("€1.299,00", 129_900, Currency::Eur);
}

#[test]
fn british_pound_simple_decimal() {
    assert_golden("£9.99", 999, Currency::Gbp);
    assert_golden("only £9.99!", 999, Currency::Gbp);
}

#[test]
fn zero_decimal_yen() {
    assert_golden("¥1,299", 129_900, Currency::Jpy);
}

#[test]
fn multi_character_symbols_win_over_their_prefix() {
    // `R$` must resolve to BRL, not a stray `$` to USD.
    assert_golden("R$1.234,56", 123_456, Currency::Brl);
    assert_golden("C$42.00", 4_200, Currency::Cad);
}

#[test]
fn space_grouped_nordic_form() {
    // Polish/Swedish grouping uses (non-breaking) spaces.
    assert_golden("1\u{a0}234,56\u{a0}zł", 123_456, Currency::Pln);
}

#[test]
fn thousands_separator_ambiguity_resolves_by_digit_count() {
    // Exactly three digits after a single separator → thousands.
    assert_golden("$1,234", 123_400, Currency::Usd);
    assert_golden("$1.234", 123_400, Currency::Usd);
    // One or two digits after the separator → decimal.
    assert_golden("$12,5", 1_250, Currency::Usd);
    assert_golden("$12.34", 1_234, Currency::Usd);
}

#[test]
fn both_separators_present_the_later_one_is_decimal() {
    assert_golden("$1,234.56", 123_456, Currency::Usd);
    assert_golden("€1.234,56", 123_456, Currency::Eur);
    assert_golden("$1.234,56", 123_456, Currency::Usd);
}

#[test]
fn garbage_input_returns_none() {
    for text in [
        "",
        "no price here",
        "$",
        "€ and some words",
        "$,",
        "$ .",
        "USD 1299",          // code without symbol is out of scope
        "call us: 555-1299", // digits but no currency symbol
        "100% cotton",
    ] {
        assert!(
            parse_price_text(text).is_none(),
            "{text:?} must not parse, got {:?}",
            parse_price_text(text)
        );
    }
}

#[test]
fn symbol_with_detached_number_is_rejected() {
    // The digits are not adjacent to the symbol, so there is no price.
    assert!(parse_price_text("$ see price list, item 42 on page 7").is_none());
}

#[test]
fn first_price_wins_in_promo_noise() {
    // A recommended-product strip after the main price must not win.
    assert_golden(
        "€24,99 — also consider our bag for €89,00",
        2_499,
        Currency::Eur,
    );
}
