//! Noise removal (Sec. 3.2).
//!
//! "Before the analyses, we removed the noise from the crowdsourced
//! dataset. Causes behind the noise include diverse number and date
//! formats across countries, product customization not encoded on the
//! URI, etc."
//!
//! The cleaning algorithm is *operational* — it never looks at the
//! simulator's ground-truth noise labels:
//!
//! 1. **Refetch consistency** — the URI is refetched as if from the
//!    user's own location at check time; if the user's highlighted price
//!    differs from that refetch beyond the exchange band, the measurement
//!    is customization-style noise and is dropped.
//! 2. **Extraction health** — measurements where a majority of vantage
//!    points failed to extract are dropped (broken pages, wrong
//!    highlights on volatile elements).
//!
//! Because the labels are retained, tests measure the cleaner's precision
//! and recall against ground truth — an evaluation the original paper
//! could not run.

use crate::measurement::{Measurement, MeasurementStore, NoiseTruth};
use pd_currency::{band_filter, FxSeries};
use serde::{Deserialize, Serialize};

/// Outcome summary of a cleaning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleaningReport {
    /// Measurements kept.
    pub kept: usize,
    /// Dropped by the refetch-consistency rule.
    pub dropped_inconsistent: usize,
    /// Dropped by the extraction-health rule.
    pub dropped_unhealthy: usize,
    /// Dropped because the variation is explained by inlined taxes
    /// (the paper's manual tax check, applied per domain by the
    /// pipeline after the per-measurement rules).
    pub dropped_tax_explained: usize,
    /// Of the dropped, how many were truly noisy (ground truth) — for
    /// precision accounting in tests.
    pub dropped_truly_noisy: usize,
    /// Of the kept, how many were truly noisy — the cleaner's misses.
    pub kept_truly_noisy: usize,
}

/// Cleans a crowdsourced store. `user_refetch` must return the price the
/// user's own location would see for a measurement (the crowd driver
/// wires this to a real refetch through the web world).
pub fn clean<F>(
    store: &MeasurementStore,
    fx: &FxSeries,
    mut user_refetch: F,
) -> (MeasurementStore, CleaningReport)
where
    F: FnMut(&Measurement) -> Option<pd_currency::Price>,
{
    let mut kept_store = MeasurementStore::new();
    let mut report = CleaningReport {
        kept: 0,
        dropped_inconsistent: 0,
        dropped_unhealthy: 0,
        dropped_tax_explained: 0,
        dropped_truly_noisy: 0,
        kept_truly_noisy: 0,
    };

    for m in store.records() {
        // Rule 2: extraction health.
        let ok = m.prices().len();
        if ok * 2 < m.observations.len() {
            report.dropped_unhealthy += 1;
            if m.noise_truth != NoiseTruth::Clean {
                report.dropped_truly_noisy += 1;
            }
            continue;
        }
        // Rule 1: refetch consistency (only checkable when the user's
        // price was captured).
        if let (Some(user_price), Some(refetched)) = (m.user_price, user_refetch(m)) {
            let day = m.day().min(fx.days().saturating_sub(1));
            if let Some(verdict) = band_filter(fx, &[user_price, refetched], day) {
                if verdict.genuine {
                    // The user's own display cannot be reproduced from
                    // the URI: customization-style noise.
                    report.dropped_inconsistent += 1;
                    if m.noise_truth != NoiseTruth::Clean {
                        report.dropped_truly_noisy += 1;
                    }
                    continue;
                }
            }
        }
        if m.noise_truth != NoiseTruth::Clean {
            report.kept_truly_noisy += 1;
        }
        report.kept += 1;
        kept_store.push(m.clone());
    }
    (kept_store, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::PriceObservation;
    use pd_currency::{Currency, Price};
    use pd_net::clock::SimTime;
    use pd_util::{Money, RequestId, Seed, UserId, VantageId};

    fn fx() -> FxSeries {
        FxSeries::generate(Seed::new(1307), 160)
    }

    fn usd(minor: i64) -> Price {
        Price::new(Money::from_minor(minor), Currency::Usd)
    }

    fn meas(
        user_price: Option<Price>,
        obs_prices: &[Option<i64>],
        noise: NoiseTruth,
    ) -> Measurement {
        Measurement {
            request: RequestId::new(0),
            user: UserId::new(0),
            domain: "shop.example".into(),
            product_slug: "x".into(),
            time: SimTime::from_millis(10 * 24 * 3_600_000),
            user_price,
            observations: obs_prices
                .iter()
                .enumerate()
                .map(|(i, p)| match p {
                    Some(minor) => {
                        PriceObservation::ok(VantageId::new(i as u32), usd(*minor), String::new())
                    }
                    None => PriceObservation::failed(VantageId::new(i as u32), "err".into()),
                })
                .collect(),
            noise_truth: noise,
        }
    }

    #[test]
    fn clean_measurement_is_kept() {
        let mut store = MeasurementStore::new();
        store.push(meas(
            Some(usd(10_000)),
            &[Some(10_000), Some(10_000), Some(12_000)],
            NoiseTruth::Clean,
        ));
        let (kept, report) = clean(&store, &fx(), |_| Some(usd(10_000)));
        assert_eq!(kept.len(), 1);
        assert_eq!(report.kept, 1);
        assert_eq!(report.dropped_inconsistent, 0);
        assert_eq!(report.dropped_unhealthy, 0);
    }

    #[test]
    fn customization_mismatch_is_dropped() {
        let mut store = MeasurementStore::new();
        // User saw $115 (customized +15 %); the URI serves $100.
        store.push(meas(
            Some(usd(11_500)),
            &[Some(10_000), Some(10_000), Some(10_000)],
            NoiseTruth::Customization,
        ));
        let (kept, report) = clean(&store, &fx(), |_| Some(usd(10_000)));
        assert_eq!(kept.len(), 0);
        assert_eq!(report.dropped_inconsistent, 1);
        assert_eq!(report.dropped_truly_noisy, 1);
    }

    #[test]
    fn majority_failures_dropped() {
        let mut store = MeasurementStore::new();
        store.push(meas(
            Some(usd(10_000)),
            &[Some(10_000), None, None, None],
            NoiseTruth::Clean,
        ));
        let (kept, report) = clean(&store, &fx(), |_| Some(usd(10_000)));
        assert_eq!(kept.len(), 0);
        assert_eq!(report.dropped_unhealthy, 1);
    }

    #[test]
    fn missing_user_price_passes_refetch_rule() {
        // Without a captured user price the refetch rule cannot apply;
        // health rule alone decides.
        let mut store = MeasurementStore::new();
        store.push(meas(None, &[Some(100), Some(100)], NoiseTruth::Clean));
        let (kept, _) = clean(&store, &fx(), |_| None);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn report_tracks_misses() {
        // A mis-highlight that happens to be self-consistent slips
        // through — the report records it as a kept-noisy miss.
        let mut store = MeasurementStore::new();
        store.push(meas(
            Some(usd(1_000)),
            &[Some(1_000), Some(1_000)],
            NoiseTruth::MisHighlight,
        ));
        let (kept, report) = clean(&store, &fx(), |_| Some(usd(1_000)));
        assert_eq!(kept.len(), 1);
        assert_eq!(report.kept_truly_noisy, 1);
    }

    #[test]
    fn genuine_variation_is_not_mistaken_for_noise() {
        // The refetch rule compares the *user's* price with the *user's
        // own location* refetch — a retailer that discriminates across
        // locations still yields a consistent pair here and is kept.
        let mut store = MeasurementStore::new();
        store.push(meas(
            Some(usd(10_000)),
            &[Some(10_000), Some(13_000)], // real cross-location variation
            NoiseTruth::Clean,
        ));
        let (kept, report) = clean(&store, &fx(), |_| Some(usd(10_000)));
        assert_eq!(kept.len(), 1);
        assert_eq!(report.dropped_inconsistent, 0);
    }
}
