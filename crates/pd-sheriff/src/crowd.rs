//! The simulated crowd.
//!
//! Sec. 3.2: "1500 requests (between Jan–May 2013) … issued by 340
//! different users from 18 countries … checked products from 600
//! domains." The crowd model reproduces those aggregates:
//!
//! * users are spread over all 18 countries with a popularity skew
//!   (US/UK/DE-heavy, as browser-extension userbases are),
//! * each user has 1–3 interest categories; they check products from
//!   retailers carrying those categories, weighted by retailer
//!   popularity — so amazon-likes collect tens of checks while niche
//!   local stores get a handful (the long tail that "underscores the
//!   usefulness of crowdsourcing"),
//! * checks are spread over the 151-day window,
//! * a small fraction of checks carry the paper's noise: product
//!   customization not encoded in the URI, and mis-highlights.

use crate::fanout::Sheriff;
use crate::measurement::{Measurement, MeasurementStore, NoiseTruth, PriceObservation};
use pd_currency::Locale;
use pd_extract::HighlightExtractor;
use pd_net::clock::{SimDuration, SimTime};
use pd_net::geo::{Country, Location};
use pd_util::{RequestId, Seed, UserId};
use pd_web::template::price_selector;
use pd_web::{Request, WebWorld};
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// Crowd-simulation parameters. Defaults reproduce the paper's
/// aggregates; tests shrink them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrowdConfig {
    /// Number of $heriff users.
    pub users: usize,
    /// Total number of checks to issue.
    pub checks: usize,
    /// Length of the collection window in days.
    pub window_days: u64,
    /// Probability that a check is a customization mismatch.
    pub customization_noise: f64,
    /// Probability that a check highlights the wrong element.
    pub mis_highlight_noise: f64,
    /// Optional locale emphasis (the `locale-sweep` scenario): the given
    /// country's population weight is boosted ×4 before normalization.
    /// `None` reproduces the paper's measured skew exactly.
    pub bias_country: Option<Country>,
}

impl Default for CrowdConfig {
    fn default() -> Self {
        CrowdConfig {
            users: 340,
            checks: 1_500,
            window_days: 151, // Jan 1 – May 31, 2013
            customization_noise: 0.04,
            mis_highlight_noise: 0.03,
            bias_country: None,
        }
    }
}

/// One simulated $heriff user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrowdUser {
    /// Dense user id.
    pub id: UserId,
    /// Where they live (their own page renders from here).
    pub location: Location,
    /// Their client address.
    addr: std::net::Ipv4Addr,
    /// Interest categories (indices into `Category::ALL`).
    pub interests: Vec<usize>,
}

/// User-country skew: extension userbases concentrate in a few countries
/// while still covering all 18. `bias` boosts one country's weight ×4
/// (same draw count either way, so the unbiased stream is unchanged).
fn user_country(rng: &mut StdRng, bias: Option<Country>) -> Country {
    let weights: [(Country, f64); 18] = [
        (Country::UnitedStates, 0.22),
        (Country::Spain, 0.14),
        (Country::UnitedKingdom, 0.10),
        (Country::Germany, 0.09),
        (Country::Italy, 0.07),
        (Country::France, 0.06),
        (Country::Finland, 0.05),
        (Country::Belgium, 0.04),
        (Country::Brazil, 0.04),
        (Country::Netherlands, 0.035),
        (Country::Poland, 0.03),
        (Country::Portugal, 0.025),
        (Country::Greece, 0.02),
        (Country::Sweden, 0.02),
        (Country::Ireland, 0.02),
        (Country::Canada, 0.02),
        (Country::Australia, 0.015),
        (Country::Japan, 0.015),
    ];
    let boosted = |c: Country, w: f64| if bias == Some(c) { w * 4.0 } else { w };
    let total: f64 = weights.iter().map(|(c, w)| boosted(*c, *w)).sum();
    let mut draw = rng.random_range(0.0..total);
    for (c, w) in weights {
        let w = boosted(c, w);
        if draw < w {
            return c;
        }
        draw -= w;
    }
    Country::UnitedStates
}

impl CrowdUser {
    /// The user's client IP address (needed by the cleaning refetch).
    #[must_use]
    pub fn addr(&self) -> std::net::Ipv4Addr {
        self.addr
    }
}

/// The crowd: users plus the measurement campaign driver.
#[derive(Debug)]
pub struct Crowd {
    users: Vec<CrowdUser>,
    config: CrowdConfig,
    seed: Seed,
}

impl Crowd {
    /// Creates the user population (allocating their client addresses in
    /// `world`).
    #[must_use]
    pub fn new(seed: Seed, config: CrowdConfig, world: &mut WebWorld) -> Self {
        let seed = seed.derive("crowd");
        let mut rng = seed.derive("population").rng();
        let users = (0..config.users)
            .map(|i| {
                let country = user_country(&mut rng, config.bias_country);
                let location = Location::new(country, "Home");
                let addr = world.allocate_client(&location);
                let n_interests = rng.random_range(1..=3);
                let mut interests: Vec<usize> = (0..19).collect();
                interests.shuffle(&mut rng);
                interests.truncate(n_interests);
                CrowdUser {
                    id: UserId::new(i as u32),
                    location,
                    addr,
                    interests,
                }
            })
            .collect();
        Crowd {
            users,
            config,
            seed,
        }
    }

    /// The user population.
    #[must_use]
    pub fn users(&self) -> &[CrowdUser] {
        &self.users
    }

    /// Number of distinct user countries (the paper reports 18).
    #[must_use]
    pub fn country_count(&self) -> usize {
        self.users
            .iter()
            .map(|u| u.location.country)
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// Plans the whole campaign: draws every stochastic choice (user,
    /// retailer, product, time, noise) for `config.checks` checks from
    /// the campaign RNG, **without touching the network**. The returned
    /// plans are in check order; executing them (in any order) and
    /// merging by `check_idx` reproduces [`run_campaign`] exactly.
    ///
    /// [`run_campaign`]: Crowd::run_campaign
    #[must_use]
    pub fn plan_campaign(&self, world: &WebWorld) -> Vec<CheckPlan> {
        let mut rng = self.seed.derive("campaign").rng();
        let servers = world.servers();
        (0..self.config.checks)
            .map(|check_idx| {
                let user_index = rng.random_range(0..self.users.len());
                let user = &self.users[user_index];
                // Candidate retailers: those selling an interest category;
                // choice weights are popularity × interest match.
                let weights: Vec<f64> = servers
                    .iter()
                    .map(|s| {
                        let matches = s
                            .spec()
                            .categories
                            .iter()
                            .any(|c| user.interests.contains(&c.index()));
                        if matches {
                            s.spec().popularity
                        } else {
                            s.spec().popularity * 0.05 // occasional off-interest browse
                        }
                    })
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut draw = rng.random_range(0.0..total);
                let mut chosen = 0;
                for (i, w) in weights.iter().enumerate() {
                    if draw < *w {
                        chosen = i;
                        break;
                    }
                    draw -= w;
                }
                let server = &servers[chosen];
                let catalog = server.catalog();
                let pidx = rng.random_range(0..catalog.len());
                let product = catalog.product(pd_util::ProductId::new(pidx as u32));

                // Check time: uniform day, business-ish hour.
                let day = rng.random_range(0..self.config.window_days);
                let ms = rng.random_range(8 * 3_600_000..22 * 3_600_000u64);
                let time =
                    SimTime::from_millis(day * 24 * 3_600_000) + SimDuration::from_millis(ms);

                // Noise lottery.
                let noise_draw: f64 = rng.random();
                let noise = if noise_draw < self.config.customization_noise {
                    NoiseTruth::Customization
                } else if noise_draw
                    < self.config.customization_noise + self.config.mis_highlight_noise
                {
                    NoiseTruth::MisHighlight
                } else {
                    NoiseTruth::Clean
                };

                CheckPlan {
                    check_idx,
                    user_index,
                    domain: server.spec().domain.clone(),
                    slug: product.slug.clone(),
                    template_style: server.spec().template_style,
                    time,
                    noise,
                }
            })
            .collect()
    }

    /// Parallel-safe entry point: executes one planned check end to end
    /// (render the user's own page, capture the highlight, fan out).
    /// Pure in all inputs — plans may be executed in any order, or
    /// concurrently, and merged by plan order.
    ///
    /// # Panics
    ///
    /// Panics if the plan's `user_index` is out of range for this crowd.
    #[must_use]
    pub fn execute_check(
        &self,
        world: &WebWorld,
        sheriff: &Sheriff,
        plan: &CheckPlan,
    ) -> Option<Measurement> {
        run_one_check(
            world,
            sheriff,
            &self.users[plan.user_index],
            &plan.domain,
            &plan.slug,
            plan.template_style,
            plan.time,
            plan.noise,
            plan.check_idx,
        )
    }

    /// Runs the whole crowdsourced campaign: `config.checks` checks
    /// through `sheriff`, recorded into a fresh store. Equivalent to
    /// planning with [`Crowd::plan_campaign`] and executing every plan in
    /// order.
    #[must_use]
    pub fn run_campaign(&self, world: &WebWorld, sheriff: &Sheriff) -> MeasurementStore {
        let mut store = MeasurementStore::new();
        for plan in self.plan_campaign(world) {
            if let Some(m) = self.execute_check(world, sheriff, &plan) {
                store.push(m);
            }
        }
        store
    }
}

/// One planned crowd check: every stochastic decision made up front, so
/// execution is a pure function of (world, sheriff, plan) and can be
/// fanned across worker threads deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckPlan {
    /// Position in the campaign (merge key for deterministic fan-out).
    pub check_idx: usize,
    /// Index of the issuing user in [`Crowd::users`].
    pub user_index: usize,
    /// Retailer domain to check.
    pub domain: String,
    /// Product slug (URI path is `/product/<slug>`).
    pub slug: String,
    /// The retailer's template style (selects the price highlight).
    pub template_style: u8,
    /// Synchronized check instant.
    pub time: SimTime,
    /// Ground-truth noise label drawn for this check.
    pub noise: NoiseTruth,
}

/// Executes one check end to end: render the user's own page, capture the
/// highlight, fan out, record. Returns `None` when even the user's own
/// page failed (never happens for registered domains; kept total anyway).
#[allow(clippy::too_many_arguments)]
fn run_one_check(
    world: &WebWorld,
    sheriff: &Sheriff,
    user: &CrowdUser,
    domain: &str,
    slug: &str,
    template_style: u8,
    time: SimTime,
    noise: NoiseTruth,
    check_idx: usize,
) -> Option<Measurement> {
    let path = format!("/product/{slug}");
    let own_req = Request::get(domain, &path, user.addr, time);
    let own_resp = world.fetch(&own_req);
    if own_resp.status.code() != 200 {
        return None;
    }
    let own_doc = pd_html::parse(&own_resp.body);

    // Highlight: the price element, or — mis-highlight noise — the promo.
    let selector = if noise == NoiseTruth::MisHighlight {
        pd_html::Selector::parse(".promo-banner > em").expect("static selector")
    } else {
        price_selector(template_style)
    };
    let extractor = HighlightExtractor::from_highlight(&own_doc, &selector)?;
    let own_locale = Locale::of_country(user.location.country);
    let own_extract = extractor.extract(&own_doc, Some(own_locale)).ok();

    // Customization noise: the user actually configured a +15 % variant;
    // their *displayed* price differs from what the URI serves.
    let user_price = own_extract.as_ref().map(|e| {
        if noise == NoiseTruth::Customization {
            pd_currency::Price::new(e.price.amount.scale(1.15), e.price.currency)
        } else {
            e.price
        }
    });

    let observations: Vec<PriceObservation> =
        sheriff.check(world, domain, &path, &extractor, time, &[]);

    Some(Measurement {
        request: RequestId::new(check_idx as u32), // overwritten by store
        user: user.id,
        domain: domain.to_owned(),
        product_slug: slug.to_owned(),
        time,
        user_price,
        observations,
        noise_truth: noise,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_net::ip::IpAllocator;
    use pd_net::latency::LatencyModel;
    use pd_net::vantage::paper_vantage_points;
    use pd_pricing::{filler_retailers, paper_retailers};

    fn small_world() -> (WebWorld, Sheriff) {
        let seed = Seed::new(1307);
        let mut specs = paper_retailers(seed);
        specs.extend(filler_retailers(seed, 30));
        let mut world = WebWorld::build(seed, specs, 160);
        let mut alloc = IpAllocator::new();
        let vps: Vec<_> = paper_vantage_points(&mut alloc)
            .into_iter()
            .map(|mut vp| {
                vp.addr = world.allocate_client(&vp.location);
                vp
            })
            .collect();
        let sheriff = Sheriff::new(vps, LatencyModel::new(seed));
        (world, sheriff)
    }

    fn small_config() -> CrowdConfig {
        CrowdConfig {
            users: 40,
            checks: 80,
            window_days: 30,
            ..CrowdConfig::default()
        }
    }

    #[test]
    fn population_covers_many_countries() {
        let (mut world, _) = small_world();
        let crowd = Crowd::new(Seed::new(1307), CrowdConfig::default(), &mut world);
        assert_eq!(crowd.users().len(), 340);
        // Full-size population covers all 18 countries.
        assert_eq!(crowd.country_count(), 18);
    }

    #[test]
    fn population_is_deterministic() {
        let (mut w1, _) = small_world();
        let (mut w2, _) = small_world();
        let a = Crowd::new(Seed::new(5), small_config(), &mut w1);
        let b = Crowd::new(Seed::new(5), small_config(), &mut w2);
        for (ua, ub) in a.users().iter().zip(b.users()) {
            assert_eq!(ua.location, ub.location);
            assert_eq!(ua.interests, ub.interests);
        }
    }

    #[test]
    fn campaign_produces_requested_checks() {
        let (mut world, sheriff) = small_world();
        let crowd = Crowd::new(Seed::new(1307), small_config(), &mut world);
        let store = crowd.run_campaign(&world, &sheriff);
        assert_eq!(store.len(), 80);
        // Every measurement has 14 observations.
        assert!(store.records().iter().all(|m| m.observations.len() == 14));
    }

    #[test]
    fn campaign_is_deterministic() {
        let (mut w1, s1) = small_world();
        let crowd1 = Crowd::new(Seed::new(7), small_config(), &mut w1);
        let store1 = crowd1.run_campaign(&w1, &s1);
        let (mut w2, s2) = small_world();
        let crowd2 = Crowd::new(Seed::new(7), small_config(), &mut w2);
        let store2 = crowd2.run_campaign(&w2, &s2);
        assert_eq!(store1.len(), store2.len());
        for (a, b) in store1.records().iter().zip(store2.records()) {
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.product_slug, b.product_slug);
            assert_eq!(a.prices(), b.prices());
        }
    }

    #[test]
    fn planned_execution_matches_run_campaign() {
        let (mut world, sheriff) = small_world();
        let crowd = Crowd::new(Seed::new(7), small_config(), &mut world);
        let direct = crowd.run_campaign(&world, &sheriff);
        // Execute the plans out of order, then merge by plan order — the
        // store must come out identical (this is the scheduler contract).
        let plans = crowd.plan_campaign(&world);
        let mut results: Vec<(usize, Measurement)> = plans
            .iter()
            .rev()
            .filter_map(|p| {
                crowd
                    .execute_check(&world, &sheriff, p)
                    .map(|m| (p.check_idx, m))
            })
            .collect();
        results.sort_by_key(|(idx, _)| *idx);
        let mut merged = MeasurementStore::new();
        for (_, m) in results {
            merged.push(m);
        }
        assert_eq!(direct.len(), merged.len());
        for (a, b) in direct.records().iter().zip(merged.records()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bias_country_shifts_population_without_breaking_determinism() {
        let (mut w1, _) = small_world();
        let (mut w2, _) = small_world();
        let mut biased_cfg = small_config();
        biased_cfg.users = 200;
        biased_cfg.bias_country = Some(Country::Germany);
        let mut plain_cfg = biased_cfg.clone();
        plain_cfg.bias_country = None;
        let biased = Crowd::new(Seed::new(11), biased_cfg, &mut w1);
        let plain = Crowd::new(Seed::new(11), plain_cfg, &mut w2);
        let count = |c: &Crowd| {
            c.users()
                .iter()
                .filter(|u| u.location.country == Country::Germany)
                .count()
        };
        assert!(
            count(&biased) > count(&plain),
            "bias ×4 must enlarge the German cohort: {} vs {}",
            count(&biased),
            count(&plain)
        );
    }

    #[test]
    fn popular_retailers_collect_more_checks() {
        let (mut world, sheriff) = small_world();
        let mut cfg = small_config();
        cfg.checks = 300;
        let crowd = Crowd::new(Seed::new(1307), cfg, &mut world);
        let store = crowd.run_campaign(&world, &sheriff);
        let amazon = store.by_domain("www.amazon.com").count();
        let bookdep = store.by_domain("www.bookdepository.co.uk").count();
        assert!(
            amazon > bookdep,
            "popularity skew: amazon {amazon} vs bookdepository {bookdep}"
        );
    }

    #[test]
    fn noise_is_injected_at_configured_rate() {
        let (mut world, sheriff) = small_world();
        let mut cfg = small_config();
        cfg.checks = 400;
        cfg.customization_noise = 0.2;
        cfg.mis_highlight_noise = 0.1;
        let crowd = Crowd::new(Seed::new(3), cfg, &mut world);
        let store = crowd.run_campaign(&world, &sheriff);
        let custom = store
            .records()
            .iter()
            .filter(|m| m.noise_truth == NoiseTruth::Customization)
            .count();
        let mis = store
            .records()
            .iter()
            .filter(|m| m.noise_truth == NoiseTruth::MisHighlight)
            .count();
        assert!((40..=120).contains(&custom), "customization {custom}");
        assert!((15..=70).contains(&mis), "mis-highlight {mis}");
    }

    #[test]
    fn customization_noise_shifts_user_price_only() {
        let (mut world, sheriff) = small_world();
        let mut cfg = small_config();
        cfg.checks = 200;
        cfg.customization_noise = 0.5;
        cfg.mis_highlight_noise = 0.0;
        let crowd = Crowd::new(Seed::new(9), cfg, &mut world);
        let store = crowd.run_campaign(&world, &sheriff);
        let noisy: Vec<_> = store
            .records()
            .iter()
            .filter(|m| m.noise_truth == NoiseTruth::Customization)
            .collect();
        assert!(!noisy.is_empty());
        for m in noisy {
            // The user's price is 15% above what their own-country VP
            // would see — verifiable whenever a same-country VP exists
            // and extraction succeeded.
            let user_price = m.user_price.expect("user extracted");
            assert!(user_price.amount.is_positive());
        }
    }
}
