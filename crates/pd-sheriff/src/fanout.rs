//! The synchronized 14-point check.
//!
//! Sec. 2.2: "we synchronized the measurements from different vantage
//! points so that they occur almost at the same time". Each check sends
//! the exact URI to all vantage points; every fetch happens at the check
//! instant plus its one-way network latency (hundreds of ms at most — the
//! ablation bench removes this synchronization to show what breaks).

use crate::measurement::PriceObservation;
use pd_currency::Locale;
use pd_extract::HighlightExtractor;
use pd_net::clock::{SimDuration, SimTime};
use pd_net::geo::Country;
use pd_net::latency::LatencyModel;
use pd_net::vantage::VantagePoint;
use pd_web::{Request, WebWorld};

/// The fan-out engine: the fixed vantage-point fleet plus the latency
/// model used to timestamp each fetch.
///
/// The desynchronization skew is deliberately *not* a public field: a
/// `Sheriff` is configured once (via [`Sheriff::with_desync`], normally
/// through the `desync-ablation` scenario in `pd-core`) and is immutable
/// afterwards, so no caller can silently desynchronize an engine mid-run.
#[derive(Debug, Clone)]
pub struct Sheriff {
    vantage_points: Vec<VantagePoint>,
    latency: LatencyModel,
    /// Extra per-vantage start skew (zero = synchronized; the ablation
    /// scenario sets it to minutes to demonstrate the noise it causes).
    desync: SimDuration,
}

impl Sheriff {
    /// Builds the engine from a vantage fleet and latency model, with
    /// synchronized fan-out (zero skew).
    #[must_use]
    pub fn new(vantage_points: Vec<VantagePoint>, latency: LatencyModel) -> Self {
        Sheriff {
            vantage_points,
            latency,
            desync: SimDuration::ZERO,
        }
    }

    /// Consuming setter for the desynchronization skew: vantage point `i`
    /// starts its fetch `i × desync` after the check instant. This is the
    /// ablation knob for the paper's synchronization argument; it can only
    /// be set at construction time.
    #[must_use]
    pub fn with_desync(mut self, desync: SimDuration) -> Self {
        self.desync = desync;
        self
    }

    /// The configured desynchronization skew (zero = synchronized).
    #[must_use]
    pub fn desync(&self) -> SimDuration {
        self.desync
    }

    /// Consuming setter restricting the fleet to the vantage points whose
    /// Fig. 7 labels appear in `labels` (fleet order is preserved; unknown
    /// labels are ignored). Used by the `vantage-subset` scenario.
    #[must_use]
    pub fn with_vantage_subset(mut self, labels: &[String]) -> Self {
        self.vantage_points
            .retain(|vp| labels.iter().any(|l| *l == vp.label()));
        self
    }

    /// The vantage fleet.
    #[must_use]
    pub fn vantage_points(&self) -> &[VantagePoint] {
        &self.vantage_points
    }

    /// Runs one check: fetch `http://host/path` from every vantage point
    /// at `time`, replay the highlight on each copy, extract.
    ///
    /// `extra_cookies` ride on every fetch (the login experiment sets
    /// `login=<key>`; normal checks pass none). Each vantage fetch is a
    /// fresh session, as $heriff's probes were.
    #[must_use]
    pub fn check(
        &self,
        world: &WebWorld,
        host: &str,
        path: &str,
        extractor: &HighlightExtractor,
        time: SimTime,
        extra_cookies: &[(String, String)],
    ) -> Vec<PriceObservation> {
        let _ = world.server_by_domain(host); // host may be unknown; fetch handles it
        (0..self.vantage_points.len())
            .map(|i| self.check_one(world, host, path, extractor, time, extra_cookies, i))
            .collect()
    }

    /// Parallel-safe single-vantage entry point: the fetch + extraction
    /// for vantage index `i` of a check. Pure in all inputs — callers
    /// (e.g. the `pd-core` executor) may evaluate vantage indices in any
    /// order or concurrently and obtain results identical to [`check`].
    ///
    /// [`check`]: Sheriff::check
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range of the vantage fleet.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn check_one(
        &self,
        world: &WebWorld,
        host: &str,
        path: &str,
        extractor: &HighlightExtractor,
        time: SimTime,
        extra_cookies: &[(String, String)],
        i: usize,
    ) -> PriceObservation {
        // All simulated retailers are modeled as US-hosted origin
        // servers; only the relative latency spread matters for the
        // synchronization argument.
        let dst_country = Country::UnitedStates;
        let vp = &self.vantage_points[i];
        let skew_ms = self.desync.as_millis() * i as u64;
        let arrive = time
            + SimDuration::from_millis(
                self.latency.one_way_ms(vp.location.country, dst_country) + skew_ms,
            );
        let mut req = Request::get(host, path, vp.addr, arrive)
            .with_header("user-agent", &vp.platform.user_agent());
        for (name, value) in extra_cookies {
            req = req.with_cookie(name, value);
        }
        let resp = world.fetch(&req);
        if resp.status.code() != 200 {
            return PriceObservation::failed(vp.id, format!("http {}", resp.status.code()));
        }
        let doc = pd_html::parse(&resp.body);
        let hint = Locale::of_country(vp.location.country);
        match extractor.extract(&doc, Some(hint)) {
            Ok(ex) => PriceObservation::ok(vp.id, ex.price, ex.raw_text),
            Err(e) => PriceObservation::failed(vp.id, e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_currency::Currency;
    use pd_html::parse;
    use pd_net::ip::IpAllocator;
    use pd_net::vantage::paper_vantage_points;
    use pd_pricing::paper_retailers;
    use pd_util::Seed;
    use pd_web::template::price_selector;

    struct Rig {
        world: WebWorld,
        sheriff: Sheriff,
    }

    fn rig() -> Rig {
        let seed = Seed::new(1307);
        let mut world = WebWorld::build(seed, paper_retailers(seed), 160);
        let mut alloc = IpAllocator::new();
        let vps: Vec<VantagePoint> = paper_vantage_points(&mut alloc)
            .into_iter()
            .map(|mut vp| {
                vp.addr = world.allocate_client(&vp.location);
                vp
            })
            .collect();
        let sheriff = Sheriff::new(vps, LatencyModel::new(seed));
        Rig { world, sheriff }
    }

    fn highlight_for(rig: &Rig, domain: &str, slug: &str) -> HighlightExtractor {
        // Simulate a US user rendering their own page and highlighting.
        let server = rig.world.server_by_domain(domain).unwrap();
        let vp = &rig.sheriff.vantage_points()[8]; // USA - Boston
        let req = Request::get(domain, &format!("/product/{slug}"), vp.addr, SimTime::EPOCH);
        let resp = rig.world.fetch(&req);
        let doc = parse(&resp.body);
        HighlightExtractor::from_highlight(&doc, &price_selector(server.spec().template_style))
            .unwrap()
    }

    #[test]
    fn fourteen_observations_per_check() {
        let r = rig();
        let slug = r
            .world
            .server_by_domain("www.digitalrev.com")
            .unwrap()
            .catalog()
            .iter()
            .next()
            .unwrap()
            .slug
            .clone();
        let ex = highlight_for(&r, "www.digitalrev.com", &slug);
        let obs = r.sheriff.check(
            &r.world,
            "www.digitalrev.com",
            &format!("/product/{slug}"),
            &ex,
            SimTime::EPOCH,
            &[],
        );
        assert_eq!(obs.len(), 14);
        assert!(obs.iter().all(|o| o.price.is_some()), "{obs:?}");
    }

    #[test]
    fn multiplicative_retailer_shows_location_spread() {
        let r = rig();
        let slug = r
            .world
            .server_by_domain("www.digitalrev.com")
            .unwrap()
            .catalog()
            .iter()
            .next()
            .unwrap()
            .slug
            .clone();
        let ex = highlight_for(&r, "www.digitalrev.com", &slug);
        let obs = r.sheriff.check(
            &r.world,
            "www.digitalrev.com",
            &format!("/product/{slug}"),
            &ex,
            SimTime::EPOCH,
            &[],
        );
        // Finnish VP (index 2) sees EUR; US VPs see USD.
        let fi = &obs[2];
        assert_eq!(fi.price.unwrap().currency, Currency::Eur);
        let us = &obs[8];
        assert_eq!(us.price.unwrap().currency, Currency::Usd);
        // Convert via world FX: Finland ≈ 1.26× the US price.
        let f = r.world.fx();
        let ratio = f.to_usd_mid(fi.price.unwrap(), 0) / f.to_usd_mid(us.price.unwrap(), 0);
        assert!((1.20..1.32).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn three_spain_probes_agree() {
        // Same location, different platforms: platform must not change
        // the price (no platform component in any strategy).
        let r = rig();
        let slug = r
            .world
            .server_by_domain("www.energie.it")
            .unwrap()
            .catalog()
            .iter()
            .next()
            .unwrap()
            .slug
            .clone();
        let ex = highlight_for(&r, "www.energie.it", &slug);
        let obs = r.sheriff.check(
            &r.world,
            "www.energie.it",
            &format!("/product/{slug}"),
            &ex,
            SimTime::EPOCH,
            &[],
        );
        let spain: Vec<_> = (4..=6).map(|i| obs[i].price.unwrap()).collect();
        assert_eq!(spain[0], spain[1]);
        assert_eq!(spain[1], spain[2]);
    }

    #[test]
    fn unknown_host_fails_observations() {
        let r = rig();
        let doc = parse("<html><body><span class=price>$5</span></body></html>");
        let ex =
            HighlightExtractor::from_highlight(&doc, &pd_html::Selector::parse(".price").unwrap())
                .unwrap();
        let obs = r.sheriff.check(
            &r.world,
            "gone.example",
            "/product/x",
            &ex,
            SimTime::EPOCH,
            &[],
        );
        assert_eq!(obs.len(), 14);
        assert!(obs.iter().all(|o| o.price.is_none()));
        assert!(obs[0].error.as_deref().unwrap().contains("404"));
    }

    #[test]
    fn login_cookie_rides_every_fetch() {
        let r = rig();
        let slug = r
            .world
            .server_by_domain("www.amazon.com")
            .unwrap()
            .catalog()
            .iter()
            .next()
            .unwrap()
            .slug
            .clone();
        let ex = highlight_for(&r, "www.amazon.com", &slug);
        let anon = r.sheriff.check(
            &r.world,
            "www.amazon.com",
            &format!("/product/{slug}"),
            &ex,
            SimTime::EPOCH,
            &[],
        );
        let logged = r.sheriff.check(
            &r.world,
            "www.amazon.com",
            &format!("/product/{slug}"),
            &ex,
            SimTime::EPOCH,
            &[("login".to_owned(), "7".to_owned())],
        );
        // Amazon's jitter is session-keyed, not login-keyed: with equal
        // session derivation inputs (addr, time), prices must match.
        let pa: Vec<_> = anon.iter().map(|o| o.price).collect();
        let pl: Vec<_> = logged.iter().map(|o| o.price).collect();
        assert_eq!(pa, pl, "login alone must not shift prices");
    }

    #[test]
    fn desync_changes_nothing_for_static_prices_within_day() {
        let r = rig();
        let slug = r
            .world
            .server_by_domain("www.digitalrev.com")
            .unwrap()
            .catalog()
            .iter()
            .next()
            .unwrap()
            .slug
            .clone();
        let ex = highlight_for(&r, "www.digitalrev.com", &slug);
        let sync = r.sheriff.check(
            &r.world,
            "www.digitalrev.com",
            &format!("/product/{slug}"),
            &ex,
            SimTime::EPOCH,
            &[],
        );
        let desynced = r.sheriff.clone().with_desync(SimDuration::from_mins(1));
        assert_eq!(desynced.desync(), SimDuration::from_mins(1));
        let desync = desynced.check(
            &r.world,
            "www.digitalrev.com",
            &format!("/product/{slug}"),
            &ex,
            SimTime::EPOCH,
            &[],
        );
        // digitalrev has no temporal component and sessions are keyed by
        // time... prices may differ only if a session-keyed component
        // exists; digitalrev has none.
        let a: Vec<_> = sync.iter().map(|o| o.price).collect();
        let b: Vec<_> = desync.iter().map(|o| o.price).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn check_one_matches_full_check_at_every_index() {
        let r = rig();
        let slug = r
            .world
            .server_by_domain("www.energie.it")
            .unwrap()
            .catalog()
            .iter()
            .next()
            .unwrap()
            .slug
            .clone();
        let ex = highlight_for(&r, "www.energie.it", &slug);
        let path = format!("/product/{slug}");
        let full = r
            .sheriff
            .check(&r.world, "www.energie.it", &path, &ex, SimTime::EPOCH, &[]);
        // Evaluate in reverse order: results must still line up per index.
        for i in (0..full.len()).rev() {
            let one = r.sheriff.check_one(
                &r.world,
                "www.energie.it",
                &path,
                &ex,
                SimTime::EPOCH,
                &[],
                i,
            );
            assert_eq!(one, full[i], "vantage {i}");
        }
    }

    #[test]
    fn vantage_subset_preserves_fleet_order() {
        let r = rig();
        let keep = vec![
            "Finland - Tampere".to_owned(),
            "USA - Boston".to_owned(),
            "UK - London".to_owned(),
        ];
        let subset = r.sheriff.clone().with_vantage_subset(&keep);
        let labels: Vec<String> = subset
            .vantage_points()
            .iter()
            .map(|vp| vp.label())
            .collect();
        assert_eq!(labels.len(), 3);
        // Fleet order (not request order) is preserved.
        let full: Vec<String> = r
            .sheriff
            .vantage_points()
            .iter()
            .map(|vp| vp.label())
            .filter(|l| keep.contains(l))
            .collect();
        assert_eq!(labels, full);
        // Unknown labels are ignored.
        let none = r
            .sheriff
            .clone()
            .with_vantage_subset(&["Mars - Olympus".to_owned()]);
        assert!(none.vantage_points().is_empty());
    }
}
