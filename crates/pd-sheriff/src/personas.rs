//! The Sec. 4.4 personal-information experiments.
//!
//! Two harnesses, both holding **location and time fixed** as the paper
//! stresses:
//!
//! * [`persona_experiment`] — affluent vs. budget-conscious trained
//!   personas checking the same products. The paper finds *no* price
//!   differences; the simulation reproduces the null result end to end
//!   (personas ride a cookie the retailers demonstrably ignore).
//! * [`login_experiment`] — Kindle-style ebook prices for three logged-in
//!   accounts and a logged-out browser (Fig. 10). Prices vary per
//!   session, but the variation is uncorrelated with login — the paper's
//!   exact observation.

use pd_currency::{Locale, Price};
use pd_extract::HighlightExtractor;
use pd_net::clock::SimTime;
use pd_net::geo::Location;
use pd_util::Seed;
use pd_web::template::price_selector;
use pd_web::{Request, WebWorld};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One product's prices across the four Fig. 10 series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoginRow {
    /// Product index (x-axis of Fig. 10).
    pub product: usize,
    /// Product slug.
    pub slug: String,
    /// Price without login.
    pub without_login: Option<Price>,
    /// Prices for users A, B, C.
    pub users: [Option<Price>; 3],
}

/// Result of the login experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoginExperiment {
    /// Retailer measured.
    pub domain: String,
    /// Per-product rows.
    pub rows: Vec<LoginRow>,
}

/// Result of the persona experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersonaExperiment {
    /// Retailers measured.
    pub domains: Vec<String>,
    /// Products checked per retailer.
    pub products_per_retailer: usize,
    /// Number of (retailer, product) pairs where affluent and budget
    /// personas saw different prices. The paper's result: **0**.
    pub differing_pairs: usize,
    /// Total pairs checked.
    pub total_pairs: usize,
}

fn fetch_price(
    world: &WebWorld,
    domain: &str,
    slug: &str,
    addr: Ipv4Addr,
    time: SimTime,
    location: &Location,
    cookies: &[(&str, &str)],
) -> Option<Price> {
    let style = world.server_by_domain(domain)?.spec().template_style;
    let mut req = Request::get(domain, &format!("/product/{slug}"), addr, time);
    for (name, value) in cookies {
        req = req.with_cookie(name, value);
    }
    let resp = world.fetch(&req);
    if resp.status.code() != 200 {
        return None;
    }
    let doc = pd_html::parse(&resp.body);
    let ex = HighlightExtractor::from_highlight(&doc, &price_selector(style))?;
    ex.extract(&doc, Some(Locale::of_country(location.country)))
        .ok()
        .map(|e| e.price)
}

/// The ebook slugs the login experiment measures for `domain` (up to
/// `products` of them). Splitting this out of [`login_experiment`] lets a
/// scheduler fan [`login_row`] per product.
#[must_use]
pub fn login_slugs(world: &WebWorld, domain: &str, products: usize) -> Vec<String> {
    let server = world
        .server_by_domain(domain)
        .expect("login experiment targets a known domain");
    server
        .catalog()
        .iter()
        .filter(|p| p.category == pd_pricing::Category::Ebooks)
        .take(products)
        .map(|p| p.slug.clone())
        .collect()
}

/// Parallel-safe entry point: one product's Fig. 10 row — the four
/// identities' prices for `slug`. Pure in all inputs; rows may be
/// computed in any order, or concurrently, and merged by `product` index.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn login_row(
    world: &WebWorld,
    seed: Seed,
    domain: &str,
    location: &Location,
    addr: Ipv4Addr,
    time: SimTime,
    product: usize,
    slug: &str,
) -> LoginRow {
    // Four distinct browser sessions, fixed across products.
    let session_base = seed.derive("login-exp").value() | 1;
    let sid = |k: u64| (session_base.wrapping_add(k * 7919)).to_string();
    let without_login = fetch_price(
        world,
        domain,
        slug,
        addr,
        time,
        location,
        &[("sid", &sid(0))],
    );
    let users = [1u64, 2, 3].map(|k| {
        fetch_price(
            world,
            domain,
            slug,
            addr,
            time,
            location,
            &[("sid", &sid(k)), ("login", &k.to_string())],
        )
    });
    LoginRow {
        product,
        slug: slug.to_owned(),
        without_login,
        users,
    }
}

/// Runs the login experiment against `domain` (the paper used
/// amazon.com's Kindle store): `products` ebooks, one fixed location,
/// one fixed instant, four browser identities.
///
/// Each identity gets its own session (separate browsers), which is what
/// makes session-keyed jitter visible; the login cookie itself is the
/// controlled variable.
#[must_use]
pub fn login_experiment(
    world: &WebWorld,
    seed: Seed,
    domain: &str,
    location: &Location,
    addr: Ipv4Addr,
    time: SimTime,
    products: usize,
) -> LoginExperiment {
    let rows = login_slugs(world, domain, products)
        .iter()
        .enumerate()
        .map(|(i, slug)| login_row(world, seed, domain, location, addr, time, i, slug))
        .collect();
    LoginExperiment {
        domain: domain.to_owned(),
        rows,
    }
}

impl LoginExperiment {
    /// Fraction of products where at least two identities saw different
    /// prices (the paper: variation exists).
    #[must_use]
    pub fn variation_fraction(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let varied = self
            .rows
            .iter()
            .filter(|r| {
                let mut prices: Vec<_> = r
                    .users
                    .iter()
                    .copied()
                    .chain([r.without_login])
                    .flatten()
                    .map(|p| p.amount)
                    .collect();
                prices.sort();
                prices.dedup();
                prices.len() > 1
            })
            .count();
        varied as f64 / self.rows.len() as f64
    }

    /// Pearson correlation between "is logged in" (0/1) and price, over
    /// all (product, identity) pairs. The paper's claim: ~no correlation.
    #[must_use]
    pub fn login_price_correlation(&self) -> Option<f64> {
        let mut logged = Vec::new();
        let mut price = Vec::new();
        for r in &self.rows {
            // Normalize by the product's mean so expensive products don't
            // dominate the correlation.
            let all: Vec<f64> = r
                .users
                .iter()
                .copied()
                .chain([r.without_login])
                .flatten()
                .map(|p| p.amount.to_f64())
                .collect();
            if all.len() < 4 {
                continue;
            }
            let mean: f64 = all.iter().sum::<f64>() / all.len() as f64;
            if let Some(p) = r.without_login {
                logged.push(0.0);
                price.push(p.amount.to_f64() / mean);
            }
            for u in r.users.iter().flatten() {
                logged.push(1.0);
                price.push(u.amount.to_f64() / mean);
            }
        }
        pd_util::stats::pearson(&logged, &price)
    }
}

/// Parallel-safe entry point: the persona A/B pairs for one domain.
/// Returns `(differing_pairs, total_pairs)`; unknown domains yield
/// `(0, 0)`. Pure in all inputs, so domains may be checked in any order,
/// or concurrently, and the counts summed.
#[must_use]
pub fn persona_pairs(
    world: &WebWorld,
    domain: &str,
    location: &Location,
    addr: Ipv4Addr,
    time: SimTime,
    products: usize,
) -> (usize, usize) {
    let Some(server) = world.server_by_domain(domain) else {
        return (0, 0);
    };
    let slugs: Vec<String> = server
        .catalog()
        .iter()
        .take(products)
        .map(|p| p.slug.clone())
        .collect();
    let mut differing = 0;
    let mut total = 0;
    for slug in &slugs {
        let affluent = fetch_price(
            world,
            domain,
            slug,
            addr,
            time,
            location,
            &[("sid", "777"), ("ph", "affluent")],
        );
        let budget = fetch_price(
            world,
            domain,
            slug,
            addr,
            time,
            location,
            &[("sid", "777"), ("ph", "budget")],
        );
        if let (Some(a), Some(b)) = (affluent, budget) {
            total += 1;
            if a != b {
                differing += 1;
            }
        }
    }
    (differing, total)
}

/// Runs the persona experiment: for each domain, check `products`
/// products with an affluent and a budget persona from the same location,
/// same time, same session. Returns the differing-pair count (paper: 0).
#[must_use]
pub fn persona_experiment(
    world: &WebWorld,
    domains: &[&str],
    location: &Location,
    addr: Ipv4Addr,
    time: SimTime,
    products: usize,
) -> PersonaExperiment {
    let mut differing = 0;
    let mut total = 0;
    for domain in domains {
        let (d, t) = persona_pairs(world, domain, location, addr, time, products);
        differing += d;
        total += t;
    }
    PersonaExperiment {
        domains: domains.iter().map(|d| (*d).to_owned()).collect(),
        products_per_retailer: products,
        differing_pairs: differing,
        total_pairs: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_net::geo::Country;
    use pd_pricing::paper_retailers;
    use pd_web::WebWorld;

    fn world() -> (WebWorld, Ipv4Addr, Location) {
        let seed = Seed::new(1307);
        let mut world = WebWorld::build(seed, paper_retailers(seed), 160);
        let loc = Location::new(Country::UnitedStates, "Boston");
        let addr = world.allocate_client(&loc);
        (world, addr, loc)
    }

    #[test]
    fn login_experiment_shows_variation_without_correlation() {
        let (world, addr, loc) = world();
        let exp = login_experiment(
            &world,
            Seed::new(1307),
            "www.amazon.com",
            &loc,
            addr,
            SimTime::from_millis(40 * 24 * 3_600_000),
            40,
        );
        assert_eq!(exp.rows.len(), 40);
        // Fig. 10: prices DO vary across identities...
        assert!(
            exp.variation_fraction() > 0.5,
            "variation {}",
            exp.variation_fraction()
        );
        // ...but the variation is uncorrelated with login.
        let corr = exp.login_price_correlation().unwrap_or(0.0);
        assert!(corr.abs() < 0.25, "login correlation {corr}");
    }

    #[test]
    fn login_prices_are_in_ebook_range() {
        let (world, addr, loc) = world();
        let exp = login_experiment(
            &world,
            Seed::new(1307),
            "www.amazon.com",
            &loc,
            addr,
            SimTime::from_millis(40 * 24 * 3_600_000),
            40,
        );
        for row in &exp.rows {
            for p in row
                .users
                .iter()
                .copied()
                .chain([row.without_login])
                .flatten()
            {
                let usd = p.amount.to_f64();
                // Fig. 10's y-axis: roughly $4–$30 ebooks.
                assert!((2.0..40.0).contains(&usd), "{usd}");
            }
        }
    }

    #[test]
    fn persona_experiment_reproduces_null_result() {
        let (world, addr, loc) = world();
        let exp = persona_experiment(
            &world,
            &["www.amazon.com", "www.digitalrev.com", "www.hotels.com"],
            &loc,
            addr,
            SimTime::from_millis(40 * 24 * 3_600_000),
            20,
        );
        assert!(exp.total_pairs >= 50);
        assert_eq!(exp.differing_pairs, 0, "personas must not affect prices");
    }

    #[test]
    fn experiment_is_deterministic() {
        let (world, addr, loc) = world();
        let t = SimTime::from_millis(10 * 24 * 3_600_000);
        let a = login_experiment(&world, Seed::new(5), "www.amazon.com", &loc, addr, t, 10);
        let b = login_experiment(&world, Seed::new(5), "www.amazon.com", &loc, addr, t, 10);
        assert_eq!(a, b);
    }
}
