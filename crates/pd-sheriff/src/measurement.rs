//! Measurement records and the measurement store.
//!
//! One [`Measurement`] corresponds to one $heriff button click: the URI,
//! who clicked, when, what the user's own page showed, and what every
//! vantage point extracted. The store is the "database" of Sec. 3.1 step
//! (vi); the crawled dataset reuses the same record shape with a synthetic
//! user.

use pd_currency::Price;
use pd_net::clock::SimTime;
use pd_util::{RequestId, UserId, VantageId};
use serde::{Deserialize, Serialize};

/// What one vantage point saw for one check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceObservation {
    /// Which vantage point.
    pub vantage: VantageId,
    /// The extracted price, if extraction succeeded.
    pub price: Option<Price>,
    /// Extraction failure description (kept verbatim for debugging, as
    /// $heriff kept full pages).
    pub error: Option<String>,
    /// Raw text of the resolved node, when available.
    pub raw_text: Option<String>,
}

impl PriceObservation {
    /// A successful observation.
    #[must_use]
    pub fn ok(vantage: VantageId, price: Price, raw_text: String) -> Self {
        PriceObservation {
            vantage,
            price: Some(price),
            error: None,
            raw_text: Some(raw_text),
        }
    }

    /// A failed observation.
    #[must_use]
    pub fn failed(vantage: VantageId, error: String) -> Self {
        PriceObservation {
            vantage,
            price: None,
            error: Some(error),
            raw_text: None,
        }
    }
}

/// Ground-truth noise label attached by the *simulator* (never visible to
/// the cleaning algorithm — used to evaluate it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NoiseTruth {
    /// Clean check.
    Clean,
    /// The user bought a customized variant; the URI encodes the base
    /// product (Sec. 3.2's "product customization not encoded on the
    /// URI").
    Customization,
    /// The user highlighted the wrong element (promo banner).
    MisHighlight,
}

/// One $heriff check (or one crawler probe).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Dense request id.
    pub request: RequestId,
    /// Requesting user (crawler probes use a reserved synthetic user).
    pub user: UserId,
    /// Retailer domain.
    pub domain: String,
    /// Product slug (the URI path is `/product/<slug>`).
    pub product_slug: String,
    /// Synchronized check time.
    pub time: SimTime,
    /// What the user's own browser showed (the highlighted price).
    pub user_price: Option<Price>,
    /// Per-vantage observations.
    pub observations: Vec<PriceObservation>,
    /// Ground-truth noise label (simulator-only).
    pub noise_truth: NoiseTruth,
}

impl Measurement {
    /// Day index of the check.
    #[must_use]
    pub fn day(&self) -> usize {
        self.time.day_index() as usize
    }

    /// The successfully extracted prices.
    #[must_use]
    pub fn prices(&self) -> Vec<Price> {
        self.observations.iter().filter_map(|o| o.price).collect()
    }

    /// Number of failed observations.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.observations
            .iter()
            .filter(|o| o.error.is_some())
            .count()
    }
}

/// Append-only store of measurements.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeasurementStore {
    records: Vec<Measurement>,
}

impl MeasurementStore {
    /// Empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a measurement, assigning its dense request id.
    pub fn push(&mut self, mut m: Measurement) -> RequestId {
        let id = RequestId::new(u32::try_from(self.records.len()).expect("store overflow"));
        m.request = id;
        self.records.push(m);
        id
    }

    /// Appends every measurement of `other`, reassigning dense request
    /// ids in this store's sequence. Merging per-shard stores in a fixed
    /// shard order therefore yields the same store as pushing the same
    /// measurements sequentially (the scheduler's merge contract).
    pub fn extend(&mut self, other: MeasurementStore) {
        for m in other.records {
            self.push(m);
        }
    }

    /// Keeps only the measurements `keep` accepts, re-assigning dense
    /// request ids (the store's invariant: a record's request id is its
    /// position). Returns how many records were dropped. This is the
    /// allocation-free way to filter a store in place — the cleaning
    /// pass uses it instead of cloning every surviving measurement into
    /// a fresh store.
    pub fn retain(&mut self, mut keep: impl FnMut(&Measurement) -> bool) -> usize {
        let before = self.records.len();
        self.records.retain(|m| keep(m));
        for (i, m) in self.records.iter_mut().enumerate() {
            m.request = RequestId::new(u32::try_from(i).expect("store overflow"));
        }
        before - self.records.len()
    }

    /// All measurements in insertion order.
    #[must_use]
    pub fn records(&self) -> &[Measurement] {
        &self.records
    }

    /// Number of measurements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Measurements for one domain.
    pub fn by_domain<'a>(&'a self, domain: &'a str) -> impl Iterator<Item = &'a Measurement> {
        self.records.iter().filter(move |m| m.domain == domain)
    }

    /// Distinct domains in the store, in first-seen order.
    #[must_use]
    pub fn domains(&self) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for m in &self.records {
            if seen.insert(m.domain.as_str()) {
                out.push(m.domain.clone());
            }
        }
        out
    }

    /// Total number of successfully extracted prices across all
    /// measurements (the paper's "188K extracted prices" statistic).
    #[must_use]
    pub fn total_extracted_prices(&self) -> usize {
        self.records.iter().map(|m| m.prices().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_currency::Currency;
    use pd_util::Money;

    fn obs(v: u32, minor: i64) -> PriceObservation {
        PriceObservation::ok(
            VantageId::new(v),
            Price::new(Money::from_minor(minor), Currency::Usd),
            format!("${minor}"),
        )
    }

    fn meas(domain: &str, slug: &str, observations: Vec<PriceObservation>) -> Measurement {
        Measurement {
            request: RequestId::new(0),
            user: UserId::new(1),
            domain: domain.into(),
            product_slug: slug.into(),
            time: SimTime::from_millis(5 * 24 * 3_600_000),
            user_price: None,
            observations,
            noise_truth: NoiseTruth::Clean,
        }
    }

    #[test]
    fn push_assigns_dense_ids() {
        let mut store = MeasurementStore::new();
        let a = store.push(meas("a.example", "x", vec![]));
        let b = store.push(meas("b.example", "y", vec![]));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.records()[1].request, b);
    }

    #[test]
    fn day_and_prices() {
        let m = meas("a.example", "x", vec![obs(0, 100), obs(1, 200)]);
        assert_eq!(m.day(), 5);
        assert_eq!(m.prices().len(), 2);
        assert_eq!(m.failures(), 0);
    }

    #[test]
    fn failures_counted() {
        let mut m = meas("a.example", "x", vec![obs(0, 100)]);
        m.observations
            .push(PriceObservation::failed(VantageId::new(1), "404".into()));
        assert_eq!(m.failures(), 1);
        assert_eq!(m.prices().len(), 1);
    }

    #[test]
    fn extend_reassigns_dense_ids() {
        let mut a = MeasurementStore::new();
        a.push(meas("a.example", "x", vec![]));
        let mut b = MeasurementStore::new();
        b.push(meas("b.example", "y", vec![]));
        b.push(meas("b.example", "z", vec![]));
        a.extend(b);
        assert_eq!(a.len(), 3);
        for (i, m) in a.records().iter().enumerate() {
            assert_eq!(m.request.index(), i);
        }
        assert_eq!(a.records()[2].product_slug, "z");
    }

    #[test]
    fn retain_reindexes_request_ids() {
        let mut store = MeasurementStore::new();
        store.push(meas("a.example", "x", vec![]));
        store.push(meas("b.example", "y", vec![]));
        store.push(meas("a.example", "z", vec![]));
        let dropped = store.retain(|m| m.domain == "a.example");
        assert_eq!(dropped, 1);
        assert_eq!(store.len(), 2);
        for (i, m) in store.records().iter().enumerate() {
            assert_eq!(m.request.index(), i, "ids must stay dense positions");
        }
        assert_eq!(store.records()[1].product_slug, "z");
    }

    #[test]
    fn domain_queries() {
        let mut store = MeasurementStore::new();
        store.push(meas("a.example", "x", vec![obs(0, 1)]));
        store.push(meas("b.example", "y", vec![obs(0, 1), obs(1, 2)]));
        store.push(meas("a.example", "z", vec![]));
        assert_eq!(store.by_domain("a.example").count(), 2);
        assert_eq!(store.domains(), vec!["a.example", "b.example"]);
        assert_eq!(store.total_extracted_prices(), 3);
    }
}
