//! Dataset export: JSONL and CSV for external analysis.
//!
//! The paper's authors analyzed stored pages offline (in R, by the look
//! of the figures). Downstream users of this reproduction get the same
//! affordance: both stores export to line-oriented formats that load
//! directly into R/pandas. JSONL carries one *measurement* per line;
//! CSV flattens to one *observation* per row.

use crate::measurement::MeasurementStore;
use std::fmt::Write as _;

/// Serializes a store as JSON Lines (one measurement per line).
///
/// # Panics
///
/// Never: measurements contain no non-serializable values.
#[must_use]
pub fn to_jsonl(store: &MeasurementStore) -> String {
    let mut out = String::new();
    for m in store.records() {
        out.push_str(&serde_json::to_string(m).expect("measurement serializes"));
        out.push('\n');
    }
    out
}

/// CSV header produced by [`to_csv`].
pub const CSV_HEADER: &str =
    "request,user,domain,product_slug,day,time_ms,vantage,currency,amount_minor,raw_text,error";

/// Flattens a store to CSV: one row per (measurement, observation).
/// Fields containing commas or quotes are quoted per RFC 4180.
#[must_use]
pub fn to_csv(store: &MeasurementStore) -> String {
    let mut out = String::with_capacity(store.len() * 128);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for m in store.records() {
        for o in &m.observations {
            let (currency, amount) = match o.price {
                Some(p) => (p.currency.code(), p.amount.to_minor().to_string()),
                None => ("", String::new()),
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{}",
                m.request,
                m.user,
                csv_field(&m.domain),
                csv_field(&m.product_slug),
                m.day(),
                m.time.as_millis(),
                o.vantage,
                currency,
                amount,
                csv_field(o.raw_text.as_deref().unwrap_or("")),
                csv_field(o.error.as_deref().unwrap_or("")),
            );
        }
    }
    out
}

/// Quotes a CSV field when needed (RFC 4180).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::{Measurement, NoiseTruth, PriceObservation};
    use pd_currency::{Currency, Price};
    use pd_net::clock::SimTime;
    use pd_util::{Money, RequestId, UserId, VantageId};

    fn store() -> MeasurementStore {
        let mut s = MeasurementStore::new();
        s.push(Measurement {
            request: RequestId::new(0),
            user: UserId::new(3),
            domain: "shop.example".into(),
            product_slug: "camera-nova-0001".into(),
            time: SimTime::from_millis(5 * 24 * 3_600_000 + 42),
            user_price: None,
            observations: vec![
                PriceObservation::ok(
                    VantageId::new(0),
                    Price::new(Money::from_minor(1299), Currency::Usd),
                    "$12.99".into(),
                ),
                PriceObservation::failed(VantageId::new(1), "http 503".into()),
            ],
            noise_truth: NoiseTruth::Clean,
        });
        s
    }

    #[test]
    fn jsonl_one_line_per_measurement_and_parses_back() {
        let s = store();
        let jsonl = to_jsonl(&s);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1);
        let back: Measurement = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(back.domain, "shop.example");
        assert_eq!(back.observations.len(), 2);
    }

    #[test]
    fn csv_one_row_per_observation() {
        let csv = to_csv(&store());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 3); // header + 2 observations
        assert!(lines[1].contains("USD,1299"));
        assert!(lines[1].contains("$12.99"));
        assert!(lines[2].contains("http 503"));
        assert!(lines[2].contains(",,")); // empty currency/amount
                                          // Same column count in every row.
        let cols = lines[0].split(',').count();
        assert_eq!(lines[1].split(',').count(), cols);
    }

    #[test]
    fn csv_quotes_special_fields() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn empty_store_exports_header_only() {
        let s = MeasurementStore::new();
        assert_eq!(to_jsonl(&s), "");
        assert_eq!(to_csv(&s).lines().count(), 1);
    }
}
