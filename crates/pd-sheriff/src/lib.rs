//! The $heriff browser-extension model.
//!
//! $heriff (Sec. 3.1) lets a user highlight a price on any product page;
//! the exact URI is then sent to 14 vantage points around the world, each
//! downloads the full page, the highlighted price is re-extracted from
//! every copy, and the user sees the per-location prices. All pages and
//! prices land in a measurement database.
//!
//! * [`measurement`] — the measurement records and store,
//! * [`fanout`] — the synchronized 14-point check itself,
//! * [`crowd`] — the simulated user population (340 users, 18 countries,
//!   1 500 checks over Jan–May 2013) including the noise sources the
//!   paper had to clean (mis-highlights, product customization not
//!   encoded in the URI),
//! * [`cleaning`] — the noise-removal step of Sec. 3.2,
//! * [`export`] — JSONL/CSV dataset export for external analysis,
//! * [`personas`] — the Sec. 4.4 persona and login experiments (Fig. 10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cleaning;
pub mod crowd;
pub mod export;
pub mod fanout;
pub mod measurement;
pub mod personas;

pub use crowd::{Crowd, CrowdConfig};
pub use fanout::Sheriff;
pub use measurement::{Measurement, MeasurementStore, PriceObservation};
