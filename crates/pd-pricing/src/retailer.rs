//! Retailer specifications, calibrated to the paper's observations.
//!
//! [`paper_retailers`] builds the 30 named domains of the study — the 27
//! crowd-flagged domains of Fig. 1 plus the three that only appear in the
//! crawled set (Figs. 3/4: chainreactioncycles, homedepot, rightstart) —
//! each with a strategy pipeline chosen so the *measured* figures
//! reproduce the paper's shapes:
//!
//! * `www.digitalrev.com` — pure multiplicative (Fig. 6a's parallel lines),
//! * `www.energie.it` — multiplicative everywhere except one additive
//!   location whose effect fades by $100 (Fig. 6b),
//! * `www.homedepot.com` — city-level pricing inside the US with NY
//!   consistently above Chicago and a Boston/Lincoln mixed pair (Fig. 8a),
//! * `www.amazon.com` — constant across US cities, per-product tiers
//!   across countries (Fig. 8b), session jitter on ebooks (Fig. 10),
//! * `www.mauijim.com`, `www.tuscanyleather.it` — the only two domains
//!   where Finland is ever the cheap location (Fig. 9's exceptions),
//! * `www.bookdepository.co.uk`, `www.kobobooks.com` — cheap catalogs
//!   with price-dependent boosts providing Fig. 5's ×3 left edge.
//!
//! [`filler_retailers`] generates the long tail of the 600 crowd-visited
//! domains, overwhelmingly non-discriminating — which is precisely why
//! the crowd is needed to find the interesting subset.

use crate::category::Category;
use crate::strategy::{LocKey, StrategyComponent};
use pd_net::geo::Country;
use pd_util::{Money, Seed};
use serde::{Deserialize, Serialize};

/// Third-party presence on a retailer's pages (Sec. 4.4's scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ThirdParty {
    GoogleAnalytics,
    DoubleClick,
    Facebook,
    Pinterest,
    Twitter,
}

impl ThirdParty {
    /// All tracked third parties.
    pub const ALL: [ThirdParty; 5] = [
        ThirdParty::GoogleAnalytics,
        ThirdParty::DoubleClick,
        ThirdParty::Facebook,
        ThirdParty::Pinterest,
        ThirdParty::Twitter,
    ];

    /// The hostname the widget/script loads from.
    #[must_use]
    pub fn host(self) -> &'static str {
        match self {
            ThirdParty::GoogleAnalytics => "www.google-analytics.com",
            ThirdParty::DoubleClick => "ad.doubleclick.net",
            ThirdParty::Facebook => "connect.facebook.net",
            ThirdParty::Pinterest => "assets.pinterest.com",
            ThirdParty::Twitter => "platform.twitter.com",
        }
    }

    /// Paper-reported presence frequency on the studied retailers.
    #[must_use]
    pub fn paper_frequency(self) -> f64 {
        match self {
            ThirdParty::GoogleAnalytics => 0.95,
            ThirdParty::DoubleClick => 0.65,
            ThirdParty::Facebook => 0.80,
            ThirdParty::Pinterest => 0.45,
            ThirdParty::Twitter => 0.40,
        }
    }
}

/// Full specification of one simulated retailer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetailerSpec {
    /// Domain name (the paper's own labels are reused for the named 30).
    pub domain: String,
    /// Categories sold (round-robin across the catalog).
    pub categories: Vec<Category>,
    /// Catalog size.
    pub catalog_size: usize,
    /// Ground-truth pricing pipeline.
    pub components: Vec<StrategyComponent>,
    /// Whether the retailer is in the systematically crawled set (the 21
    /// of Figs. 3/4/9).
    pub crawled: bool,
    /// Relative crowd popularity (drives Fig. 1's request counts).
    pub popularity: f64,
    /// Which HTML template family `pd-web` renders (0..=4).
    pub template_style: u8,
    /// Third parties embedded on every page.
    pub third_parties: Vec<ThirdParty>,
    /// Whether product pages inline tax in the displayed price (rare;
    /// the paper verified most retailers do not).
    pub inlines_tax: bool,
}

impl RetailerSpec {
    /// True if the ground-truth pipeline can vary prices at all.
    #[must_use]
    pub fn is_discriminating(&self) -> bool {
        self.components
            .iter()
            .any(|c| !matches!(c, StrategyComponent::ProductGate { .. }))
    }
}

fn country(c: Country) -> LocKey {
    LocKey::Country(c)
}

fn city(c: Country, name: &str) -> LocKey {
    LocKey::City(c, name.to_owned())
}

fn mult(factors: &[(LocKey, f64)]) -> StrategyComponent {
    StrategyComponent::MultiplicativeByLocation {
        factors: factors.to_vec(),
    }
}

fn add(surcharges: &[(LocKey, i64)]) -> StrategyComponent {
    StrategyComponent::AdditiveByLocation {
        surcharges: surcharges
            .iter()
            .map(|(k, minor)| (k.clone(), Money::from_minor(*minor)))
            .collect(),
    }
}

fn mixed(ranges: &[(LocKey, f64, f64)]) -> StrategyComponent {
    StrategyComponent::PerProductMixed {
        ranges: ranges.to_vec(),
    }
}

/// Deterministic probabilistic third-party assignment (long-tail and
/// non-crawled domains).
fn third_parties_for(seed: Seed, domain: &str) -> Vec<ThirdParty> {
    let dseed = seed.derive("third-parties").derive(domain);
    ThirdParty::ALL
        .iter()
        .copied()
        .filter(|tp| {
            let u = (dseed.derive(tp.host()).value() >> 11) as f64 / (1u64 << 53) as f64;
            u < tp.paper_frequency()
        })
        .collect()
}

/// Re-assigns third parties over the crawled set with exact quotas, so
/// the Sec. 4.4 scan lands on the paper's frequencies: over 21 crawled
/// retailers, GA 20 (95%), DoubleClick 14 (67%), Facebook 17 (81%),
/// Pinterest 9 (43%), Twitter 8 (38%). Which retailers carry which tag
/// is still seed-derived (hash ranking), not hand-picked.
fn assign_crawled_third_party_quotas(seed: Seed, specs: &mut [RetailerSpec]) {
    let quotas: [(ThirdParty, usize); 5] = [
        (ThirdParty::GoogleAnalytics, 20),
        (ThirdParty::DoubleClick, 14),
        (ThirdParty::Facebook, 17),
        (ThirdParty::Pinterest, 9),
        (ThirdParty::Twitter, 8),
    ];
    let tseed = seed.derive("third-party-quota");
    let crawled_idx: Vec<usize> = specs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.crawled)
        .map(|(i, _)| i)
        .collect();
    for i in &crawled_idx {
        specs[*i].third_parties.clear();
    }
    for (tp, quota) in quotas {
        let mut ranked: Vec<usize> = crawled_idx.clone();
        ranked.sort_by_key(|&i| tseed.derive(tp.host()).derive(&specs[i].domain).value());
        for &i in ranked.iter().take(quota) {
            specs[i].third_parties.push(tp);
        }
    }
}

/// Builds the 30 named retailers of the study, calibrated per module
/// docs. Deterministic in `seed`.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn paper_retailers(seed: Seed) -> Vec<RetailerSpec> {
    use Category as C;
    use Country as K;
    let s = |domain: &str,
             categories: &[Category],
             size: usize,
             components: Vec<StrategyComponent>,
             crawled: bool,
             popularity: f64,
             style: u8| RetailerSpec {
        domain: domain.to_owned(),
        categories: categories.to_vec(),
        catalog_size: size,
        components,
        crawled,
        popularity,
        template_style: style,
        third_parties: third_parties_for(seed, domain),
        inlines_tax: false,
    };

    let specs = vec![
        // ---- Fig. 1 order (descending crowd request counts) ----
        s(
            "www.amazon.com",
            &[C::Ebooks, C::Books, C::Media, C::Electronics],
            400,
            vec![
                StrategyComponent::ProductGate { fraction: 0.85 },
                // Constant across US cities (country key), per-product
                // tiers across countries — Fig. 8(b).
                mixed(&[
                    (country(K::Brazil), 0.95, 1.25),
                    (country(K::Germany), 1.0, 1.45),
                    (country(K::Spain), 1.0, 1.4),
                    (country(K::Belgium), 1.0, 1.38),
                    (country(K::Finland), 1.05, 1.8),
                    (country(K::UnitedKingdom), 1.0, 1.3),
                ]),
                // Login-uncorrelated session jitter (Fig. 10 mechanism).
                StrategyComponent::SessionJitter { amplitude: 0.05 },
            ],
            true,
            11.0,
            0,
        ),
        s(
            "www.hotels.com",
            &[C::Hotels],
            260,
            vec![
                StrategyComponent::ProductGate { fraction: 0.8 },
                mult(&[
                    (country(K::Brazil), 0.98),
                    (country(K::Germany), 1.08),
                    (country(K::Spain), 1.07),
                    (country(K::Belgium), 1.08),
                    (country(K::Finland), 1.22),
                    (country(K::UnitedKingdom), 1.10),
                ]),
                StrategyComponent::TemporalDrift { amplitude: 0.03 },
            ],
            true,
            9.0,
            1,
        ),
        s(
            "store.steampowered.com",
            &[C::Games],
            300,
            vec![mult(&[
                (country(K::Brazil), 0.70),
                (country(K::Germany), 1.15),
                (country(K::Spain), 1.15),
                (country(K::Belgium), 1.15),
                (country(K::Finland), 1.15),
                (country(K::UnitedKingdom), 1.08),
            ])],
            false,
            8.0,
            2,
        ),
        s(
            "www.misssixty.com",
            &[C::Clothing],
            160,
            vec![mult(&[
                (country(K::UnitedStates), 1.14),
                (country(K::Brazil), 1.10),
                (country(K::Finland), 1.28),
                (country(K::UnitedKingdom), 1.10),
            ])],
            true,
            7.5,
            3,
        ),
        s(
            "www.energie.it",
            &[C::Clothing],
            180,
            vec![
                // Fig. 6(b): multiplicative everywhere, plus an additive
                // $6 term in one location (UK) that fades by ~$100.
                mult(&[
                    (country(K::Finland), 1.18),
                    (country(K::UnitedKingdom), 1.05),
                    (country(K::Germany), 1.08),
                ]),
                add(&[(country(K::UnitedKingdom), 600)]),
            ],
            true,
            7.0,
            4,
        ),
        s(
            "www.sears.com",
            &[C::DepartmentStore],
            240,
            vec![StrategyComponent::AbTest {
                fraction: 0.3,
                factor: 1.15,
            }],
            false,
            6.5,
            0,
        ),
        s(
            "eu.abercrombie.com",
            &[C::Clothing],
            150,
            vec![mult(&[
                (country(K::Finland), 1.2),
                (country(K::Germany), 1.1),
                (country(K::Spain), 1.08),
            ])],
            false,
            6.2,
            1,
        ),
        s(
            "www.tuscanyleather.it",
            &[C::Leather],
            130,
            vec![
                // Fig. 9 exception: Finland is *cheap* here.
                mult(&[
                    (country(K::Finland), 0.95),
                    (country(K::UnitedStates), 1.15),
                    (country(K::UnitedKingdom), 1.12),
                    (country(K::Brazil), 1.05),
                    (country(K::Germany), 1.03),
                ]),
            ],
            true,
            6.0,
            2,
        ),
        s(
            "www.guess.eu",
            &[C::Clothing],
            170,
            vec![
                StrategyComponent::ProductGate { fraction: 0.95 },
                mult(&[
                    (country(K::Finland), 1.25),
                    (country(K::UnitedStates), 1.10),
                    (country(K::UnitedKingdom), 1.08),
                ]),
            ],
            true,
            5.8,
            3,
        ),
        s(
            "www.overstock.com",
            &[C::DepartmentStore],
            260,
            vec![StrategyComponent::AbTest {
                fraction: 0.25,
                factor: 1.12,
            }],
            false,
            5.6,
            4,
        ),
        s(
            "www.booking.com",
            &[C::Travel],
            220,
            vec![
                mult(&[
                    (country(K::Finland), 1.15),
                    (country(K::Germany), 1.06),
                    (country(K::UnitedKingdom), 1.07),
                ]),
                StrategyComponent::TemporalDrift { amplitude: 0.05 },
            ],
            false,
            5.4,
            0,
        ),
        s(
            "www.net-a-porter.com",
            &[C::Clothing],
            190,
            vec![mixed(&[
                (country(K::Finland), 1.10, 1.95),
                (country(K::Germany), 1.05, 1.4),
                (country(K::UnitedKingdom), 1.0, 1.3),
            ])],
            true,
            5.2,
            1,
        ),
        s(
            "www.autotrader.com",
            &[C::Automobiles],
            140,
            vec![
                StrategyComponent::ProductGate { fraction: 0.65 },
                // Expensive goods: small factors (Fig. 5's right edge).
                mult(&[
                    (city(K::UnitedStates, "New York"), 1.06),
                    (city(K::UnitedStates, "Los Angeles"), 1.04),
                    (city(K::UnitedStates, "Chicago"), 1.0),
                    (country(K::Finland), 1.08),
                ]),
            ],
            true,
            5.0,
            2,
        ),
        s(
            "shop.replay.it",
            &[C::Clothing],
            140,
            vec![mult(&[
                (country(K::Finland), 1.2),
                (country(K::UnitedStates), 1.1),
            ])],
            false,
            4.8,
            3,
        ),
        s(
            "www.mauijim.com",
            &[C::Eyewear],
            120,
            vec![
                // Fig. 9's other exception: Finland cheapest.
                mult(&[
                    (country(K::Finland), 0.92),
                    (country(K::Germany), 1.1),
                    (country(K::Spain), 1.1),
                    (country(K::UnitedKingdom), 1.12),
                    (country(K::Brazil), 1.08),
                ]),
            ],
            true,
            4.6,
            4,
        ),
        s(
            "store.refrigiwear.it",
            &[C::Clothing],
            110,
            vec![mult(&[
                (country(K::Finland), 1.3),
                (country(K::UnitedStates), 1.15),
                (country(K::Germany), 1.12),
                (country(K::UnitedKingdom), 1.1),
            ])],
            true,
            4.4,
            0,
        ),
        s(
            "store.murphynye.com",
            &[C::Clothing],
            120,
            vec![
                StrategyComponent::ProductGate { fraction: 0.9 },
                mult(&[
                    (country(K::Finland), 1.18),
                    (country(K::UnitedStates), 1.08),
                ]),
            ],
            true,
            4.2,
            1,
        ),
        s(
            "www.elnaturalista.com",
            &[C::Shoes],
            130,
            vec![mixed(&[
                (country(K::Finland), 1.15, 1.8),
                (country(K::UnitedStates), 1.0, 1.35),
                (country(K::UnitedKingdom), 1.0, 1.3),
            ])],
            true,
            4.0,
            2,
        ),
        s(
            "www.jeansshop.com",
            &[C::Clothing],
            130,
            vec![mult(&[
                (country(K::Finland), 1.15),
                (country(K::UnitedKingdom), 1.07),
            ])],
            false,
            3.8,
            3,
        ),
        s(
            "www.kobobooks.com",
            &[C::Ebooks],
            280,
            vec![
                StrategyComponent::ProductGate { fraction: 0.8 },
                StrategyComponent::CheapBoost {
                    keys: vec![country(K::Finland), country(K::Germany)],
                    factor_at_low: 2.2,
                    factor_at_high: 1.08,
                    lo_usd: 4.0,
                    hi_usd: 30.0,
                },
            ],
            true,
            3.6,
            4,
        ),
        s(
            "www.luisaviaroma.com",
            &[C::Clothing],
            150,
            vec![
                StrategyComponent::ProductGate { fraction: 0.92 },
                mult(&[
                    (country(K::Finland), 1.2),
                    (country(K::UnitedStates), 1.12),
                    (country(K::Brazil), 1.06),
                ]),
            ],
            true,
            3.4,
            0,
        ),
        s(
            "store.killah.com",
            &[C::Clothing],
            140,
            vec![
                // Fig. 8(c): per-product tiers across six countries.
                mixed(&[
                    (country(K::Brazil), 0.95, 1.3),
                    (country(K::Finland), 1.05, 1.45),
                    (country(K::Germany), 1.0, 1.35),
                    (country(K::Spain), 0.98, 1.3),
                    (country(K::UnitedKingdom), 1.0, 1.3),
                ]),
            ],
            true,
            3.2,
            1,
        ),
        s(
            "www.digitalrev.com",
            &[C::Photography],
            220,
            vec![
                // Fig. 6(a): pure multiplicative — parallel lines.
                mult(&[
                    (country(K::Finland), 1.26),
                    (country(K::UnitedKingdom), 1.10),
                    (country(K::Germany), 1.12),
                    (country(K::Spain), 1.11),
                    (country(K::Belgium), 1.12),
                    (country(K::Brazil), 1.04),
                ]),
            ],
            true,
            3.0,
            2,
        ),
        s(
            "www.scitec-nutrition.es",
            &[C::Nutrition],
            160,
            vec![
                mult(&[
                    (country(K::Finland), 1.35),
                    (country(K::Germany), 1.15),
                    (country(K::UnitedKingdom), 1.12),
                ]),
                StrategyComponent::CheapBoost {
                    keys: vec![country(K::Finland)],
                    factor_at_low: 1.4,
                    factor_at_high: 1.0,
                    lo_usd: 10.0,
                    hi_usd: 90.0,
                },
            ],
            true,
            2.8,
            3,
        ),
        s(
            "www.staples.com",
            &[C::OfficeSupplies],
            300,
            vec![StrategyComponent::AbTest {
                fraction: 0.2,
                factor: 1.1,
            }],
            false,
            2.6,
            4,
        ),
        s(
            "www.zavvi.com",
            &[C::Media],
            240,
            vec![mult(&[
                (country(K::UnitedKingdom), 0.92),
                (country(K::Finland), 1.15),
                (country(K::Germany), 1.08),
            ])],
            false,
            2.4,
            0,
        ),
        s(
            "www.bookdepository.co.uk",
            &[C::Books],
            320,
            vec![
                // Fig. 5's ×3 left edge comes from here: cheap books,
                // strongly boosted in two locations.
                StrategyComponent::CheapBoost {
                    keys: vec![country(K::Finland), country(K::Belgium)],
                    factor_at_low: 3.0,
                    factor_at_high: 1.12,
                    lo_usd: 8.0,
                    hi_usd: 60.0,
                },
                mult(&[(country(K::Germany), 1.08)]),
            ],
            true,
            2.2,
            1,
        ),
        // ---- crawled-only domains (Figs. 3/4, not in Fig. 1) ----
        s(
            "www.chainreactioncycles.com",
            &[C::Cycling],
            210,
            vec![mult(&[
                (country(K::Finland), 1.35),
                (country(K::UnitedKingdom), 0.97),
                (country(K::Germany), 1.18),
                (country(K::UnitedStates), 1.1),
            ])],
            true,
            1.6,
            2,
        ),
        s(
            "www.homedepot.com",
            &[C::HomeImprovement],
            350,
            vec![
                StrategyComponent::ProductGate { fraction: 0.7 },
                // Fig. 8(a): city-level US pricing. NY consistently above
                // Chicago; LA == Boston; Albany mild.
                mult(&[
                    (city(K::UnitedStates, "New York"), 1.12),
                    (city(K::UnitedStates, "Chicago"), 1.0),
                    (city(K::UnitedStates, "Los Angeles"), 1.05),
                    (city(K::UnitedStates, "Boston"), 1.05),
                    (city(K::UnitedStates, "Albany"), 1.04),
                    // Fig. 9: Finland must not tie for cheapest here.
                    (country(K::Finland), 1.06),
                ]),
                // Boston/Lincoln "mixed" pair: Lincoln per-product.
                mixed(&[(city(K::UnitedStates, "Lincoln"), 0.98, 1.12)]),
            ],
            true,
            1.4,
            3,
        ),
        s(
            "www.rightstart.com",
            &[C::BabyGoods],
            180,
            vec![
                StrategyComponent::ProductGate { fraction: 0.45 },
                mult(&[
                    (country(K::Finland), 1.12),
                    (city(K::UnitedStates, "New York"), 1.06),
                ]),
            ],
            true,
            1.2,
            4,
        ),
    ];
    let mut specs = specs;
    assign_crawled_third_party_quotas(seed, &mut specs);
    specs
}

/// Generates the long tail of crowd-visited domains: `n` additional
/// retailers, ~95 % of them non-discriminating, the rest with a light
/// A/B component. Deterministic in `seed`.
#[must_use]
pub fn filler_retailers(seed: Seed, n: usize) -> Vec<RetailerSpec> {
    let seed = seed.derive("filler-retailers");
    (0..n)
        .map(|i| {
            let rseed = seed.derive_idx(i as u64);
            let u = (rseed.value() >> 11) as f64 / (1u64 << 53) as f64;
            let category =
                Category::ALL[rseed.derive("cat").value() as usize % Category::ALL.len()];
            let components = if u < 0.05 {
                vec![StrategyComponent::AbTest {
                    fraction: 0.2,
                    factor: 1.08,
                }]
            } else {
                Vec::new()
            };
            RetailerSpec {
                domain: format!("www.shop-{i:03}.example"),
                categories: vec![category],
                catalog_size: 20 + (rseed.derive("size").value() % 40) as usize,
                components,
                crawled: false,
                popularity: 0.3 + u, // uniformly unremarkable
                template_style: (rseed.derive("style").value() % 5) as u8,
                third_parties: third_parties_for(seed, &format!("www.shop-{i:03}.example")),
                inlines_tax: i % 97 == 0, // the rare tax-inliner confound
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Vec<RetailerSpec> {
        paper_retailers(Seed::new(1307))
    }

    #[test]
    fn thirty_named_retailers() {
        assert_eq!(world().len(), 30);
        let domains: std::collections::HashSet<_> =
            world().iter().map(|r| r.domain.clone()).collect();
        assert_eq!(domains.len(), 30);
    }

    #[test]
    fn twenty_one_crawled() {
        assert_eq!(world().iter().filter(|r| r.crawled).count(), 21);
    }

    #[test]
    fn crawled_set_matches_fig3_list() {
        let expected = [
            "store.killah.com",
            "store.murphynye.com",
            "store.refrigiwear.it",
            "www.amazon.com",
            "www.autotrader.com",
            "www.bookdepository.co.uk",
            "www.chainreactioncycles.com",
            "www.digitalrev.com",
            "www.elnaturalista.com",
            "www.energie.it",
            "www.guess.eu",
            "www.homedepot.com",
            "www.hotels.com",
            "www.kobobooks.com",
            "www.luisaviaroma.com",
            "www.mauijim.com",
            "www.misssixty.com",
            "www.net-a-porter.com",
            "www.rightstart.com",
            "www.scitec-nutrition.es",
            "www.tuscanyleather.it",
        ];
        let mut crawled: Vec<_> = world()
            .iter()
            .filter(|r| r.crawled)
            .map(|r| r.domain.clone())
            .collect();
        crawled.sort();
        assert_eq!(crawled, expected);
    }

    #[test]
    fn all_named_retailers_discriminate() {
        // Every Fig. 1 domain showed variation in the paper.
        for r in world() {
            assert!(r.is_discriminating(), "{} has no strategy", r.domain);
        }
    }

    #[test]
    fn popularity_strictly_orders_fig1_prefix() {
        let w = world();
        // Fig. 1 order is descending by crowd request count; our
        // popularity encodes it for the 27 crowd-listed domains.
        let crowd: Vec<_> = w.iter().take(27).collect();
        assert!(crowd.windows(2).all(|p| p[0].popularity > p[1].popularity));
        assert_eq!(crowd[0].domain, "www.amazon.com");
        assert_eq!(crowd[26].domain, "www.bookdepository.co.uk");
    }

    #[test]
    fn finland_exceptions_are_mauijim_and_tuscanyleather() {
        // The only retailers where Finland's factor < 1.
        for r in world() {
            let finland_cheap = r.components.iter().any(|c| {
                if let StrategyComponent::MultiplicativeByLocation { factors } = c {
                    factors
                        .iter()
                        .any(|(k, f)| matches!(k, LocKey::Country(Country::Finland)) && *f < 1.0)
                } else {
                    false
                }
            });
            let expected = r.domain == "www.mauijim.com" || r.domain == "www.tuscanyleather.it";
            assert_eq!(finland_cheap, expected, "{}", r.domain);
        }
    }

    #[test]
    fn third_party_frequencies_near_paper_values() {
        // Over the 21 crawled retailers (the set Sec. 4.4 scanned).
        let w = world();
        let crawled: Vec<_> = w.iter().filter(|r| r.crawled).collect();
        let count = |tp: ThirdParty| {
            crawled
                .iter()
                .filter(|r| r.third_parties.contains(&tp))
                .count() as f64
                / crawled.len() as f64
        };
        for tp in ThirdParty::ALL {
            let freq = count(tp);
            let target = tp.paper_frequency();
            assert!(
                (freq - target).abs() <= 0.25,
                "{tp:?}: {freq:.2} vs paper {target:.2}"
            );
        }
        // Ordering must match the paper: GA > FB > DC > PIN ≈ TW.
        assert!(count(ThirdParty::GoogleAnalytics) >= count(ThirdParty::DoubleClick));
        assert!(count(ThirdParty::Facebook) >= count(ThirdParty::Pinterest));
    }

    #[test]
    fn catalog_sizes_support_crawl_sampling() {
        // The crawler samples up to 100 products per crawled retailer.
        for r in world().iter().filter(|r| r.crawled) {
            assert!(r.catalog_size >= 100, "{}: {}", r.domain, r.catalog_size);
        }
    }

    #[test]
    fn filler_retailers_mostly_uniform() {
        let fillers = filler_retailers(Seed::new(1307), 570);
        assert_eq!(fillers.len(), 570);
        let discriminating = fillers.iter().filter(|r| r.is_discriminating()).count();
        let frac = discriminating as f64 / 570.0;
        assert!(frac < 0.12, "too many discriminating fillers: {frac}");
        assert!(discriminating > 0, "some fillers must discriminate");
        // Unique domains.
        let set: std::collections::HashSet<_> = fillers.iter().map(|r| r.domain.clone()).collect();
        assert_eq!(set.len(), 570);
    }

    #[test]
    fn filler_generation_is_deterministic() {
        let a = filler_retailers(Seed::new(9), 50);
        let b = filler_retailers(Seed::new(9), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn rare_tax_inliner_exists_in_long_tail() {
        let fillers = filler_retailers(Seed::new(1307), 570);
        let taxed = fillers.iter().filter(|r| r.inlines_tax).count();
        assert!((1..=10).contains(&taxed), "taxed fillers: {taxed}");
        // Named retailers never inline tax (paper verified).
        assert!(world().iter().all(|r| !r.inlines_tax));
    }

    #[test]
    fn template_styles_cover_all_families() {
        let styles: std::collections::HashSet<_> =
            world().iter().map(|r| r.template_style).collect();
        assert_eq!(styles.len(), 5, "all 5 template families used");
    }
}
