//! Product catalogs and ground-truth pricing strategies.
//!
//! The paper observes price-variation *behaviours* from the outside:
//! multiplicative parallel lines (Fig. 6a), additive terms that fade with
//! price (Fig. 6b), city-level differences (Fig. 8a), country-level tiers
//! with a constant-US interior (Fig. 8b), login-uncorrelated jitter on
//! ebooks (Fig. 10). This crate implements those behaviours as explicit,
//! composable strategies so the measurement pipeline can *rediscover*
//! them — and so tests can check the detector against known ground truth,
//! which the original authors could never do.
//!
//! * [`category`] — product categories (the paper's: books, clothing,
//!   hotels, cars, photography, home improvement, …),
//! * [`product`] — seeded catalog generation with log-uniform charm
//!   prices in the $10–$10 000 range of Fig. 5,
//! * [`quote`] — the quote context: who is asking, from where, when,
//!   logged in or not,
//! * [`strategy`] — the pricing-strategy components and their engine,
//! * [`retailer`] — retailer specifications, including
//!   [`retailer::paper_retailers`], the calibrated world of the paper's
//!   27 crowd-flagged domains (21 of them crawled).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod product;
pub mod quote;
pub mod retailer;
pub mod strategy;

pub use category::Category;
pub use product::{Catalog, Product};
pub use quote::{LoginState, Persona, QuoteContext};
pub use retailer::{filler_retailers, paper_retailers, RetailerSpec};
pub use strategy::{PricingEngine, StrategyComponent};
