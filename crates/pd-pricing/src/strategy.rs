//! Pricing strategies — the ground truth the detector must rediscover.
//!
//! Each retailer's engine is a pipeline of [`StrategyComponent`]s applied
//! to a product's USD base price. The components are exactly the
//! behaviours the paper infers from the outside:
//!
//! | Component | Paper evidence |
//! |---|---|
//! | [`StrategyComponent::MultiplicativeByLocation`] | Fig. 6(a): parallel ratio lines per location |
//! | [`StrategyComponent::AdditiveByLocation`] | Fig. 6(b): additive term fading as price grows |
//! | [`StrategyComponent::PerProductMixed`] | Fig. 8(a): "one location more expensive for some products but cheaper for others" |
//! | [`StrategyComponent::CheapBoost`] | Fig. 5: up to ×3 on cheap products, <×1.5 above $2K |
//! | [`StrategyComponent::SessionJitter`] | Fig. 10: Kindle price spread uncorrelated with login |
//! | [`StrategyComponent::AbTest`] | Sec. 2.2's noise source eliminated by repeats |
//! | [`StrategyComponent::TemporalDrift`] | day-to-day price movement; defeated by synchronization |
//! | [`StrategyComponent::ProductGate`] | Fig. 3: retailers with <100 % extent |
//!
//! All stochastic choices are keyed hashes (seed × product × location ×
//! session), never shared-RNG draws, so quotes are order-independent:
//! asking the same question twice — or from 14 vantage points in any
//! order — gives identical answers, exactly like a deterministic pricing
//! backend.

use crate::product::Product;
use crate::quote::QuoteContext;
use pd_net::geo::{Country, Location};
use pd_util::{Money, Seed};
use serde::{Deserialize, Serialize};

/// Location selector for a strategy entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocKey {
    /// Matches any city in the country (how geo-IP-level pricing works).
    Country(Country),
    /// Matches one city exactly (CDN/city-level pricing, Fig. 8a).
    City(Country, String),
}

impl LocKey {
    /// Whether this key matches a concrete location. City keys are
    /// checked before country keys by the engine.
    #[must_use]
    pub fn matches(&self, loc: &Location) -> bool {
        match self {
            LocKey::Country(c) => *c == loc.country,
            LocKey::City(c, city) => *c == loc.country && *city == loc.city.name,
        }
    }

    fn specificity(&self) -> u8 {
        match self {
            LocKey::City(..) => 2,
            LocKey::Country(_) => 1,
        }
    }
}

/// One component of a pricing pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StrategyComponent {
    /// Per-location multiplicative factor (unlisted locations ⇒ 1.0).
    MultiplicativeByLocation {
        /// `(key, factor)` pairs; most specific matching key wins.
        factors: Vec<(LocKey, f64)>,
    },
    /// Per-location additive USD surcharge (unlisted ⇒ zero).
    AdditiveByLocation {
        /// `(key, surcharge)` pairs; most specific matching key wins.
        surcharges: Vec<(LocKey, Money)>,
    },
    /// Per-location factor drawn per *product* from `[lo, hi]` — two
    /// locations with overlapping ranges produce the paper's "mixed"
    /// pairwise clouds (cheaper for some products, dearer for others).
    PerProductMixed {
        /// `(key, lo_factor, hi_factor)` triples.
        ranges: Vec<(LocKey, f64, f64)>,
    },
    /// Price-dependent multiplicative boost for matching locations:
    /// `factor_at_low` for products at/below `lo_usd`, decaying
    /// log-linearly to `factor_at_high` at/above `hi_usd`. Produces the
    /// declining envelope of Fig. 5.
    CheapBoost {
        /// Locations that see boosted prices.
        keys: Vec<LocKey>,
        /// Factor applied at/below `lo_usd`.
        factor_at_low: f64,
        /// Factor applied at/above `hi_usd`.
        factor_at_high: f64,
        /// Price where the boost is maximal.
        lo_usd: f64,
        /// Price where the boost bottoms out.
        hi_usd: f64,
    },
    /// Per-(product, session) multiplicative jitter of ±`amplitude`,
    /// independent of login state (Fig. 10's mechanism).
    SessionJitter {
        /// Half-width of the jitter (0.1 ⇒ ±10 %).
        amplitude: f64,
    },
    /// Classic A/B price test: a `fraction` of session buckets see the
    /// price scaled by `factor`.
    AbTest {
        /// Fraction of sessions in the treatment bucket.
        fraction: f64,
        /// Factor applied to the treatment bucket.
        factor: f64,
    },
    /// Deterministic daily drift: ±`amplitude` multiplicative wobble
    /// keyed by (product, day).
    TemporalDrift {
        /// Half-width of the wobble.
        amplitude: f64,
    },
    /// Only a `fraction` of products (keyed by product id) are subject to
    /// the *following* components; the rest are priced uniformly.
    ProductGate {
        /// Fraction of products that are discriminated.
        fraction: f64,
    },
}

/// A retailer's pricing engine: seed + component pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PricingEngine {
    seed: Seed,
    components: Vec<StrategyComponent>,
}

impl PricingEngine {
    /// Builds an engine. `seed` should be the retailer's own seed so two
    /// retailers with identical components still price independently.
    #[must_use]
    pub fn new(seed: Seed, components: Vec<StrategyComponent>) -> Self {
        PricingEngine {
            seed: seed.derive("pricing-engine"),
            components,
        }
    }

    /// A uniform (non-discriminating) engine.
    #[must_use]
    pub fn uniform(seed: Seed) -> Self {
        Self::new(seed, Vec::new())
    }

    /// The components of this engine (ground-truth introspection for
    /// tests and the ablation benches).
    #[must_use]
    pub fn components(&self) -> &[StrategyComponent] {
        &self.components
    }

    /// True if any component can produce location/user/time variation.
    #[must_use]
    pub fn is_discriminating(&self) -> bool {
        self.components
            .iter()
            .any(|c| !matches!(c, StrategyComponent::ProductGate { .. }))
    }

    /// Quotes the USD price of `product` for `ctx`.
    ///
    /// Deterministic: identical `(product, ctx)` always produce identical
    /// quotes, regardless of call order.
    #[must_use]
    pub fn quote(&self, product: &Product, ctx: &QuoteContext) -> Money {
        let mut value = product.base_price.to_f64();
        let mut gated_off = false;
        for component in &self.components {
            if gated_off {
                break;
            }
            match component {
                StrategyComponent::ProductGate { fraction } => {
                    let u = self.unit("gate", product.id.index() as u64, 0);
                    if u >= *fraction {
                        gated_off = true;
                    }
                }
                StrategyComponent::MultiplicativeByLocation { factors } => {
                    if let Some(f) = best_match(factors, &ctx.location) {
                        value *= f;
                    }
                }
                StrategyComponent::AdditiveByLocation { surcharges } => {
                    if let Some(s) = best_match(surcharges, &ctx.location) {
                        value += s.to_f64();
                    }
                }
                StrategyComponent::PerProductMixed { ranges } => {
                    if let Some((key, lo, hi)) = best_match_triple(ranges, &ctx.location) {
                        // Keyed by the *matched* selector, not the
                        // concrete location: a country-keyed range gives
                        // one factor for the whole country (amazon's
                        // "constant across US" behaviour).
                        let u = self.unit("mixed", product.id.index() as u64, key_hash(key));
                        value *= lo + (hi - lo) * u;
                    }
                }
                StrategyComponent::CheapBoost {
                    keys,
                    factor_at_low,
                    factor_at_high,
                    lo_usd,
                    hi_usd,
                } => {
                    if keys.iter().any(|k| k.matches(&ctx.location)) {
                        let p = product.base_price.to_f64().max(0.01);
                        let w =
                            ((hi_usd.ln() - p.ln()) / (hi_usd.ln() - lo_usd.ln())).clamp(0.0, 1.0);
                        value *= factor_at_high + (factor_at_low - factor_at_high) * w;
                    }
                }
                StrategyComponent::SessionJitter { amplitude } => {
                    let u = self.unit("jitter", product.id.index() as u64, ctx.session_token);
                    value *= 1.0 + amplitude * (2.0 * u - 1.0);
                }
                StrategyComponent::AbTest { fraction, factor } => {
                    let u = self.unit("ab", product.id.index() as u64, ctx.session_token);
                    if u < *fraction {
                        value *= factor;
                    }
                }
                StrategyComponent::TemporalDrift { amplitude } => {
                    let u = self.unit("drift", product.id.index() as u64, ctx.day as u64);
                    value *= 1.0 + amplitude * (2.0 * u - 1.0);
                }
            }
        }
        Money::from_f64(value.max(0.01))
    }

    /// Keyed uniform hash in [0,1): label × a × b, independent of call
    /// order.
    fn unit(&self, label: &str, a: u64, b: u64) -> f64 {
        let s = self
            .seed
            .derive(label)
            .derive_idx(a)
            .derive_idx(b.wrapping_add(0x9e37_79b9));
        (s.value() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn key_hash(key: &LocKey) -> u64 {
    match key {
        LocKey::Country(c) => c.index() as u64,
        LocKey::City(c, city) => {
            let mut h: u64 = 0x1000 + c.index() as u64;
            for b in city.as_bytes() {
                h = h.wrapping_mul(0x100_0000_01b3) ^ u64::from(*b);
            }
            h
        }
    }
}

/// Finds the most specific matching value in a `(LocKey, V)` table.
fn best_match<V: Copy>(table: &[(LocKey, V)], loc: &Location) -> Option<V> {
    table
        .iter()
        .filter(|(k, _)| k.matches(loc))
        .max_by_key(|(k, _)| k.specificity())
        .map(|(_, v)| *v)
}

fn best_match_triple<'a>(
    table: &'a [(LocKey, f64, f64)],
    loc: &Location,
) -> Option<(&'a LocKey, f64, f64)> {
    table
        .iter()
        .filter(|(k, _, _)| k.matches(loc))
        .max_by_key(|(k, _, _)| k.specificity())
        .map(|(k, lo, hi)| (k, *lo, *hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::Category;
    use crate::product::Catalog;
    use crate::quote::LoginState;
    use pd_net::clock::SimTime;
    use proptest::prelude::*;

    fn catalog() -> Catalog {
        Catalog::generate(Seed::new(42), &[Category::Photography], 60)
    }

    fn ctx_at(country: Country, city: &str) -> QuoteContext {
        QuoteContext::anonymous(Location::new(country, city), SimTime::EPOCH)
    }

    #[test]
    fn uniform_engine_never_varies() {
        let cat = catalog();
        let e = PricingEngine::uniform(Seed::new(1));
        assert!(!e.is_discriminating());
        for p in cat.iter() {
            let us = e.quote(p, &ctx_at(Country::UnitedStates, "Boston"));
            let fi = e.quote(p, &ctx_at(Country::Finland, "Tampere"));
            assert_eq!(us, fi);
            assert_eq!(us, p.base_price);
        }
    }

    #[test]
    fn multiplicative_produces_parallel_lines() {
        // Fig. 6(a): the ratio to the cheapest location is constant
        // across the whole price range.
        let cat = catalog();
        let e = PricingEngine::new(
            Seed::new(2),
            vec![StrategyComponent::MultiplicativeByLocation {
                factors: vec![
                    (LocKey::Country(Country::Finland), 1.25),
                    (LocKey::Country(Country::UnitedKingdom), 1.10),
                ],
            }],
        );
        for p in cat.iter() {
            let base = e.quote(p, &ctx_at(Country::UnitedStates, "New York"));
            let fi = e.quote(p, &ctx_at(Country::Finland, "Tampere"));
            let uk = e.quote(p, &ctx_at(Country::UnitedKingdom, "London"));
            let rf = fi.ratio_to(base).unwrap();
            let ru = uk.ratio_to(base).unwrap();
            assert!((rf - 1.25).abs() < 0.01, "{rf}");
            assert!((ru - 1.10).abs() < 0.01, "{ru}");
        }
    }

    #[test]
    fn additive_effect_fades_with_price() {
        // Fig. 6(b): additive surcharge matters for cheap products,
        // vanishes for expensive ones.
        let e = PricingEngine::new(
            Seed::new(3),
            vec![StrategyComponent::AdditiveByLocation {
                surcharges: vec![(LocKey::Country(Country::Germany), Money::from_minor(800))],
            }],
        );
        let cat = Catalog::generate(Seed::new(5), &[Category::Clothing], 120);
        let mut cheap_ratio: f64 = 0.0;
        let mut dear_ratio = f64::MAX;
        for p in cat.iter() {
            let base = e.quote(p, &ctx_at(Country::UnitedStates, "Boston"));
            let de = e.quote(p, &ctx_at(Country::Germany, "Berlin"));
            let r = de.ratio_to(base).unwrap();
            if p.base_price.to_f64() < 25.0 {
                cheap_ratio = cheap_ratio.max(r);
            }
            if p.base_price.to_f64() > 200.0 {
                dear_ratio = dear_ratio.min(r);
            }
        }
        assert!(cheap_ratio > 1.3, "cheap ratio {cheap_ratio}");
        assert!(dear_ratio < 1.05, "dear ratio {dear_ratio}");
    }

    #[test]
    fn city_key_overrides_country_key() {
        let e = PricingEngine::new(
            Seed::new(4),
            vec![StrategyComponent::MultiplicativeByLocation {
                factors: vec![
                    (LocKey::Country(Country::UnitedStates), 1.0),
                    (LocKey::City(Country::UnitedStates, "New York".into()), 1.15),
                ],
            }],
        );
        let cat = catalog();
        let p = cat.product(pd_util::ProductId::new(0));
        let ny = e.quote(p, &ctx_at(Country::UnitedStates, "New York"));
        let chi = e.quote(p, &ctx_at(Country::UnitedStates, "Chicago"));
        let r = ny.ratio_to(chi).unwrap();
        assert!((r - 1.15).abs() < 0.01);
    }

    #[test]
    fn per_product_mixed_goes_both_ways() {
        // Fig. 8(a) Boston/Lincoln: some products cheaper, some dearer.
        let e = PricingEngine::new(
            Seed::new(5),
            vec![StrategyComponent::PerProductMixed {
                ranges: vec![
                    (
                        LocKey::City(Country::UnitedStates, "Boston".into()),
                        0.95,
                        1.15,
                    ),
                    (
                        LocKey::City(Country::UnitedStates, "Lincoln".into()),
                        0.95,
                        1.15,
                    ),
                ],
            }],
        );
        let cat = catalog();
        let mut boston_dearer = 0;
        let mut lincoln_dearer = 0;
        for p in cat.iter() {
            let b = e.quote(p, &ctx_at(Country::UnitedStates, "Boston"));
            let l = e.quote(p, &ctx_at(Country::UnitedStates, "Lincoln"));
            match b.cmp(&l) {
                std::cmp::Ordering::Greater => boston_dearer += 1,
                std::cmp::Ordering::Less => lincoln_dearer += 1,
                std::cmp::Ordering::Equal => {}
            }
        }
        assert!(boston_dearer >= 10, "{boston_dearer}");
        assert!(lincoln_dearer >= 10, "{lincoln_dearer}");
    }

    #[test]
    fn country_keyed_mixed_is_city_invariant() {
        // Regression: a country-keyed PerProductMixed must price every
        // city of that country identically (amazon's "constant across
        // US but vary across countries").
        let e = PricingEngine::new(
            Seed::new(55),
            vec![StrategyComponent::PerProductMixed {
                ranges: vec![(LocKey::Country(Country::UnitedStates), 1.0, 1.5)],
            }],
        );
        let cat = catalog();
        for p in cat.iter().take(20) {
            let boston = e.quote(p, &ctx_at(Country::UnitedStates, "Boston"));
            let chicago = e.quote(p, &ctx_at(Country::UnitedStates, "Chicago"));
            let ny = e.quote(p, &ctx_at(Country::UnitedStates, "New York"));
            assert_eq!(boston, chicago, "{}", p.slug);
            assert_eq!(boston, ny, "{}", p.slug);
        }
    }

    #[test]
    fn cheap_boost_envelope_declines() {
        // Fig. 5: ×3 at $10, ≤×1.5 at $5K.
        let e = PricingEngine::new(
            Seed::new(6),
            vec![StrategyComponent::CheapBoost {
                keys: vec![LocKey::Country(Country::Finland)],
                factor_at_low: 3.0,
                factor_at_high: 1.3,
                lo_usd: 10.0,
                hi_usd: 5_000.0,
            }],
        );
        let mk = |usd: f64| Product {
            id: pd_util::ProductId::new(0),
            name: "p".into(),
            slug: "p".into(),
            category: Category::DepartmentStore,
            base_price: Money::from_f64(usd),
        };
        let base_ctx = ctx_at(Country::UnitedStates, "Boston");
        let fi_ctx = ctx_at(Country::Finland, "Tampere");
        let ratio = |usd: f64| {
            let p = mk(usd);
            e.quote(&p, &fi_ctx)
                .ratio_to(e.quote(&p, &base_ctx))
                .unwrap()
        };
        assert!((ratio(10.0) - 3.0).abs() < 0.05);
        assert!(ratio(100.0) < ratio(10.0));
        assert!(ratio(1_000.0) < ratio(100.0));
        assert!((ratio(5_000.0) - 1.3).abs() < 0.05);
        assert!((ratio(9_000.0) - 1.3).abs() < 0.05); // clamped
    }

    #[test]
    fn session_jitter_ignores_login() {
        // Fig. 10: same session token ⇒ same price regardless of login.
        let e = PricingEngine::new(
            Seed::new(7),
            vec![StrategyComponent::SessionJitter { amplitude: 0.1 }],
        );
        let cat = catalog();
        let p = cat.product(pd_util::ProductId::new(3));
        let anon = ctx_at(Country::UnitedStates, "Boston").with_session(99);
        let logged = anon
            .clone()
            .with_login(LoginState::LoggedIn { user_key: 123 });
        assert_eq!(e.quote(p, &anon), e.quote(p, &logged));
        // ...but different sessions see different prices.
        let other = anon.clone().with_session(100);
        assert_ne!(e.quote(p, &anon), e.quote(p, &other));
    }

    #[test]
    fn ab_test_buckets_fraction_of_sessions() {
        let e = PricingEngine::new(
            Seed::new(8),
            vec![StrategyComponent::AbTest {
                fraction: 0.3,
                factor: 1.2,
            }],
        );
        let cat = catalog();
        let p = cat.product(pd_util::ProductId::new(1));
        let base = p.base_price;
        let mut treated = 0;
        for s in 0..1000 {
            let ctx = ctx_at(Country::UnitedStates, "Boston").with_session(s);
            if e.quote(p, &ctx) != base {
                treated += 1;
            }
        }
        assert!((250..=350).contains(&treated), "treated {treated}");
    }

    #[test]
    fn temporal_drift_changes_by_day_only() {
        let e = PricingEngine::new(
            Seed::new(9),
            vec![StrategyComponent::TemporalDrift { amplitude: 0.05 }],
        );
        let cat = catalog();
        let p = cat.product(pd_util::ProductId::new(2));
        let day0 = QuoteContext::anonymous(
            Location::new(Country::UnitedStates, "Boston"),
            SimTime::from_millis(0),
        );
        let day0b = QuoteContext::anonymous(
            Location::new(Country::Finland, "Tampere"),
            SimTime::from_millis(3_600_000),
        );
        let day1 = QuoteContext::anonymous(
            Location::new(Country::UnitedStates, "Boston"),
            SimTime::from_millis(24 * 3_600_000 + 1),
        );
        // Same day, any location/hour: same price (drift is global).
        assert_eq!(e.quote(p, &day0), e.quote(p, &day0b));
        // Different day: may differ.
        assert_ne!(e.quote(p, &day0), e.quote(p, &day1));
    }

    #[test]
    fn product_gate_limits_extent() {
        let e = PricingEngine::new(
            Seed::new(10),
            vec![
                StrategyComponent::ProductGate { fraction: 0.5 },
                StrategyComponent::MultiplicativeByLocation {
                    factors: vec![(LocKey::Country(Country::Finland), 1.3)],
                },
            ],
        );
        let cat = Catalog::generate(Seed::new(77), &[Category::Books], 400);
        let varied = cat
            .iter()
            .filter(|p| {
                e.quote(p, &ctx_at(Country::Finland, "Tampere"))
                    != e.quote(p, &ctx_at(Country::UnitedStates, "Boston"))
            })
            .count();
        let frac = varied as f64 / 400.0;
        assert!((0.4..0.6).contains(&frac), "extent {frac}");
    }

    #[test]
    fn quotes_are_order_independent() {
        let cat = catalog();
        let e = PricingEngine::new(
            Seed::new(11),
            vec![
                StrategyComponent::MultiplicativeByLocation {
                    factors: vec![(LocKey::Country(Country::Finland), 1.2)],
                },
                StrategyComponent::SessionJitter { amplitude: 0.05 },
            ],
        );
        let ctx = ctx_at(Country::Finland, "Tampere").with_session(5);
        let p = cat.product(pd_util::ProductId::new(7));
        let first = e.quote(p, &ctx);
        // Interleave other quotes; the original must not change.
        for s in 0..50 {
            let _ = e.quote(p, &ctx.clone().with_session(s));
        }
        assert_eq!(e.quote(p, &ctx), first);
    }

    #[test]
    fn quote_never_nonpositive() {
        // Huge negative surcharge cannot push a price to zero or below.
        let e = PricingEngine::new(
            Seed::new(12),
            vec![StrategyComponent::AdditiveByLocation {
                surcharges: vec![(
                    LocKey::Country(Country::Germany),
                    Money::from_minor(-100_000_000),
                )],
            }],
        );
        let cat = catalog();
        for p in cat.iter() {
            assert!(e
                .quote(p, &ctx_at(Country::Germany, "Berlin"))
                .is_positive());
        }
    }

    proptest! {
        #[test]
        fn prop_quote_deterministic(
            seed in 0u64..200,
            session in 0u64..100,
            day_ms in 0u64..(150u64 * 24 * 3_600_000),
        ) {
            let cat = catalog();
            let e = PricingEngine::new(
                Seed::new(seed),
                vec![
                    StrategyComponent::SessionJitter { amplitude: 0.1 },
                    StrategyComponent::TemporalDrift { amplitude: 0.05 },
                ],
            );
            let ctx = QuoteContext::anonymous(
                Location::new(Country::Spain, "Barcelona"),
                SimTime::from_millis(day_ms),
            ).with_session(session);
            let p = cat.product(pd_util::ProductId::new(0));
            prop_assert_eq!(e.quote(p, &ctx), e.quote(p, &ctx));
        }

        #[test]
        fn prop_multiplicative_ratio_exact(factor in 1.01f64..2.0) {
            let cat = catalog();
            let e = PricingEngine::new(
                Seed::new(1),
                vec![StrategyComponent::MultiplicativeByLocation {
                    factors: vec![(LocKey::Country(Country::Finland), factor)],
                }],
            );
            for p in cat.iter().take(10) {
                let fi = e.quote(p, &ctx_at(Country::Finland, "Tampere"));
                let us = e.quote(p, &ctx_at(Country::UnitedStates, "Boston"));
                let r = fi.ratio_to(us).unwrap();
                // exact up to cent rounding
                prop_assert!((r - factor).abs() < 0.02);
            }
        }
    }
}
