//! Seeded product-catalog generation.
//!
//! Every retailer owns a catalog of products with USD *base prices* —
//! what the retailer would charge a perfectly neutral customer. Pricing
//! strategies perturb the base per location/user/time. Base prices are
//! log-uniform within the category range and snapped to retail "charm"
//! values (x.99), matching the price texture of the paper's Fig. 5.

use crate::category::Category;
use pd_util::{Money, ProductId, Seed};
use rand::prelude::*;
use serde::{Deserialize, Serialize};

/// One product in a retailer's catalog.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Product {
    /// Dense id within the owning catalog.
    pub id: ProductId,
    /// Display name, e.g. `"Camera Nova 0042"`.
    pub name: String,
    /// URL slug, e.g. `"camera-nova-0042"`.
    pub slug: String,
    /// Category.
    pub category: Category,
    /// USD base price (minor units).
    pub base_price: Money,
}

/// A retailer's product catalog.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catalog {
    products: Vec<Product>,
}

/// Name fragments combined into deterministic product names.
const ADJECTIVES: [&str; 16] = [
    "Nova", "Alpine", "Urban", "Retro", "Prime", "Vivid", "Solid", "Aero", "Terra", "Luna",
    "Rapid", "Quiet", "Bold", "Pure", "Atlas", "Delta",
];

impl Catalog {
    /// Generates `size` products of the given `categories` (round-robin)
    /// for one retailer.
    ///
    /// Deterministic in `seed`. Prices are log-uniform in the category
    /// range, charm-rounded, and never below $0.99.
    #[must_use]
    pub fn generate(seed: Seed, categories: &[Category], size: usize) -> Self {
        assert!(
            !categories.is_empty(),
            "catalog needs at least one category"
        );
        let mut rng = seed.derive("catalog").rng();
        let mut products = Vec::with_capacity(size);
        for i in 0..size {
            let category = categories[i % categories.len()];
            let (lo, hi) = category.price_range_usd();
            let log_price = rng.random_range(lo.ln()..hi.ln());
            let base = Money::from_f64(log_price.exp()).charm();
            let adj = ADJECTIVES[rng.random_range(0..ADJECTIVES.len())];
            let name = format!("{} {} {:04}", capitalize(category.slug()), adj, i);
            let slug = format!("{}-{}-{:04}", category.slug(), adj.to_lowercase(), i);
            products.push(Product {
                id: ProductId::new(i as u32),
                name,
                slug,
                category,
                base_price: base,
            });
        }
        Catalog { products }
    }

    /// Number of products.
    #[must_use]
    pub fn len(&self) -> usize {
        self.products.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.products.is_empty()
    }

    /// Borrows a product.
    ///
    /// # Panics
    ///
    /// Panics for ids not in this catalog.
    #[must_use]
    pub fn product(&self, id: ProductId) -> &Product {
        &self.products[id.index()]
    }

    /// Looks a product up by slug.
    #[must_use]
    pub fn by_slug(&self, slug: &str) -> Option<&Product> {
        self.products.iter().find(|p| p.slug == slug)
    }

    /// Iterates all products.
    pub fn iter(&self) -> impl Iterator<Item = &Product> {
        self.products.iter()
    }

    /// Samples `n` distinct products uniformly (or all, if fewer exist),
    /// deterministic in `seed` — how the crawler picks its "up to 100
    /// random products per retailer".
    #[must_use]
    pub fn sample(&self, seed: Seed, n: usize) -> Vec<ProductId> {
        let mut rng = seed.derive("catalog-sample").rng();
        let mut ids: Vec<ProductId> = self.products.iter().map(|p| p.id).collect();
        ids.shuffle(&mut rng);
        ids.truncate(n);
        ids.sort();
        ids
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Catalog::generate(Seed::new(5), &[Category::Books], 50);
        let b = Catalog::generate(Seed::new(5), &[Category::Books], 50);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Catalog::generate(Seed::new(5), &[Category::Books], 50);
        let b = Catalog::generate(Seed::new(6), &[Category::Books], 50);
        assert_ne!(a, b);
    }

    #[test]
    fn prices_within_category_range() {
        let cat = Catalog::generate(Seed::new(7), &[Category::Photography], 200);
        let (lo, hi) = Category::Photography.price_range_usd();
        for p in cat.iter() {
            let v = p.base_price.to_f64();
            // Charm rounding may dip one unit below the lower bound.
            assert!(v >= lo - 1.0 && v <= hi + 1.0, "{}: {v}", p.name);
        }
    }

    #[test]
    fn prices_are_charm() {
        let cat = Catalog::generate(Seed::new(8), &[Category::Clothing], 100);
        for p in cat.iter() {
            assert_eq!(p.base_price.to_minor() % 100, 99, "{}", p.name);
        }
    }

    #[test]
    fn categories_round_robin() {
        let cats = [Category::Books, Category::Ebooks];
        let c = Catalog::generate(Seed::new(9), &cats, 10);
        for (i, p) in c.iter().enumerate() {
            assert_eq!(p.category, cats[i % 2]);
        }
    }

    #[test]
    fn slugs_are_unique_and_resolvable() {
        let c = Catalog::generate(Seed::new(10), &[Category::Games], 100);
        let slugs: std::collections::HashSet<_> = c.iter().map(|p| p.slug.clone()).collect();
        assert_eq!(slugs.len(), 100);
        for p in c.iter() {
            assert_eq!(c.by_slug(&p.slug).unwrap().id, p.id);
        }
        assert!(c.by_slug("missing").is_none());
    }

    #[test]
    fn ids_are_dense() {
        let c = Catalog::generate(Seed::new(11), &[Category::Books], 20);
        for (i, p) in c.iter().enumerate() {
            assert_eq!(p.id.index(), i);
            assert_eq!(c.product(p.id), p);
        }
    }

    #[test]
    fn sample_is_distinct_sorted_and_bounded() {
        let c = Catalog::generate(Seed::new(12), &[Category::Books], 150);
        let s = c.sample(Seed::new(1), 100);
        assert_eq!(s.len(), 100);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 100);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        // Requesting more than exists returns all.
        let all = c.sample(Seed::new(1), 1_000);
        assert_eq!(all.len(), 150);
    }

    #[test]
    fn sample_is_deterministic_but_seed_sensitive() {
        let c = Catalog::generate(Seed::new(13), &[Category::Books], 50);
        assert_eq!(c.sample(Seed::new(1), 10), c.sample(Seed::new(1), 10));
        assert_ne!(c.sample(Seed::new(1), 10), c.sample(Seed::new(2), 10));
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn empty_categories_panics() {
        let _ = Catalog::generate(Seed::new(1), &[], 10);
    }

    proptest! {
        #[test]
        fn prop_all_prices_positive(seed in 0u64..500, size in 1usize..60) {
            let c = Catalog::generate(Seed::new(seed), &[Category::DepartmentStore], size);
            prop_assert!(c.iter().all(|p| p.base_price.is_positive()));
            prop_assert_eq!(c.len(), size);
        }
    }
}
