//! Product categories.
//!
//! The paper's crowd surfaced "bookstores, cloth retailers/manufacturers,
//! office supplies/electronics, car dealers, department stores, hotel and
//! travel agencies" (Sec. 3.2). Categories drive three things in the
//! simulation: catalog price ranges, crowd-user interest profiles, and
//! figure labels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A product category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Category {
    Books,
    Ebooks,
    Clothing,
    Shoes,
    Leather,
    Eyewear,
    Electronics,
    Photography,
    OfficeSupplies,
    HomeImprovement,
    Hotels,
    Travel,
    Automobiles,
    DepartmentStore,
    Cycling,
    Nutrition,
    Games,
    BabyGoods,
    Media,
}

impl Category {
    /// All categories.
    pub const ALL: [Category; 19] = [
        Category::Books,
        Category::Ebooks,
        Category::Clothing,
        Category::Shoes,
        Category::Leather,
        Category::Eyewear,
        Category::Electronics,
        Category::Photography,
        Category::OfficeSupplies,
        Category::HomeImprovement,
        Category::Hotels,
        Category::Travel,
        Category::Automobiles,
        Category::DepartmentStore,
        Category::Cycling,
        Category::Nutrition,
        Category::Games,
        Category::BabyGoods,
        Category::Media,
    ];

    /// Typical price range of the category in USD (lo, hi), log-uniform.
    ///
    /// Ranges are chosen so the union spans Fig. 5's $10–$10 000 axis with
    /// cheap categories (books/ebooks/media) at the left edge and
    /// automobiles at the right.
    #[must_use]
    pub fn price_range_usd(self) -> (f64, f64) {
        match self {
            Category::Ebooks => (4.0, 25.0),
            Category::Books => (8.0, 60.0),
            Category::Media => (5.0, 40.0),
            Category::Nutrition => (10.0, 90.0),
            Category::Games => (5.0, 70.0),
            Category::BabyGoods => (15.0, 300.0),
            Category::Clothing => (15.0, 250.0),
            Category::Shoes => (30.0, 280.0),
            Category::OfficeSupplies => (3.0, 500.0),
            Category::Eyewear => (80.0, 400.0),
            Category::Leather => (60.0, 900.0),
            Category::Cycling => (10.0, 3_000.0),
            Category::DepartmentStore => (10.0, 1_500.0),
            Category::Electronics => (20.0, 2_500.0),
            Category::HomeImprovement => (5.0, 2_000.0),
            Category::Photography => (50.0, 8_000.0),
            Category::Hotels => (40.0, 800.0),
            Category::Travel => (60.0, 3_000.0),
            Category::Automobiles => (2_000.0, 10_000.0),
        }
    }

    /// Index into [`Category::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        Category::ALL
            .iter()
            .position(|c| *c == self)
            .expect("category present in ALL")
    }

    /// Short label used in product names and URLs.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Category::Books => "book",
            Category::Ebooks => "ebook",
            Category::Clothing => "apparel",
            Category::Shoes => "shoe",
            Category::Leather => "leather",
            Category::Eyewear => "eyewear",
            Category::Electronics => "gadget",
            Category::Photography => "camera",
            Category::OfficeSupplies => "office",
            Category::HomeImprovement => "tool",
            Category::Hotels => "room",
            Category::Travel => "trip",
            Category::Automobiles => "car",
            Category::DepartmentStore => "item",
            Category::Cycling => "bike",
            Category::Nutrition => "supplement",
            Category::Games => "game",
            Category::BabyGoods => "baby",
            Category::Media => "disc",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_19_unique() {
        let set: std::collections::HashSet<_> = Category::ALL.iter().collect();
        assert_eq!(set.len(), 19);
    }

    #[test]
    fn index_round_trips() {
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn price_ranges_are_sane() {
        for &c in &Category::ALL {
            let (lo, hi) = c.price_range_usd();
            assert!(lo > 0.0 && hi > lo, "{c}: ({lo}, {hi})");
        }
    }

    #[test]
    fn union_spans_fig5_axis() {
        let lo = Category::ALL
            .iter()
            .map(|c| c.price_range_usd().0)
            .fold(f64::MAX, f64::min);
        let hi = Category::ALL
            .iter()
            .map(|c| c.price_range_usd().1)
            .fold(f64::MIN, f64::max);
        assert!(lo <= 10.0, "cheapest categories reach $10: {lo}");
        assert!(hi >= 10_000.0 * 0.99, "dearest reach $10K: {hi}");
    }

    #[test]
    fn slugs_unique() {
        let set: std::collections::HashSet<_> = Category::ALL.iter().map(|c| c.slug()).collect();
        assert_eq!(set.len(), 19);
    }
}
