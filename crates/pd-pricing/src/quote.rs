//! Quote context: everything a retailer can observe about a request.
//!
//! The paper's open question #4 is whether variations can be attributed
//! to "specific personal information traits (location, browsing history,
//! etc.)". The context therefore carries each trait the study controls
//! for: geo-located location, wall-clock time, login state, trained
//! persona, and an opaque session token (the handle A/B bucketing hashes).

use pd_net::clock::SimTime;
use pd_net::geo::Location;
use serde::{Deserialize, Serialize};

/// Login state of the requesting browser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum LoginState {
    /// Not logged in (the paper's "W/o login" series in Fig. 10).
    #[default]
    Anonymous,
    /// Logged in as account `user_key` (paper's Users A/B/C).
    LoggedIn {
        /// Stable key of the account.
        user_key: u64,
    },
}

/// A trained browsing persona (Sec. 4.4): the affluent and budget
/// personas were built by visiting luxury vs. discount sites before
/// measuring. The paper finds **no** persona effect; the simulated
/// retailers accordingly ignore this field — the field exists so the
/// experiment can *demonstrate* the null result end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Persona {
    /// No training.
    #[default]
    Neutral,
    /// Luxury-site browsing history.
    Affluent,
    /// Discount-site browsing history.
    BudgetConscious,
}

/// The observable context of one price quote.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuoteContext {
    /// Geo-located client location (country granularity is what geo-IP
    /// gives; city granularity is available for in-country CDNs, which is
    /// how city-level strategies like Fig. 8(a)'s retailer operate).
    pub location: Location,
    /// Simulated instant of the request.
    pub time: SimTime,
    /// Day index (derived from `time`; duplicated for cheap access).
    pub day: usize,
    /// Login state.
    pub login: LoginState,
    /// Trained persona.
    pub persona: Persona,
    /// Opaque per-session token; A/B strategies hash it for bucketing.
    pub session_token: u64,
}

impl QuoteContext {
    /// A neutral anonymous context at `location` and `time`.
    #[must_use]
    pub fn anonymous(location: Location, time: SimTime) -> Self {
        QuoteContext {
            location,
            day: time.day_index() as usize,
            time,
            login: LoginState::Anonymous,
            persona: Persona::Neutral,
            session_token: 0,
        }
    }

    /// Returns a copy with the given login state.
    #[must_use]
    pub fn with_login(mut self, login: LoginState) -> Self {
        self.login = login;
        self
    }

    /// Returns a copy with the given persona.
    #[must_use]
    pub fn with_persona(mut self, persona: Persona) -> Self {
        self.persona = persona;
        self
    }

    /// Returns a copy with the given session token.
    #[must_use]
    pub fn with_session(mut self, token: u64) -> Self {
        self.session_token = token;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_net::geo::Country;

    #[test]
    fn anonymous_defaults() {
        let loc = Location::new(Country::Finland, "Tampere");
        let t = SimTime::from_millis(3 * 24 * 3_600_000 + 5);
        let ctx = QuoteContext::anonymous(loc.clone(), t);
        assert_eq!(ctx.location, loc);
        assert_eq!(ctx.day, 3);
        assert_eq!(ctx.login, LoginState::Anonymous);
        assert_eq!(ctx.persona, Persona::Neutral);
        assert_eq!(ctx.session_token, 0);
    }

    #[test]
    fn builder_helpers() {
        let loc = Location::new(Country::UnitedStates, "Boston");
        let ctx = QuoteContext::anonymous(loc, SimTime::EPOCH)
            .with_login(LoginState::LoggedIn { user_key: 42 })
            .with_persona(Persona::Affluent)
            .with_session(7);
        assert_eq!(ctx.login, LoginState::LoggedIn { user_key: 42 });
        assert_eq!(ctx.persona, Persona::Affluent);
        assert_eq!(ctx.session_token, 7);
    }

    #[test]
    fn default_login_is_anonymous() {
        assert_eq!(LoginState::default(), LoginState::Anonymous);
        assert_eq!(Persona::default(), Persona::Neutral);
    }
}
