//! Currencies and priced amounts.

use pd_net::geo::Country;
use pd_util::Money;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Currencies of the simulated countries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Currency {
    Usd,
    Eur,
    Gbp,
    Brl,
    Pln,
    Sek,
    Cad,
    Aud,
    Jpy,
}

impl Currency {
    /// All modeled currencies.
    pub const ALL: [Currency; 9] = [
        Currency::Usd,
        Currency::Eur,
        Currency::Gbp,
        Currency::Brl,
        Currency::Pln,
        Currency::Sek,
        Currency::Cad,
        Currency::Aud,
        Currency::Jpy,
    ];

    /// ISO 4217 code.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Currency::Usd => "USD",
            Currency::Eur => "EUR",
            Currency::Gbp => "GBP",
            Currency::Brl => "BRL",
            Currency::Pln => "PLN",
            Currency::Sek => "SEK",
            Currency::Cad => "CAD",
            Currency::Aud => "AUD",
            Currency::Jpy => "JPY",
        }
    }

    /// Display symbol used by the simulated retail templates.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            Currency::Usd => "$",
            Currency::Eur => "€",
            Currency::Gbp => "£",
            Currency::Brl => "R$",
            Currency::Pln => "zł",
            Currency::Sek => "kr",
            Currency::Cad => "C$",
            Currency::Aud => "A$",
            Currency::Jpy => "¥",
        }
    }

    /// Number of minor-unit digits (JPY prices are integer yen).
    #[must_use]
    pub fn decimals(self) -> u32 {
        match self {
            Currency::Jpy => 0,
            _ => 2,
        }
    }

    /// Dense index into [`Currency::ALL`], used for seed derivation.
    #[must_use]
    pub fn index(self) -> usize {
        Currency::ALL
            .iter()
            .position(|c| *c == self)
            .expect("currency present in ALL")
    }

    /// The local currency of a country — the one its residents are shown
    /// by geo-locating retailers.
    #[must_use]
    pub fn of_country(country: Country) -> Currency {
        match country {
            Country::UnitedStates => Currency::Usd,
            Country::UnitedKingdom => Currency::Gbp,
            Country::Brazil => Currency::Brl,
            Country::Poland => Currency::Pln,
            Country::Sweden => Currency::Sek,
            Country::Canada => Currency::Cad,
            Country::Australia => Currency::Aud,
            Country::Japan => Currency::Jpy,
            // Eurozone members in the model.
            Country::Germany
            | Country::Spain
            | Country::Finland
            | Country::Belgium
            | Country::Italy
            | Country::France
            | Country::Netherlands
            | Country::Portugal
            | Country::Greece
            | Country::Ireland => Currency::Eur,
        }
    }
}

impl fmt::Display for Currency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// An exact amount in a specific currency — what a product page displays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Price {
    /// Amount in the currency's minor units ([`Currency::decimals`]).
    pub amount: Money,
    /// Currency of the amount.
    pub currency: Currency,
}

impl Price {
    /// Creates a price.
    #[must_use]
    pub fn new(amount: Money, currency: Currency) -> Self {
        Price { amount, currency }
    }

    /// USD price helper (tests and catalogs).
    #[must_use]
    pub fn usd(amount: Money) -> Self {
        Price::new(amount, Currency::Usd)
    }

    /// The amount as a float in *major* units, respecting the currency's
    /// minor-digit convention (JPY minor units are whole yen).
    #[must_use]
    pub fn major_value(self) -> f64 {
        let divisor = 10f64.powi(self.currency.decimals() as i32);
        // Money always stores two implied decimals; JPY amounts are stored
        // with minor==0 cents semantics (amount in "yen-cents") so the
        // generic path divides by 100 regardless. We keep Money uniform
        // and let decimals() drive *formatting* only.
        let _ = divisor;
        self.amount.to_f64()
    }
}

impl fmt::Display for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.amount, self.currency.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_symbols_unique() {
        let codes: std::collections::HashSet<_> = Currency::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), Currency::ALL.len());
        let symbols: std::collections::HashSet<_> =
            Currency::ALL.iter().map(|c| c.symbol()).collect();
        assert_eq!(symbols.len(), Currency::ALL.len());
    }

    #[test]
    fn eurozone_countries_use_eur() {
        for c in [
            Country::Germany,
            Country::Spain,
            Country::Finland,
            Country::Belgium,
            Country::Italy,
        ] {
            assert_eq!(Currency::of_country(c), Currency::Eur);
        }
    }

    #[test]
    fn non_euro_currencies() {
        assert_eq!(Currency::of_country(Country::UnitedStates), Currency::Usd);
        assert_eq!(Currency::of_country(Country::UnitedKingdom), Currency::Gbp);
        assert_eq!(Currency::of_country(Country::Brazil), Currency::Brl);
        assert_eq!(Currency::of_country(Country::Japan), Currency::Jpy);
    }

    #[test]
    fn every_country_has_a_currency() {
        for &c in &Country::ALL {
            // Must not panic; the result must be one of ALL.
            let cur = Currency::of_country(c);
            assert!(Currency::ALL.contains(&cur));
        }
    }

    #[test]
    fn index_round_trips() {
        for (i, c) in Currency::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn jpy_has_no_decimals() {
        assert_eq!(Currency::Jpy.decimals(), 0);
        assert_eq!(Currency::Eur.decimals(), 2);
    }

    #[test]
    fn price_display() {
        let p = Price::usd(Money::from_minor(1299));
        assert_eq!(p.to_string(), "12.99 USD");
        assert_eq!(p.major_value(), 12.99);
    }
}
