//! Locale-specific price rendering and exact parsing.
//!
//! Sec. 3.2 lists "diverse number and date formats across countries" as a
//! leading noise source in the crowdsourced dataset. The simulated
//! retailers render prices with full locale fidelity — "1.234,56 €",
//! "£1,234.56", "1 234,56 zł", "¥1,235" — and the extraction layer must
//! parse them all back *exactly* (to the minor unit), or the currency
//! filter would see phantom variations.

use crate::currency::{Currency, Price};
use pd_net::geo::Country;
use pd_util::Money;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where the currency symbol sits relative to the number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SymbolPosition {
    /// `$1,234.56`
    Before,
    /// `1.234,56 €` (with a non-breaking space)
    AfterWithNbsp,
    /// `1 234,56zł` (no space)
    After,
}

/// A number+currency formatting convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Locale {
    /// Decimal separator (`.` or `,`).
    pub decimal_sep: char,
    /// Thousands separator (`,`, `.`, `\u{a0}` or `' '`).
    pub group_sep: char,
    /// Symbol placement.
    pub symbol_pos: SymbolPosition,
    /// The currency this locale formats.
    pub currency: Currency,
}

/// Error from exact locale parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePriceError {
    /// What failed.
    pub message: String,
    /// The offending input.
    pub input: String,
}

impl fmt::Display for ParsePriceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse price {:?}: {}", self.input, self.message)
    }
}

impl std::error::Error for ParsePriceError {}

impl Locale {
    /// The display locale a geo-located visitor from `country` sees.
    #[must_use]
    pub fn of_country(country: Country) -> Locale {
        let currency = Currency::of_country(country);
        match country {
            Country::UnitedStates | Country::Canada | Country::Australia => Locale {
                decimal_sep: '.',
                group_sep: ',',
                symbol_pos: SymbolPosition::Before,
                currency,
            },
            Country::UnitedKingdom | Country::Ireland => Locale {
                decimal_sep: '.',
                group_sep: ',',
                symbol_pos: SymbolPosition::Before,
                currency,
            },
            Country::Japan => Locale {
                decimal_sep: '.',
                group_sep: ',',
                symbol_pos: SymbolPosition::Before,
                currency,
            },
            Country::Brazil => Locale {
                decimal_sep: ',',
                group_sep: '.',
                symbol_pos: SymbolPosition::Before,
                currency,
            },
            Country::Poland | Country::Sweden => Locale {
                decimal_sep: ',',
                group_sep: '\u{a0}',
                symbol_pos: SymbolPosition::AfterWithNbsp,
                currency,
            },
            // Eurozone: continental convention.
            _ => Locale {
                decimal_sep: ',',
                group_sep: '.',
                symbol_pos: SymbolPosition::AfterWithNbsp,
                currency,
            },
        }
    }

    /// Formats `amount` (in [`Money`] minor units) as this locale renders
    /// it on a product page.
    ///
    /// JPY renders without decimals (amounts are whole yen held in the
    /// `Money` major part).
    #[must_use]
    pub fn format(&self, amount: Money) -> String {
        let digits = self.format_number(amount);
        match self.symbol_pos {
            SymbolPosition::Before => format!("{}{}", self.currency.symbol(), digits),
            SymbolPosition::AfterWithNbsp => {
                format!("{}\u{a0}{}", digits, self.currency.symbol())
            }
            SymbolPosition::After => format!("{}{}", digits, self.currency.symbol()),
        }
    }

    /// Formats a [`Price`]; the price's currency must match the locale's.
    ///
    /// # Panics
    ///
    /// Panics on a currency mismatch — templates always format prices in
    /// the locale they selected.
    #[must_use]
    pub fn format_price(&self, price: Price) -> String {
        assert_eq!(
            price.currency, self.currency,
            "locale/currency mismatch in template"
        );
        self.format(price.amount)
    }

    fn format_number(&self, amount: Money) -> String {
        let negative = amount.to_minor() < 0;
        let major = amount.major().unsigned_abs();
        let minor = amount.minor_part();
        let mut int_part = String::new();
        let digits = major.to_string();
        let len = digits.len();
        for (i, ch) in digits.chars().enumerate() {
            if i > 0 && (len - i).is_multiple_of(3) {
                int_part.push(self.group_sep);
            }
            int_part.push(ch);
        }
        let body = if self.currency.decimals() == 0 {
            int_part
        } else {
            format!("{int_part}{}{minor:02}", self.decimal_sep)
        };
        if negative {
            format!("-{body}")
        } else {
            body
        }
    }

    /// Exact inverse of [`Locale::format`].
    ///
    /// # Errors
    ///
    /// Returns [`ParsePriceError`] when the text does not follow this
    /// locale's convention (wrong symbol, malformed grouping, no digits).
    pub fn parse(&self, text: &str) -> Result<Price, ParsePriceError> {
        let err = |m: &str| ParsePriceError {
            message: m.to_owned(),
            input: text.to_owned(),
        };
        let sym = self.currency.symbol();
        let trimmed = text.trim().trim_matches('\u{a0}');
        let body = match self.symbol_pos {
            SymbolPosition::Before => trimmed
                .strip_prefix(sym)
                .ok_or_else(|| err("missing currency symbol prefix"))?,
            SymbolPosition::AfterWithNbsp | SymbolPosition::After => trimmed
                .strip_suffix(sym)
                .ok_or_else(|| err("missing currency symbol suffix"))?,
        };
        let body = body.trim().trim_matches('\u{a0}');
        let (body, negative) = match body.strip_prefix('-') {
            Some(rest) => (rest, true),
            None => (body, false),
        };
        if body.is_empty() {
            return Err(err("no digits"));
        }

        let (int_text, frac_text) = if self.currency.decimals() == 0 {
            (body, None)
        } else {
            match body.rsplit_once(self.decimal_sep) {
                Some((i, f)) => (i, Some(f)),
                None => (body, None),
            }
        };
        if let Some(f) = frac_text {
            if f.len() != 2 || !f.bytes().all(|b| b.is_ascii_digit()) {
                return Err(err("malformed decimal part"));
            }
        }
        // Validate grouping: digits in groups of ≤3 separated by group_sep,
        // with all groups after the first exactly 3 long.
        let groups: Vec<&str> = int_text.split(self.group_sep).collect();
        if groups.iter().any(|g| g.is_empty()) {
            return Err(err("empty digit group"));
        }
        for (i, g) in groups.iter().enumerate() {
            if !g.bytes().all(|b| b.is_ascii_digit()) {
                return Err(err("non-digit in integer part"));
            }
            if i == 0 {
                if g.len() > 3 && groups.len() > 1 {
                    return Err(err("leading group too long"));
                }
            } else if g.len() != 3 {
                return Err(err("grouping violation"));
            }
        }
        let major: i64 = groups
            .concat()
            .parse()
            .map_err(|_| err("integer overflow"))?;
        let minor: i64 = frac_text.map_or(Ok(0), |f| {
            f.parse::<i64>().map_err(|_| err("bad decimal digits"))
        })?;
        let mut value = major * 100 + minor;
        if negative {
            value = -value;
        }
        Ok(Price::new(Money::from_minor(value), self.currency))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn us() -> Locale {
        Locale::of_country(Country::UnitedStates)
    }
    fn de() -> Locale {
        Locale::of_country(Country::Germany)
    }
    fn pl() -> Locale {
        Locale::of_country(Country::Poland)
    }
    fn br() -> Locale {
        Locale::of_country(Country::Brazil)
    }
    fn jp() -> Locale {
        Locale::of_country(Country::Japan)
    }

    #[test]
    fn format_us() {
        assert_eq!(us().format(Money::from_minor(123_456)), "$1,234.56");
        assert_eq!(us().format(Money::from_minor(99)), "$0.99");
        assert_eq!(us().format(Money::from_minor(123_456_789)), "$1,234,567.89");
    }

    #[test]
    fn format_eurozone() {
        assert_eq!(de().format(Money::from_minor(123_456)), "1.234,56\u{a0}€");
        assert_eq!(de().format(Money::from_minor(500)), "5,00\u{a0}€");
    }

    #[test]
    fn format_poland_space_groups() {
        assert_eq!(
            pl().format(Money::from_minor(123_456)),
            "1\u{a0}234,56\u{a0}zł"
        );
    }

    #[test]
    fn format_brazil() {
        assert_eq!(br().format(Money::from_minor(123_456)), "R$1.234,56");
    }

    #[test]
    fn format_jpy_no_decimals() {
        // ¥ amounts: whole yen stored in the major part.
        assert_eq!(jp().format(Money::from_major_minor(1235, 0)), "¥1,235");
    }

    #[test]
    fn format_negative() {
        assert_eq!(us().format(Money::from_minor(-1099)), "$-10.99");
    }

    #[test]
    fn parse_us() {
        let p = us().parse("$1,234.56").unwrap();
        assert_eq!(p.amount, Money::from_minor(123_456));
        assert_eq!(p.currency, Currency::Usd);
    }

    #[test]
    fn parse_eurozone() {
        let p = de().parse("1.234,56\u{a0}€").unwrap();
        assert_eq!(p.amount, Money::from_minor(123_456));
        assert_eq!(p.currency, Currency::Eur);
    }

    #[test]
    fn parse_tolerates_plain_space_before_symbol() {
        let p = de()
            .parse("1.234,56 €".replace(' ', "\u{a0}").as_str())
            .unwrap();
        assert_eq!(p.amount, Money::from_minor(123_456));
    }

    #[test]
    fn parse_rejects_wrong_symbol() {
        assert!(us().parse("€1,234.56").is_err());
        assert!(de().parse("$1.234,56").is_err());
    }

    #[test]
    fn parse_rejects_malformed_grouping() {
        assert!(us().parse("$12,34.56").is_err());
        assert!(us().parse("$1,,234.56").is_err());
        assert!(us().parse("$1234,5.00").is_err());
    }

    #[test]
    fn parse_rejects_bad_decimals() {
        assert!(us().parse("$1.5").is_err());
        assert!(us().parse("$1.505").is_err());
        assert!(us().parse("$1.").is_err());
    }

    #[test]
    fn parse_no_group_separator_accepted() {
        assert_eq!(
            us().parse("$1234.56").unwrap().amount,
            Money::from_minor(123_456)
        );
    }

    #[test]
    fn parse_jpy() {
        let p = jp().parse("¥1,235").unwrap();
        assert_eq!(p.amount, Money::from_major_minor(1235, 0));
    }

    #[test]
    fn parse_negative() {
        assert_eq!(
            us().parse("$-10.99").unwrap().amount,
            Money::from_minor(-1099)
        );
    }

    #[test]
    fn format_price_checks_currency() {
        let p = Price::new(Money::from_minor(100), Currency::Eur);
        assert_eq!(de().format_price(p), "1,00\u{a0}€");
    }

    #[test]
    #[should_panic(expected = "locale/currency mismatch")]
    fn format_price_rejects_mismatch() {
        let p = Price::new(Money::from_minor(100), Currency::Usd);
        let _ = de().format_price(p);
    }

    #[test]
    fn every_country_locale_round_trips() {
        for &c in &Country::ALL {
            let loc = Locale::of_country(c);
            let amount = if loc.currency.decimals() == 0 {
                Money::from_major_minor(9_876, 0)
            } else {
                Money::from_minor(987_654)
            };
            let s = loc.format(amount);
            let parsed = loc.parse(&s).unwrap_or_else(|e| panic!("{c:?}: {e}"));
            assert_eq!(parsed.amount, amount, "{c:?} via {s:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_format_parse_round_trip_all_locales(
            minor in 0i64..100_000_000,
            country_idx in 0usize..18,
        ) {
            let country = Country::ALL[country_idx];
            let loc = Locale::of_country(country);
            let amount = if loc.currency.decimals() == 0 {
                Money::from_minor((minor / 100) * 100)
            } else {
                Money::from_minor(minor)
            };
            let formatted = loc.format(amount);
            let parsed = loc.parse(&formatted).unwrap();
            prop_assert_eq!(parsed.amount, amount);
            prop_assert_eq!(parsed.currency, loc.currency);
        }

        #[test]
        fn prop_parse_never_panics(s in "\\PC{0,32}", country_idx in 0usize..18) {
            let loc = Locale::of_country(Country::ALL[country_idx]);
            let _ = loc.parse(&s);
        }
    }
}
