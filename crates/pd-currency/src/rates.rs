//! Daily high/low exchange-rate series.
//!
//! Substitution (DESIGN.md): the paper converted prices "using the daily
//! lowest and highest exchange rates" from early-2013 market data. We
//! generate a deterministic series with the same structure — a bounded
//! mean-reverting walk around the January-2013 parities, plus an intraday
//! low/high band — so the filter logic runs against realistic inputs.
//!
//! Rates are quoted as **USD per one unit of the currency** (EUR 1.32
//! means €1 = $1.32).

use crate::currency::{Currency, Price};
use pd_util::Seed;
use serde::{Deserialize, Serialize};

/// One day's rate band for one currency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DailyRate {
    /// Daily low (USD per unit).
    pub low: f64,
    /// Daily high (USD per unit).
    pub high: f64,
}

impl DailyRate {
    /// Midpoint of the band.
    #[must_use]
    pub fn mid(self) -> f64 {
        (self.low + self.high) / 2.0
    }
}

/// January-2013 reference parity (USD per unit).
fn parity(currency: Currency) -> f64 {
    match currency {
        Currency::Usd => 1.0,
        Currency::Eur => 1.32,
        Currency::Gbp => 1.54,
        Currency::Brl => 0.50,
        Currency::Pln => 0.32,
        Currency::Sek => 0.155,
        Currency::Cad => 0.98,
        Currency::Aud => 1.03,
        Currency::Jpy => 0.0105,
    }
}

/// Maximum cumulative drift from parity (±3 %) and intraday half-band
/// (±0.25 %) — both in line with 2013 G10 FX behaviour.
const MAX_DRIFT: f64 = 0.03;
const INTRADAY_HALF_BAND: f64 = 0.0025;

/// A deterministic daily FX series.
///
/// # Examples
///
/// ```
/// use pd_currency::{Currency, FxSeries};
/// use pd_util::Seed;
///
/// let fx = FxSeries::generate(Seed::new(1307), 200);
/// let r = fx.rate(Currency::Eur, 10);
/// assert!(r.low < r.high);
/// assert!((r.mid() - 1.32).abs() < 0.05);
/// // USD is the numéraire: always exactly 1.
/// assert_eq!(fx.rate(Currency::Usd, 10).low, 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FxSeries {
    days: usize,
    /// `rates[currency.index()][day]`
    rates: Vec<Vec<DailyRate>>,
}

impl FxSeries {
    /// Generates `days` days of rates from `seed`.
    #[must_use]
    pub fn generate(seed: Seed, days: usize) -> Self {
        let seed = seed.derive("fx-series");
        let mut rates = Vec::with_capacity(Currency::ALL.len());
        for &currency in &Currency::ALL {
            let base = parity(currency);
            let cseed = seed.derive(currency.code());
            let mut series = Vec::with_capacity(days);
            let mut drift: f64 = 0.0;
            for day in 0..days {
                if currency != Currency::Usd {
                    // Mean-reverting bounded step in [-0.4%, +0.4%].
                    let u = unit_f64(cseed.derive_idx(day as u64));
                    let step = (u - 0.5) * 0.008 - drift * 0.05;
                    drift = (drift + step).clamp(-MAX_DRIFT, MAX_DRIFT);
                }
                let mid = base * (1.0 + drift);
                let half = if currency == Currency::Usd {
                    0.0
                } else {
                    mid * INTRADAY_HALF_BAND
                };
                series.push(DailyRate {
                    low: mid - half,
                    high: mid + half,
                });
            }
            rates.push(series);
        }
        FxSeries { days, rates }
    }

    /// Number of days covered.
    #[must_use]
    pub fn days(&self) -> usize {
        self.days
    }

    /// The rate band for `currency` on `day`.
    ///
    /// # Panics
    ///
    /// Panics when `day` is outside the generated range — callers must
    /// generate a long-enough series up front.
    #[must_use]
    pub fn rate(&self, currency: Currency, day: usize) -> DailyRate {
        assert!(
            day < self.days,
            "day {day} outside FX series ({})",
            self.days
        );
        self.rates[currency.index()][day]
    }

    /// Converts a price to USD at the daily **low** rate (the smallest
    /// plausible USD value).
    #[must_use]
    pub fn to_usd_low(&self, price: Price, day: usize) -> f64 {
        price.amount.to_f64() * self.rate(price.currency, day).low
    }

    /// Converts a price to USD at the daily **high** rate.
    #[must_use]
    pub fn to_usd_high(&self, price: Price, day: usize) -> f64 {
        price.amount.to_f64() * self.rate(price.currency, day).high
    }

    /// Converts at the midpoint rate (used for *reporting*, never for the
    /// filter decision).
    #[must_use]
    pub fn to_usd_mid(&self, price: Price, day: usize) -> f64 {
        price.amount.to_f64() * self.rate(price.currency, day).mid()
    }
}

/// Uniform f64 in [0,1) from a seed.
fn unit_f64(seed: Seed) -> f64 {
    (seed.value() >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_util::Money;
    use proptest::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let a = FxSeries::generate(Seed::new(1307), 150);
        let b = FxSeries::generate(Seed::new(1307), 150);
        for &c in &Currency::ALL {
            for d in 0..150 {
                assert_eq!(a.rate(c, d), b.rate(c, d));
            }
        }
    }

    #[test]
    fn usd_is_identity() {
        let fx = FxSeries::generate(Seed::new(1), 30);
        for d in 0..30 {
            let r = fx.rate(Currency::Usd, d);
            assert_eq!(r.low, 1.0);
            assert_eq!(r.high, 1.0);
        }
        let p = Price::usd(Money::from_minor(1299));
        assert!((fx.to_usd_mid(p, 3) - 12.99).abs() < 1e-12);
    }

    #[test]
    fn rates_stay_near_parity() {
        let fx = FxSeries::generate(Seed::new(1307), 150);
        for &c in &Currency::ALL {
            let base = parity(c);
            for d in 0..150 {
                let r = fx.rate(c, d);
                assert!(
                    (r.mid() / base - 1.0).abs() <= MAX_DRIFT + INTRADAY_HALF_BAND + 1e-9,
                    "{c:?} day {d}: {}",
                    r.mid()
                );
            }
        }
    }

    #[test]
    fn low_below_high() {
        let fx = FxSeries::generate(Seed::new(2), 100);
        for &c in &Currency::ALL {
            for d in 0..100 {
                let r = fx.rate(c, d);
                assert!(r.low <= r.high);
                assert!(r.low > 0.0);
            }
        }
    }

    #[test]
    fn rates_actually_move_day_to_day() {
        let fx = FxSeries::generate(Seed::new(3), 100);
        let moved = (1..100).any(|d| {
            (fx.rate(Currency::Eur, d).mid() - fx.rate(Currency::Eur, d - 1).mid()).abs() > 1e-9
        });
        assert!(moved, "EUR series is frozen");
    }

    #[test]
    #[should_panic(expected = "outside FX series")]
    fn out_of_range_day_panics() {
        let fx = FxSeries::generate(Seed::new(1), 10);
        let _ = fx.rate(Currency::Eur, 10);
    }

    #[test]
    fn conversion_ordering() {
        let fx = FxSeries::generate(Seed::new(4), 10);
        let p = Price::new(Money::from_minor(10_000), Currency::Eur);
        let (lo, mid, hi) = (
            fx.to_usd_low(p, 5),
            fx.to_usd_mid(p, 5),
            fx.to_usd_high(p, 5),
        );
        assert!(lo < mid && mid < hi);
        // €100 is roughly $132.
        assert!((120.0..145.0).contains(&mid));
    }

    proptest! {
        #[test]
        fn prop_band_is_tight(day in 0usize..150, cidx in 0usize..9) {
            let fx = FxSeries::generate(Seed::new(1307), 150);
            let r = fx.rate(Currency::ALL[cidx], day);
            // Intraday band never exceeds 2×0.25 % of mid.
            prop_assert!(r.high - r.low <= r.mid() * 2.0 * INTRADAY_HALF_BAND + 1e-12);
        }
    }
}
