//! The exchange-band filter (Sec. 2.2 of the paper).
//!
//! Quoting the methodology: *"We convert the prices obtained by the
//! different vantage points for the same product into US dollars using
//! the daily lowest and highest exchange rates. We keep only products
//! whose price variation is strictly greater than the maximum gap that
//! can exist given the two extreme exchange rates in our dataset. This
//! guarantees that the observed price differences are not due to currency
//! translation issues."*
//!
//! Formally: each observed price maps to a USD *interval*
//! `[amount·rate_low, amount·rate_high]`. A set of same-product
//! observations shows a genuine variation **iff the intervals do not all
//! overlap** — i.e. the largest lower bound strictly exceeds the smallest
//! upper bound. The conservative variation ratio is then
//! `max_i(lo_i) / min_i(hi_i)`, a *lower bound* on the true ratio under
//! any realized exchange rates.

use crate::currency::Price;
use crate::rates::FxSeries;
use serde::{Deserialize, Serialize};

/// The USD value range a single observed price may represent, given the
/// day's exchange-rate band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UsdInterval {
    /// Lowest possible USD value.
    pub lo: f64,
    /// Highest possible USD value.
    pub hi: f64,
}

impl UsdInterval {
    /// Builds the interval for `price` on `day`.
    #[must_use]
    pub fn of(fx: &FxSeries, price: Price, day: usize) -> Self {
        UsdInterval {
            lo: fx.to_usd_low(price, day),
            hi: fx.to_usd_high(price, day),
        }
    }

    /// Midpoint (reporting only).
    #[must_use]
    pub fn mid(self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Outcome of the band filter over one product's same-day observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandVerdict {
    /// True iff the variation cannot be explained by exchange rates.
    pub genuine: bool,
    /// Conservative (lower-bound) max/min USD ratio. `1.0` when not
    /// genuine.
    pub conservative_ratio: f64,
    /// Midpoint-rate max/min ratio, for reporting. Compare with
    /// `conservative_ratio` to see how much the filter discounts.
    pub nominal_ratio: f64,
}

/// Applies the paper's exchange-band filter to one product's observations
/// from a single synchronized round (`prices[i]` observed on `day`).
///
/// Returns `None` for fewer than two observations — no comparison is
/// possible.
#[must_use]
pub fn band_filter(fx: &FxSeries, prices: &[Price], day: usize) -> Option<BandVerdict> {
    if prices.len() < 2 {
        return None;
    }
    let intervals: Vec<UsdInterval> = prices
        .iter()
        .map(|&p| UsdInterval::of(fx, p, day))
        .collect();
    let max_lo = intervals.iter().map(|i| i.lo).fold(f64::MIN, f64::max);
    let min_hi = intervals.iter().map(|i| i.hi).fold(f64::MAX, f64::min);
    let max_mid = intervals.iter().map(|i| i.mid()).fold(f64::MIN, f64::max);
    let min_mid = intervals.iter().map(|i| i.mid()).fold(f64::MAX, f64::min);
    let genuine = max_lo > min_hi && min_hi > 0.0;
    Some(BandVerdict {
        genuine,
        conservative_ratio: if genuine { max_lo / min_hi } else { 1.0 },
        nominal_ratio: if min_mid > 0.0 {
            max_mid / min_mid
        } else {
            1.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::currency::Currency;
    use pd_util::{Money, Seed};
    use proptest::prelude::*;

    fn fx() -> FxSeries {
        FxSeries::generate(Seed::new(1307), 160)
    }

    fn usd(minor: i64) -> Price {
        Price::new(Money::from_minor(minor), Currency::Usd)
    }

    fn eur(minor: i64) -> Price {
        Price::new(Money::from_minor(minor), Currency::Eur)
    }

    #[test]
    fn identical_usd_prices_are_not_genuine() {
        let v = band_filter(&fx(), &[usd(9999), usd(9999)], 3).unwrap();
        assert!(!v.genuine);
        assert_eq!(v.conservative_ratio, 1.0);
        assert!((v.nominal_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clear_same_currency_gap_is_genuine() {
        let v = band_filter(&fx(), &[usd(10_000), usd(13_000)], 3).unwrap();
        assert!(v.genuine);
        assert!((v.conservative_ratio - 1.3).abs() < 1e-9);
        assert!((v.nominal_ratio - 1.3).abs() < 1e-9);
    }

    #[test]
    fn pure_currency_translation_is_filtered_out() {
        // $100 vs its exact EUR equivalent at the daily mid rate: the
        // nominal ratio is ~1 but, crucially, the intervals overlap, so
        // the verdict must be "not genuine".
        let f = fx();
        let day = 7;
        let mid = f.rate(Currency::Eur, day).mid();
        let eur_equiv = (100.0 / mid * 100.0).round() as i64;
        let v = band_filter(&f, &[usd(10_000), eur(eur_equiv)], day).unwrap();
        assert!(!v.genuine, "currency translation misflagged: {v:?}");
    }

    #[test]
    fn genuine_cross_currency_gap_survives() {
        // $100 vs €130 (~$171): far outside any band.
        let v = band_filter(&fx(), &[usd(10_000), eur(13_000)], 7).unwrap();
        assert!(v.genuine);
        assert!(v.conservative_ratio > 1.5);
        // Conservative ratio is a lower bound on nominal.
        assert!(v.conservative_ratio <= v.nominal_ratio + 1e-12);
    }

    #[test]
    fn borderline_gap_inside_band_is_rejected() {
        // A cross-currency pair whose nominal ratio is smaller than the
        // band width must NOT be flagged.
        let f = fx();
        let day = 11;
        let mid = f.rate(Currency::Eur, day).mid();
        // EUR price whose mid-rate USD value is 0.2% above $100 — inside
        // the EUR side's ±0.25% band (USD, the numéraire, has no band).
        let eur_minor = (100.2 / mid * 100.0).round() as i64;
        let v = band_filter(&f, &[usd(10_000), eur(eur_minor)], day).unwrap();
        assert!(!v.genuine, "sub-band gap misflagged: {v:?}");
        assert!(v.nominal_ratio > 1.0);
    }

    #[test]
    fn single_observation_is_none() {
        assert!(band_filter(&fx(), &[usd(100)], 0).is_none());
        assert!(band_filter(&fx(), &[], 0).is_none());
    }

    #[test]
    fn many_vantage_points_mixed_currencies() {
        // 14-point observation: 12 equal, 2 inflated (multiplicative 1.2).
        let f = fx();
        let day = 30;
        let mid = f.rate(Currency::Eur, day).mid();
        let base_eur = (80.0 / mid * 100.0).round() as i64;
        let mut prices = vec![usd(8_000); 10];
        prices.push(eur(base_eur)); // same value in EUR
        prices.push(eur(
            (f64::from(u32::try_from(base_eur).unwrap()) * 1.2) as i64
        ));
        let v = band_filter(&f, &prices, day).unwrap();
        assert!(v.genuine);
        assert!((v.conservative_ratio - 1.2).abs() < 0.02);
    }

    proptest! {
        #[test]
        fn prop_conservative_never_exceeds_nominal(
            a in 1_000i64..1_000_000,
            b in 1_000i64..1_000_000,
            day in 0usize..150,
        ) {
            let v = band_filter(&fx(), &[usd(a), eur(b)], day).unwrap();
            prop_assert!(v.conservative_ratio <= v.nominal_ratio + 1e-9);
            prop_assert!(v.conservative_ratio >= 1.0);
        }

        #[test]
        fn prop_identical_prices_never_genuine(
            minor in 1_000i64..1_000_000,
            day in 0usize..150,
            n in 2usize..14,
        ) {
            let prices = vec![eur(minor); n];
            let v = band_filter(&fx(), &prices, day).unwrap();
            prop_assert!(!v.genuine);
        }

        #[test]
        fn prop_scaling_both_prices_preserves_verdict(
            minor in 1_000i64..100_000,
            day in 0usize..150,
        ) {
            // Multiplying both prices by 10 must not change the verdict:
            // the filter is scale-free.
            let v1 = band_filter(&fx(), &[usd(minor), eur(minor)], day).unwrap();
            let v2 = band_filter(&fx(), &[usd(minor * 10), eur(minor * 10)], day).unwrap();
            prop_assert_eq!(v1.genuine, v2.genuine);
        }
    }
}
