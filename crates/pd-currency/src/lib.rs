//! Currency substrate.
//!
//! The paper's vantage points "can be displayed prices on different
//! currencies (the local one) because retailers typically geo-locate
//! their IP address" (Sec. 2.2). Comparing those prices without
//! committing false positives requires the paper's most careful piece of
//! methodology: conversion to USD at the *daily lowest and highest*
//! exchange rates, keeping only price variations "strictly greater than
//! the maximum gap that can exist given the two extreme exchange rates".
//!
//! This crate provides everything around that:
//!
//! * [`currency`] — the currencies of the simulated countries, with
//!   minor-unit conventions (JPY has none),
//! * [`locale`] — per-country price *formatting* ("$1,234.56" vs
//!   "1.234,56 €" vs "1 234,56 zł") and exact locale-aware parsing; the
//!   "diverse number formats across countries" the paper lists as a noise
//!   source live here,
//! * [`rates`] — a seeded daily high/low FX series calibrated to 2013
//!   parities (substitution for the historical ECB feed, per DESIGN.md),
//! * [`filter`] — the exchange-band filter itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod currency;
pub mod filter;
pub mod locale;
pub mod rates;

pub use currency::{Currency, Price};
pub use filter::{band_filter, UsdInterval};
pub use locale::{Locale, ParsePriceError};
pub use rates::{DailyRate, FxSeries};
