//! Fig. 3, Fig. 4 and Fig. 5: the crawled dataset's aggregate views.

use crate::crowd::RatioBox;
use crate::frame::CheckFrame;
use pd_util::stats::{fraction_above, log_bucketize, BoxStats, LogBucket};
use serde::{Deserialize, Serialize};

/// One bar of Fig. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Bar {
    /// Domain.
    pub domain: String,
    /// Fraction of checks with a confirmed price variation (the paper's
    /// "extent of price differences", 0..=1).
    pub extent: f64,
    /// Number of checks behind the fraction.
    pub checks: usize,
}

/// Fig. 3 — extent of price variation per crawled domain. The paper's
/// headline: "for the majority of retailers in the crawled dataset, we
/// see the extent of price variation to be near complete (100%)".
#[must_use]
pub fn fig3_extent(frame: &CheckFrame) -> Vec<Fig3Bar> {
    let mut out: Vec<Fig3Bar> = frame
        .domains()
        .into_iter()
        .map(|domain| {
            let ratios: Vec<f64> = frame.by_domain(&domain).map(|r| r.ratio).collect();
            Fig3Bar {
                domain: domain.to_string(),
                extent: fraction_above(&ratios, 1.0),
                checks: ratios.len(),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.extent
            .partial_cmp(&a.extent)
            .expect("extent is finite")
            .then_with(|| a.domain.cmp(&b.domain))
    });
    out
}

/// Fig. 4 — magnitude of price variability per crawled domain: box
/// statistics of the per-product ratio (median across the product's
/// daily checks; the median absorbs day-level noise like A/B flips,
/// matching the paper's "repeated the same set of measurements multiple
/// times" methodology).
#[must_use]
pub fn fig4_magnitude(frame: &CheckFrame) -> Vec<RatioBox> {
    let mut per_domain: std::collections::BTreeMap<std::sync::Arc<str>, Vec<f64>> =
        std::collections::BTreeMap::new();
    for ((domain, _slug), rows) in frame.by_product() {
        let mut daily: Vec<f64> = rows.iter().map(|r| r.ratio).collect();
        daily.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = pd_util::stats::quantile_sorted(&daily, 0.5);
        per_domain.entry(domain).or_default().push(median);
    }
    per_domain
        .into_iter()
        .filter_map(|(domain, ratios)| {
            BoxStats::compute(&ratios).map(|stats| RatioBox {
                domain: domain.to_string(),
                stats,
            })
        })
        .collect()
}

/// One point of Fig. 5's scatter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Domain.
    pub domain: String,
    /// Product slug.
    pub slug: String,
    /// Minimum observed USD price of the product (x-axis).
    pub min_price: f64,
    /// Maximal ratio of price difference over all checks (y-axis).
    pub max_ratio: f64,
}

/// Fig. 5 — "Maximal ratio of price differences per product price (all
/// stores)": one point per product, plus the log-bucketed envelope the
/// paper's claims quantify (×3 near $10, ≤×1.5 past $2K).
#[must_use]
pub fn fig5_scatter(frame: &CheckFrame) -> (Vec<Fig5Point>, Vec<LogBucket>) {
    let points: Vec<Fig5Point> = frame
        .by_product()
        .into_iter()
        .map(|((domain, slug), rows)| {
            let min_price = rows.iter().map(|r| r.min_usd).fold(f64::MAX, f64::min);
            let max_ratio = rows.iter().map(|r| r.ratio).fold(1.0f64, f64::max);
            Fig5Point {
                domain: domain.to_string(),
                slug: slug.to_string(),
                min_price,
                max_ratio,
            }
        })
        .collect();
    let pairs: Vec<(f64, f64)> = points.iter().map(|p| (p.min_price, p.max_ratio)).collect();
    let envelope = log_bucketize(&pairs, 1.0, 10_000.0, 2);
    (points, envelope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::CheckRow;
    use pd_util::{RequestId, VantageId};

    fn row(domain: &str, slug: &str, day: usize, min_usd: f64, ratio: f64) -> CheckRow {
        CheckRow {
            request: RequestId::new(0),
            domain: domain.into(),
            slug: slug.into(),
            day,
            usd: vec![
                (VantageId::new(0), min_usd),
                (VantageId::new(1), min_usd * ratio),
            ],
            genuine: ratio > 1.0,
            ratio,
            min_usd,
        }
    }

    fn frame(rows: Vec<CheckRow>) -> CheckFrame {
        serde_json::from_value(serde_json::json!({ "rows": rows })).unwrap()
    }

    #[test]
    fn fig3_full_and_partial_extent() {
        let f = frame(vec![
            row("full.example", "a", 0, 100.0, 1.2),
            row("full.example", "b", 0, 100.0, 1.3),
            row("half.example", "a", 0, 100.0, 1.2),
            row("half.example", "b", 0, 100.0, 1.0),
        ]);
        let bars = fig3_extent(&f);
        assert_eq!(bars[0].domain, "full.example");
        assert_eq!(bars[0].extent, 1.0);
        assert_eq!(bars[1].domain, "half.example");
        assert_eq!(bars[1].extent, 0.5);
        assert_eq!(bars[1].checks, 2);
    }

    #[test]
    fn fig4_uses_per_product_daily_median() {
        // One product, three days: 1.0, 1.2, 1.2 → median 1.2. A/B-style
        // flicker on one day must not drag the product to 1.0.
        let f = frame(vec![
            row("a.example", "p", 0, 100.0, 1.0),
            row("a.example", "p", 1, 100.0, 1.2),
            row("a.example", "p", 2, 100.0, 1.2),
        ]);
        let boxes = fig4_magnitude(&f);
        assert_eq!(boxes.len(), 1);
        assert!((boxes[0].stats.median - 1.2).abs() < 1e-9);
        assert_eq!(boxes[0].stats.count, 1, "one product, one value");
    }

    #[test]
    fn fig5_takes_max_ratio_and_min_price() {
        let f = frame(vec![
            row("a.example", "p", 0, 110.0, 1.1),
            row("a.example", "p", 1, 100.0, 1.4),
            row("a.example", "q", 0, 20.0, 3.0),
        ]);
        let (points, envelope) = fig5_scatter(&f);
        assert_eq!(points.len(), 2);
        let p = points.iter().find(|p| p.slug == "p").unwrap();
        assert_eq!(p.min_price, 100.0);
        assert_eq!(p.max_ratio, 1.4);
        let q = points.iter().find(|p| p.slug == "q").unwrap();
        assert_eq!(q.max_ratio, 3.0);
        // Envelope spans the $1–$10K axis at 2 buckets/decade.
        assert_eq!(envelope.len(), 8);
        let total: usize = envelope.iter().map(|b| b.count).sum();
        assert_eq!(total, 2);
    }
}
