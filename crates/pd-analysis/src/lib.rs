//! Figure and table analyses (Sec. 3.2 and Sec. 4 of the paper).
//!
//! Every artifact of the paper's evaluation has a function here that
//! turns measurement stores into the exact series/statistics the figure
//! plots, plus an ASCII renderer used by the `figures` binary:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`crowd`] | Fig. 1 (request counts), Fig. 2 (crowd ratio boxplots) |
//! | [`crawl`] | Fig. 3 (extent), Fig. 4 (magnitude), Fig. 5 (ratio vs price) |
//! | [`strategy`] | Fig. 6 (multiplicative vs additive curves) |
//! | [`location`] | Fig. 7 (per-location boxplots), Fig. 8 (pairwise grids), Fig. 9 (Finland) |
//! | [`login`] | Fig. 10 (login impact) + persona null result |
//! | [`thirdparty`] | Sec. 4.4 third-party presence scan |
//! | [`summary`] | Sec. 3.2 dataset statistics |
//! | [`attribution`] | Sec. 6's future work: per-factor attribution by controlled probing |
//!
//! All analyses consume the *operational* data (extracted prices and the
//! shared FX series) — never the simulator's ground truth — so the
//! pipeline is exactly as blind as the paper's was. The common
//! representation is [`frame::CheckFrame`], one row per synchronized
//! check with band-filter verdicts precomputed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod attribution;
pub mod crawl;
pub mod crowd;
pub mod frame;
pub mod location;
pub mod login;
pub mod strategy;
pub mod summary;
pub mod thirdparty;

pub use attribution::{attribute, Attribution, Factor, ProbeSet};
pub use frame::{CheckFrame, CheckRow};
