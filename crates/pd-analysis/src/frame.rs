//! The check frame: measurements reduced to analysis-ready rows.
//!
//! One [`CheckRow`] per synchronized check: per-vantage USD values
//! (mid-rate conversion, reporting only), the exchange-band verdict
//! (decision-grade), and the nominal max/min ratio. Everything downstream
//! — all ten figures — reads this frame.

use pd_currency::{band_filter, FxSeries};
use pd_sheriff::{Measurement, MeasurementStore};
use pd_util::{intern, RequestId, VantageId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One synchronized check, analysis-ready.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckRow {
    /// The source measurement's dense request id — its position in the
    /// producing [`MeasurementStore`]. Per-domain shards built with
    /// [`CheckFrame::build_domain`] keep it, so
    /// [`CheckFrame::merge_shards`] can splice shards back into exact
    /// store order.
    pub request: RequestId,
    /// Retailer domain (interned: clones are refcount bumps).
    pub domain: Arc<str>,
    /// Product slug (interned: clones are refcount bumps).
    pub slug: Arc<str>,
    /// Simulation day of the check.
    pub day: usize,
    /// Per-vantage USD values (mid-rate), only successful extractions.
    pub usd: Vec<(VantageId, f64)>,
    /// True iff the variation survives the exchange-band filter.
    pub genuine: bool,
    /// Nominal max/min USD ratio (1.0 when not genuine or degenerate).
    pub ratio: f64,
    /// Minimum USD value across vantage points.
    pub min_usd: f64,
}

impl CheckRow {
    /// Builds a row from a measurement.
    #[must_use]
    pub fn from_measurement(m: &Measurement, fx: &FxSeries) -> Option<CheckRow> {
        let day = m.day().min(fx.days().saturating_sub(1));
        let usd: Vec<(VantageId, f64)> = m
            .observations
            .iter()
            .filter_map(|o| o.price.map(|p| (o.vantage, fx.to_usd_mid(p, day))))
            .collect();
        if usd.len() < 2 {
            return None;
        }
        let prices = m.prices();
        let verdict = band_filter(fx, &prices, day)?;
        let min_usd = usd.iter().map(|(_, v)| *v).fold(f64::MAX, f64::min);
        Some(CheckRow {
            request: m.request,
            domain: intern(&m.domain),
            slug: intern(&m.product_slug),
            day,
            usd,
            genuine: verdict.genuine,
            ratio: if verdict.genuine {
                verdict.nominal_ratio
            } else {
                1.0
            },
            min_usd,
        })
    }

    /// USD value at one vantage point, if extracted.
    #[must_use]
    pub fn usd_at(&self, vantage: VantageId) -> Option<f64> {
        self.usd
            .iter()
            .find(|(v, _)| *v == vantage)
            .map(|(_, value)| *value)
    }
}

/// An interned `(domain, slug)` pair — the grouping key of
/// [`CheckFrame::by_product`]. Clones are refcount bumps.
pub type ProductKey = (Arc<str>, Arc<str>);

/// A collection of check rows with domain/product indexing.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CheckFrame {
    rows: Vec<CheckRow>,
}

impl CheckFrame {
    /// Builds the frame from a measurement store. Rows that cannot be
    /// analyzed (fewer than two successful extractions) are skipped, as
    /// the paper's cleaning discards them.
    #[must_use]
    pub fn build(store: &MeasurementStore, fx: &FxSeries) -> Self {
        CheckFrame {
            rows: store
                .records()
                .iter()
                .filter_map(|m| CheckRow::from_measurement(m, fx))
                .collect(),
        }
    }

    /// Builds a frame restricted to a single retailer's checks. Useful
    /// for per-retailer analysis fan-out: building one frame per crawled
    /// domain (in any order, or concurrently) and analyzing each shard
    /// yields the same per-domain results as filtering the full frame.
    /// Rows keep their source [`CheckRow::request`] position, so
    /// [`CheckFrame::merge_shards`] can reassemble the shards into the
    /// exact frame [`CheckFrame::build`] would produce.
    #[must_use]
    pub fn build_domain(store: &MeasurementStore, fx: &FxSeries, domain: &str) -> Self {
        CheckFrame {
            rows: store
                .by_domain(domain)
                .filter_map(|m| CheckRow::from_measurement(m, fx))
                .collect(),
        }
    }

    /// Builds a frame from pre-built rows, trusting the caller's
    /// filtering (advanced: for callers that partition a store
    /// themselves, like the engine's frame cache, where re-scanning the
    /// store per domain would be quadratic).
    #[must_use]
    pub fn from_rows(rows: Vec<CheckRow>) -> Self {
        CheckFrame { rows }
    }

    /// Splices per-domain shards (any order) back into store order: the
    /// result is row-for-row equal to [`CheckFrame::build`] on the full
    /// store the shards were cut from. This is what lets the engine
    /// build (and cache) frames one retailer at a time — in parallel —
    /// without perturbing a single figure.
    #[must_use]
    pub fn merge_shards<'a>(shards: impl IntoIterator<Item = &'a CheckFrame>) -> Self {
        let mut rows: Vec<CheckRow> = shards
            .into_iter()
            .flat_map(|shard| shard.rows.iter().cloned())
            .collect();
        // Request ids are dense store positions, so this sort is exactly
        // "original store order" (keys are unique; unstable is safe).
        rows.sort_unstable_by_key(|r| r.request.index());
        CheckFrame { rows }
    }

    /// All rows.
    #[must_use]
    pub fn rows(&self) -> &[CheckRow] {
        &self.rows
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Distinct domains in first-seen order (cheap `Arc` clones).
    #[must_use]
    pub fn domains(&self) -> Vec<Arc<str>> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for r in &self.rows {
            if seen.insert(&*r.domain) {
                out.push(Arc::clone(&r.domain));
            }
        }
        out
    }

    /// Rows of one domain.
    pub fn by_domain<'a>(&'a self, domain: &'a str) -> impl Iterator<Item = &'a CheckRow> {
        self.rows.iter().filter(move |r| &*r.domain == domain)
    }

    /// Rows grouped per product `(domain, slug)`, preserving first-seen
    /// product order.
    #[must_use]
    pub fn by_product(&self) -> Vec<(ProductKey, Vec<&CheckRow>)> {
        let mut order: Vec<ProductKey> = Vec::new();
        let mut map: std::collections::HashMap<ProductKey, Vec<&CheckRow>> =
            std::collections::HashMap::new();
        for r in &self.rows {
            let key = (Arc::clone(&r.domain), Arc::clone(&r.slug));
            if !map.contains_key(&key) {
                order.push(key.clone());
            }
            map.entry(key).or_default().push(r);
        }
        order
            .into_iter()
            .map(|k| {
                let v = map.remove(&k).expect("key inserted above");
                (k, v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_currency::{Currency, Price};
    use pd_net::clock::SimTime;
    use pd_sheriff::measurement::NoiseTruth;
    use pd_sheriff::PriceObservation;
    use pd_util::{Money, RequestId, Seed, UserId};

    fn fx() -> FxSeries {
        FxSeries::generate(Seed::new(1307), 160)
    }

    fn meas(domain: &str, slug: &str, prices_minor: &[Option<i64>]) -> Measurement {
        Measurement {
            request: RequestId::new(0),
            user: UserId::new(0),
            domain: domain.into(),
            product_slug: slug.into(),
            time: SimTime::from_millis(2 * 24 * 3_600_000),
            user_price: None,
            observations: prices_minor
                .iter()
                .enumerate()
                .map(|(i, p)| match p {
                    Some(minor) => PriceObservation::ok(
                        VantageId::new(i as u32),
                        Price::new(Money::from_minor(*minor), Currency::Usd),
                        String::new(),
                    ),
                    None => PriceObservation::failed(VantageId::new(i as u32), "x".into()),
                })
                .collect(),
            noise_truth: NoiseTruth::Clean,
        }
    }

    #[test]
    fn row_computes_ratio_and_verdict() {
        let m = meas("a.example", "p", &[Some(10_000), Some(13_000)]);
        let row = CheckRow::from_measurement(&m, &fx()).unwrap();
        assert!(row.genuine);
        assert!((row.ratio - 1.3).abs() < 1e-9);
        assert!((row.min_usd - 100.0).abs() < 1e-9);
        assert_eq!(row.day, 2);
        assert_eq!(row.usd_at(VantageId::new(0)), Some(100.0));
        assert_eq!(row.usd_at(VantageId::new(9)), None);
    }

    #[test]
    fn flat_prices_ratio_one() {
        let m = meas("a.example", "p", &[Some(5_000), Some(5_000), Some(5_000)]);
        let row = CheckRow::from_measurement(&m, &fx()).unwrap();
        assert!(!row.genuine);
        assert_eq!(row.ratio, 1.0);
    }

    #[test]
    fn too_few_extractions_skipped() {
        let m = meas("a.example", "p", &[Some(5_000), None, None]);
        assert!(CheckRow::from_measurement(&m, &fx()).is_none());
    }

    #[test]
    fn frame_grouping() {
        let mut store = MeasurementStore::new();
        store.push(meas("a.example", "p1", &[Some(100), Some(130)]));
        store.push(meas("a.example", "p1", &[Some(100), Some(120)]));
        store.push(meas("a.example", "p2", &[Some(100), Some(100)]));
        store.push(meas("b.example", "q", &[Some(200), Some(300)]));
        let frame = CheckFrame::build(&store, &fx());
        assert_eq!(frame.len(), 4);
        assert_eq!(
            frame
                .domains()
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>(),
            vec!["a.example", "b.example"]
        );
        assert_eq!(frame.by_domain("a.example").count(), 3);
        let products = frame.by_product();
        assert_eq!(products.len(), 3);
        assert_eq!(products[0].0, ("a.example".into(), "p1".into()));
        assert_eq!(products[0].1.len(), 2);
    }

    #[test]
    fn domain_frame_matches_filtered_full_frame() {
        let mut store = MeasurementStore::new();
        store.push(meas("a.example", "p1", &[Some(100), Some(130)]));
        store.push(meas("b.example", "q", &[Some(200), Some(300)]));
        store.push(meas("a.example", "p2", &[Some(100), Some(100)]));
        let full = CheckFrame::build(&store, &fx());
        let shard = CheckFrame::build_domain(&store, &fx(), "a.example");
        let filtered: Vec<&CheckRow> = full.by_domain("a.example").collect();
        assert_eq!(shard.len(), filtered.len());
        for (a, b) in shard.rows().iter().zip(filtered) {
            assert_eq!(a, b);
        }
        assert!(CheckFrame::build_domain(&store, &fx(), "gone.example").is_empty());
    }

    #[test]
    fn merged_shards_equal_full_build() {
        let mut store = MeasurementStore::new();
        // Interleaved domains, so splicing genuinely has to reorder.
        store.push(meas("a.example", "p1", &[Some(100), Some(130)]));
        store.push(meas("b.example", "q", &[Some(200), Some(300)]));
        store.push(meas("a.example", "p2", &[Some(100), None, None])); // skipped row
        store.push(meas("c.example", "r", &[Some(50), Some(55)]));
        store.push(meas("b.example", "q", &[Some(210), Some(290)]));
        let full = CheckFrame::build(&store, &fx());
        let shards: Vec<CheckFrame> = store
            .domains()
            .iter()
            // Reversed build order: merge_shards must not care.
            .rev()
            .map(|d| CheckFrame::build_domain(&store, &fx(), d))
            .collect();
        let merged = CheckFrame::merge_shards(&shards);
        assert_eq!(merged.rows(), full.rows());
    }
}
