//! Factor attribution — the paper's future work, implemented.
//!
//! Sec. 6: "In addition to scaling up the search for price
//! discrimination it would be desirable if we could attribute the
//! observed prices with the personal information of a user."
//!
//! This module does that by *controlled probing*: for one retailer, hold
//! every request attribute fixed and vary exactly one factor at a time —
//! country, city within a country, browser session, calendar day, login
//! state — then test whether prices move. Cross-currency comparisons go
//! through the exchange-band filter; same-currency comparisons use an
//! exact cent-level test. The result is a per-factor verdict with the
//! largest observed ratio, i.e. precisely the attribution table the
//! authors wanted.

use pd_currency::{band_filter, Locale, Price};
use pd_extract::HighlightExtractor;
use pd_net::clock::SimTime;
use pd_net::geo::{Country, Location};
use pd_web::template::price_selector;
use pd_web::{Request, WebWorld};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A request attribute the prober can isolate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Factor {
    /// Client country (geo-IP granularity).
    Country,
    /// City within one country (CDN/zip granularity).
    CityWithinCountry,
    /// Browser session (cookie identity).
    Session,
    /// Calendar day.
    Day,
    /// Login state.
    Login,
}

impl Factor {
    /// All probe-able factors.
    pub const ALL: [Factor; 5] = [
        Factor::Country,
        Factor::CityWithinCountry,
        Factor::Session,
        Factor::Day,
        Factor::Login,
    ];
}

/// The verdict for one factor at one retailer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorEffect {
    /// The isolated factor.
    pub factor: Factor,
    /// Whether varying only this factor moved any probed price.
    pub varies: bool,
    /// Largest max/min ratio observed across probed products (1.0 when
    /// nothing moved).
    pub max_ratio: f64,
    /// Products probed.
    pub products: usize,
}

/// Attribution table for one retailer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribution {
    /// Retailer domain.
    pub domain: String,
    /// One verdict per factor, in [`Factor::ALL`] order.
    pub effects: Vec<FactorEffect>,
}

impl Attribution {
    /// The verdict for one factor.
    ///
    /// # Panics
    ///
    /// Never — every factor is probed.
    #[must_use]
    pub fn effect(&self, factor: Factor) -> &FactorEffect {
        self.effects
            .iter()
            .find(|e| e.factor == factor)
            .expect("all factors probed")
    }

    /// Factors that move prices at this retailer.
    #[must_use]
    pub fn varying_factors(&self) -> Vec<Factor> {
        self.effects
            .iter()
            .filter(|e| e.varies)
            .map(|e| e.factor)
            .collect()
    }
}

/// Probe endpoints: client addresses at the locations the prober needs.
/// Build once from the vantage fleet and reuse across domains.
#[derive(Debug, Clone)]
pub struct ProbeSet {
    /// A US baseline (e.g. Boston).
    pub us_a: (Ipv4Addr, Location),
    /// A second US city (e.g. Chicago) for the city factor.
    pub us_b: (Ipv4Addr, Location),
    /// A third US city (e.g. New York) for the city factor.
    pub us_c: (Ipv4Addr, Location),
    /// A foreign endpoint (e.g. Finland) for the country factor.
    pub foreign: (Ipv4Addr, Location),
}

/// Relative tolerance for same-currency comparisons: anything above a
/// tenth of a percent is a real move (cent rounding is far below).
const SAME_CURRENCY_EPS: f64 = 0.001;

/// Sessions probed per product for the session factor (an A/B test with
/// treatment fraction ≥ 0.1 is detected with probability > 99.99 % over
/// 10 products × 6 sessions).
const SESSIONS_PER_PRODUCT: usize = 6;

/// Runs the controlled probe against one retailer.
///
/// `products` bounds the probe size; `base_day` must leave one spare day
/// in the FX series for the day factor.
#[must_use]
pub fn attribute(
    world: &WebWorld,
    probes: &ProbeSet,
    domain: &str,
    products: usize,
    base_day: u64,
) -> Option<Attribution> {
    let server = world.server_by_domain(domain)?;
    let style = server.spec().template_style;
    let slugs: Vec<String> = server
        .catalog()
        .iter()
        .take(products)
        .map(|p| p.slug.clone())
        .collect();
    if slugs.is_empty() {
        return None;
    }
    let t0 = SimTime::from_millis(base_day * 24 * 3_600_000 + 10 * 3_600_000);
    let t1 = SimTime::from_millis((base_day + 1) * 24 * 3_600_000 + 10 * 3_600_000);

    let fetch = |slug: &str,
                 addr: Ipv4Addr,
                 country: Country,
                 time: SimTime,
                 cookies: &[(&str, &str)]|
     -> Option<Price> {
        let mut req = Request::get(domain, &format!("/product/{slug}"), addr, time);
        for (n, v) in cookies {
            req = req.with_cookie(n, v);
        }
        let resp = world.fetch(&req);
        if resp.status.code() != 200 {
            return None;
        }
        let doc = pd_html::parse(&resp.body);
        let ex = HighlightExtractor::from_highlight(&doc, &price_selector(style))?;
        ex.extract(&doc, Some(Locale::of_country(country)))
            .ok()
            .map(|e| e.price)
    };

    // Cross-currency pair: genuine iff the band filter confirms.
    let cross_ratio = |a: Price, b: Price, day: usize| -> (bool, f64) {
        match band_filter(world.fx(), &[a, b], day) {
            Some(v) if v.genuine => (true, v.nominal_ratio),
            _ => (false, 1.0),
        }
    };
    // Same-currency set: exact comparison, FX-free.
    let same_ratio = |prices: &[Price]| -> (bool, f64) {
        let vals: Vec<i64> = prices.iter().map(|p| p.amount.to_minor()).collect();
        let (lo, hi) = (
            *vals.iter().min().expect("nonempty"),
            *vals.iter().max().expect("nonempty"),
        );
        if lo <= 0 {
            return (false, 1.0);
        }
        let ratio = hi as f64 / lo as f64;
        (ratio > 1.0 + SAME_CURRENCY_EPS, ratio)
    };

    let mut effects = Vec::with_capacity(Factor::ALL.len());
    let sid = [("sid", "9001")];
    for factor in Factor::ALL {
        let mut varies = false;
        let mut max_ratio = 1.0f64;
        for slug in &slugs {
            let (v, r) = match factor {
                Factor::Country => {
                    let (Some(a), Some(b)) = (
                        fetch(slug, probes.us_a.0, probes.us_a.1.country, t0, &sid),
                        fetch(slug, probes.foreign.0, probes.foreign.1.country, t0, &sid),
                    ) else {
                        continue;
                    };
                    cross_ratio(a, b, base_day as usize)
                }
                Factor::CityWithinCountry => {
                    let ps: Vec<Price> = [&probes.us_a, &probes.us_b, &probes.us_c]
                        .iter()
                        .filter_map(|(addr, loc)| fetch(slug, *addr, loc.country, t0, &sid))
                        .collect();
                    if ps.len() < 3 {
                        continue;
                    }
                    same_ratio(&ps)
                }
                Factor::Session => {
                    let ps: Vec<Price> = (0..SESSIONS_PER_PRODUCT)
                        .filter_map(|k| {
                            let sid_k = format!("77{k}");
                            fetch(
                                slug,
                                probes.us_a.0,
                                probes.us_a.1.country,
                                t0,
                                &[("sid", sid_k.as_str())],
                            )
                        })
                        .collect();
                    if ps.len() < 2 {
                        continue;
                    }
                    same_ratio(&ps)
                }
                Factor::Day => {
                    let (Some(a), Some(b)) = (
                        fetch(slug, probes.us_a.0, probes.us_a.1.country, t0, &sid),
                        fetch(slug, probes.us_a.0, probes.us_a.1.country, t1, &sid),
                    ) else {
                        continue;
                    };
                    same_ratio(&[a, b])
                }
                Factor::Login => {
                    let (Some(a), Some(b)) = (
                        fetch(slug, probes.us_a.0, probes.us_a.1.country, t0, &sid),
                        fetch(
                            slug,
                            probes.us_a.0,
                            probes.us_a.1.country,
                            t0,
                            &[("sid", "9001"), ("login", "3")],
                        ),
                    ) else {
                        continue;
                    };
                    same_ratio(&[a, b])
                }
            };
            varies |= v;
            max_ratio = max_ratio.max(r);
        }
        effects.push(FactorEffect {
            factor,
            varies,
            max_ratio,
            products: slugs.len(),
        });
    }
    Some(Attribution {
        domain: domain.to_owned(),
        effects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_util::Seed;

    fn rig() -> (WebWorld, ProbeSet) {
        let seed = Seed::new(1307);
        let mut world = WebWorld::build(seed, pd_pricing::paper_retailers(seed), 160);
        let mk = |w: &mut WebWorld, c, city: &str| {
            let loc = Location::new(c, city);
            (w.allocate_client(&loc), loc)
        };
        let probes = ProbeSet {
            us_a: mk(&mut world, Country::UnitedStates, "Boston"),
            us_b: mk(&mut world, Country::UnitedStates, "Chicago"),
            us_c: mk(&mut world, Country::UnitedStates, "New York"),
            foreign: mk(&mut world, Country::Finland, "Tampere"),
        };
        (world, probes)
    }

    fn attr(world: &WebWorld, probes: &ProbeSet, domain: &str) -> Attribution {
        attribute(world, probes, domain, 10, 50).expect("domain exists")
    }

    #[test]
    fn digitalrev_is_location_only() {
        let (world, probes) = rig();
        let a = attr(&world, &probes, "www.digitalrev.com");
        assert!(a.effect(Factor::Country).varies);
        assert!((a.effect(Factor::Country).max_ratio - 1.26).abs() < 0.02);
        assert!(!a.effect(Factor::CityWithinCountry).varies);
        assert!(!a.effect(Factor::Session).varies);
        assert!(!a.effect(Factor::Day).varies);
        assert!(!a.effect(Factor::Login).varies);
        assert_eq!(a.varying_factors(), vec![Factor::Country]);
    }

    #[test]
    fn homedepot_varies_by_city() {
        let (world, probes) = rig();
        let a = attr(&world, &probes, "www.homedepot.com");
        assert!(
            a.effect(Factor::CityWithinCountry).varies,
            "city-level pricing must be attributed: {a:?}"
        );
        assert!(!a.effect(Factor::Session).varies);
        assert!(!a.effect(Factor::Login).varies);
    }

    #[test]
    fn amazon_varies_by_session_not_login() {
        let (world, probes) = rig();
        let a = attr(&world, &probes, "www.amazon.com");
        assert!(a.effect(Factor::Session).varies, "{a:?}");
        assert!(!a.effect(Factor::Login).varies, "{a:?}");
        assert!(a.effect(Factor::Country).varies);
        assert!(!a.effect(Factor::CityWithinCountry).varies);
    }

    #[test]
    fn booking_varies_by_day() {
        let (world, probes) = rig();
        let a = attr(&world, &probes, "www.booking.com");
        assert!(a.effect(Factor::Day).varies, "{a:?}");
        assert!(a.effect(Factor::Day).max_ratio < 1.12, "drift is small");
    }

    #[test]
    fn ab_test_retailer_attributed_to_session() {
        let (world, probes) = rig();
        let a = attr(&world, &probes, "www.sears.com");
        assert!(a.effect(Factor::Session).varies, "{a:?}");
        assert!(!a.effect(Factor::Country).varies, "{a:?}");
    }

    #[test]
    fn unknown_domain_is_none() {
        let (world, probes) = rig();
        assert!(attribute(&world, &probes, "gone.example", 5, 50).is_none());
    }
}
