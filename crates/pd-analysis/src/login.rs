//! Fig. 10 and the persona null result (Sec. 4.4).
//!
//! The measurement harnesses live in `pd_sheriff::personas`; this module
//! reduces their output to the figure's series and headline statistics.

use pd_sheriff::personas::{LoginExperiment, PersonaExperiment};
use serde::{Deserialize, Serialize};

/// One Fig. 10 row: `(product #, w/o login, user A, user B, user C)`,
/// prices in USD.
pub type Fig10Row = (usize, Option<f64>, Option<f64>, Option<f64>, Option<f64>);

/// Fig. 10's plotted series plus its two headline statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10 {
    /// Domain measured.
    pub domain: String,
    /// Per-product USD prices: `(product #, w/o login, user A, B, C)`.
    pub series: Vec<Fig10Row>,
    /// Fraction of products whose four identities disagree.
    pub variation_fraction: f64,
    /// Pearson correlation between login status and normalized price
    /// (paper: no meaningful correlation).
    pub login_correlation: Option<f64>,
}

/// Reduces a login experiment to Fig. 10.
#[must_use]
pub fn fig10(exp: &LoginExperiment) -> Fig10 {
    let series = exp
        .rows
        .iter()
        .map(|r| {
            let f = |p: Option<pd_currency::Price>| p.map(|p| p.amount.to_f64());
            (
                r.product,
                f(r.without_login),
                f(r.users[0]),
                f(r.users[1]),
                f(r.users[2]),
            )
        })
        .collect();
    Fig10 {
        domain: exp.domain.clone(),
        series,
        variation_fraction: exp.variation_fraction(),
        login_correlation: exp.login_price_correlation(),
    }
}

/// The persona experiment's summary line (the paper's: "we find no price
/// differences").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersonaSummary {
    /// Retailers measured.
    pub domains: Vec<String>,
    /// Checked (retailer, product) pairs.
    pub total_pairs: usize,
    /// Pairs where personas saw different prices.
    pub differing_pairs: usize,
    /// True iff the null result reproduced.
    pub null_result: bool,
}

/// Reduces a persona experiment.
#[must_use]
pub fn persona_summary(exp: &PersonaExperiment) -> PersonaSummary {
    PersonaSummary {
        domains: exp.domains.clone(),
        total_pairs: exp.total_pairs,
        differing_pairs: exp.differing_pairs,
        null_result: exp.differing_pairs == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_currency::{Currency, Price};
    use pd_sheriff::personas::LoginRow;
    use pd_util::Money;

    fn price(minor: i64) -> Option<Price> {
        Some(Price::new(Money::from_minor(minor), Currency::Usd))
    }

    #[test]
    fn fig10_reduces_series() {
        let exp = LoginExperiment {
            domain: "www.amazon.com".into(),
            rows: vec![
                LoginRow {
                    product: 0,
                    slug: "a".into(),
                    without_login: price(1_000),
                    users: [price(1_050), price(990), price(1_010)],
                },
                LoginRow {
                    product: 1,
                    slug: "b".into(),
                    without_login: price(700),
                    users: [price(700), price(700), price(700)],
                },
            ],
        };
        let fig = fig10(&exp);
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[0].1, Some(10.0));
        assert!((fig.variation_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn persona_summary_null() {
        let exp = PersonaExperiment {
            domains: vec!["a".into()],
            products_per_retailer: 5,
            differing_pairs: 0,
            total_pairs: 5,
        };
        let s = persona_summary(&exp);
        assert!(s.null_result);
        let exp2 = PersonaExperiment {
            differing_pairs: 1,
            ..exp
        };
        assert!(!persona_summary(&exp2).null_result);
    }
}
