//! ASCII renderers for the `figures` binary.
//!
//! Each figure's data structure gets a terminal rendering that mirrors
//! the paper's plot: ranked bars (Figs. 1, 3), labeled boxplot rows
//! (Figs. 2, 4, 7, 9), a log-bucketed envelope (Fig. 5), per-location
//! curve summaries (Fig. 6), the pairwise relation grid (Fig. 8), and the
//! four-series table (Fig. 10).

use crate::crawl::Fig3Bar;
use crate::crowd::{Fig1Bar, RatioBox};
use crate::location::{Fig7Box, Fig8Cell, Fig9Box, PairRelation};
use crate::login::Fig10;
use crate::strategy::LocationCurve;
use pd_util::stats::LogBucket;
use std::fmt::Write as _;

const BAR_WIDTH: usize = 40;

/// Renders Fig. 1 as ranked bars.
#[must_use]
pub fn render_fig1(bars: &[Fig1Bar]) -> String {
    let mut out = String::from("Fig.1  Domains with most requests showing price differences\n");
    let max = bars
        .iter()
        .map(|b| b.differing_requests)
        .max()
        .unwrap_or(1)
        .max(1);
    for b in bars {
        let w = b.differing_requests * BAR_WIDTH / max;
        let _ = writeln!(
            out,
            "{:>34} | {:<width$} {}",
            b.domain,
            "#".repeat(w.max(1)),
            b.differing_requests,
            width = BAR_WIDTH
        );
    }
    out
}

fn render_box_row(out: &mut String, label: &str, stats: &pd_util::stats::BoxStats) {
    let _ = writeln!(
        out,
        "{label:>34} | min {:>5.2}  q1 {:>5.2}  med {:>5.2}  q3 {:>5.2}  max {:>5.2}  (n={})",
        stats.min, stats.q1, stats.median, stats.q3, stats.max, stats.count
    );
}

/// Renders a ratio-box family (Figs. 2 and 4).
#[must_use]
pub fn render_ratio_boxes(title: &str, boxes: &[RatioBox]) -> String {
    let mut out = format!("{title}\n");
    for b in boxes {
        render_box_row(&mut out, &b.domain, &b.stats);
    }
    out
}

/// Renders Fig. 3's extent bars.
#[must_use]
pub fn render_fig3(bars: &[Fig3Bar]) -> String {
    let mut out = String::from("Fig.3  Extent of price variations per domain\n");
    for b in bars {
        let w = (b.extent * BAR_WIDTH as f64).round() as usize;
        let _ = writeln!(
            out,
            "{:>34} | {:<width$} {:.2}",
            b.domain,
            "#".repeat(w),
            b.extent,
            width = BAR_WIDTH
        );
    }
    out
}

/// Renders Fig. 5's envelope buckets.
#[must_use]
pub fn render_fig5(envelope: &[LogBucket]) -> String {
    let mut out =
        String::from("Fig.5  Maximal ratio of price difference per product price (envelope)\n");
    for b in envelope {
        if b.count == 0 {
            let _ = writeln!(out, "  ${:>8.0} - ${:>8.0} | (no products)", b.lo, b.hi);
        } else {
            let _ = writeln!(
                out,
                "  ${:>8.0} - ${:>8.0} | max x{:.2}  mean x{:.2}  (n={})",
                b.lo,
                b.hi,
                b.max_value.unwrap_or(1.0),
                b.mean_value.unwrap_or(1.0),
                b.count
            );
        }
    }
    out
}

/// Renders Fig. 6 curve summaries for one retailer.
#[must_use]
pub fn render_fig6(domain: &str, curves: &[LocationCurve]) -> String {
    let mut out = format!("Fig.6  Ratio of price differences per product price — {domain}\n");
    for c in curves {
        let _ = writeln!(
            out,
            "{:>22} | fit ratio(p) = {:.3} + {:.2}/p  → {:?}  ({} products)",
            c.label,
            c.mult_factor,
            c.additive_usd,
            c.strategy,
            c.points.len()
        );
    }
    out
}

/// Renders Fig. 7 location boxplots.
#[must_use]
pub fn render_fig7(boxes: &[Fig7Box]) -> String {
    let mut out = String::from("Fig.7  Magnitude of price differences per location (all)\n");
    for b in boxes {
        render_box_row(&mut out, &b.label, &b.stats);
    }
    out
}

/// Renders a Fig. 8 pairwise grid as a relation matrix.
#[must_use]
pub fn render_fig8(domain: &str, cells: &[Fig8Cell]) -> String {
    let mut out = format!("Fig.8  Pairwise price relations — {domain}\n");
    for c in cells {
        let sym = match c.relation {
            PairRelation::Similar => "=",
            PairRelation::RowDearer => ">",
            PairRelation::ColDearer => "<",
            PairRelation::Mixed => "~",
        };
        let _ = writeln!(
            out,
            "  {:<22} {sym} {:<22} ({} products)",
            c.row,
            c.col,
            c.points.len()
        );
    }
    out
}

/// Renders Fig. 9 Finland boxes.
#[must_use]
pub fn render_fig9(boxes: &[Fig9Box]) -> String {
    let mut out = String::from("Fig.9  Price ratio Finland/min per domain\n");
    for b in boxes {
        render_box_row(&mut out, &b.domain, &b.stats);
        if b.finland_cheapest {
            let _ = writeln!(out, "{:>34} | ^ Finland among the cheapest here", "");
        }
    }
    out
}

/// Renders Fig. 10's table.
#[must_use]
pub fn render_fig10(fig: &Fig10) -> String {
    let mut out = format!(
        "Fig.10  Impact of login on ebook prices at {} \
         (variation on {:.0}% of products, login correlation {})\n",
        fig.domain,
        fig.variation_fraction * 100.0,
        fig.login_correlation
            .map_or("n/a".to_owned(), |c| format!("{c:+.3}"))
    );
    let _ = writeln!(
        out,
        "  product |  w/o login |    user A |    user B |    user C"
    );
    for (i, wo, a, b, c) in &fig.series {
        let f = |v: &Option<f64>| v.map_or("      -".to_owned(), |x| format!("{x:>7.2}"));
        let _ = writeln!(
            out,
            "  {:>7} | {:>10} | {:>9} | {:>9} | {:>9}",
            i,
            f(wo),
            f(a),
            f(b),
            f(c)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_util::stats::BoxStats;

    fn stats() -> BoxStats {
        BoxStats::compute(&[1.0, 1.1, 1.2, 1.3, 1.4]).unwrap()
    }

    #[test]
    fn fig1_renders_bars() {
        let bars = vec![
            Fig1Bar {
                domain: "www.amazon.com".into(),
                differing_requests: 50,
                total_requests: 60,
            },
            Fig1Bar {
                domain: "www.zavvi.com".into(),
                differing_requests: 5,
                total_requests: 9,
            },
        ];
        let s = render_fig1(&bars);
        assert!(s.contains("www.amazon.com"));
        assert!(s.contains("50"));
        // Longest bar belongs to the top domain.
        let amazon_line = s.lines().find(|l| l.contains("amazon")).unwrap();
        let zavvi_line = s.lines().find(|l| l.contains("zavvi")).unwrap();
        assert!(amazon_line.matches('#').count() > zavvi_line.matches('#').count());
    }

    #[test]
    fn box_rows_render_quartiles() {
        let boxes = vec![RatioBox {
            domain: "x.example".into(),
            stats: stats(),
        }];
        let s = render_ratio_boxes("Fig.2", &boxes);
        assert!(s.contains("med  1.20"));
        assert!(s.contains("n=5"));
    }

    #[test]
    fn fig10_renders_missing_as_dash() {
        let fig = Fig10 {
            domain: "www.amazon.com".into(),
            series: vec![(0, Some(9.99), None, Some(10.5), Some(8.75))],
            variation_fraction: 1.0,
            login_correlation: Some(0.01),
        };
        let s = render_fig10(&fig);
        assert!(s.contains('-'));
        assert!(s.contains("9.99"));
        assert!(s.contains("+0.010"));
    }

    #[test]
    fn fig5_renders_empty_buckets() {
        let buckets = vec![pd_util::stats::LogBucket {
            lo: 10.0,
            hi: 100.0,
            count: 0,
            max_value: None,
            mean_value: None,
        }];
        let s = render_fig5(&buckets);
        assert!(s.contains("no products"));
    }
}
