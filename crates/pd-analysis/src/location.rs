//! Fig. 7, Fig. 8 and Fig. 9: does location have an impact?

use crate::frame::CheckFrame;
use pd_util::stats::BoxStats;
use pd_util::VantageId;
use serde::{Deserialize, Serialize};

/// One box of Fig. 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Box {
    /// Vantage label (Fig. 7's x-axis, e.g. "Spain (Linux,FF)").
    pub label: String,
    /// Vantage id.
    pub vantage: VantageId,
    /// Box statistics of price(location)/min-price ratios over all
    /// products of all retailers.
    pub stats: BoxStats,
}

/// Fig. 7 — per-location ratio boxplots across all crawled retailers.
/// Paper: "locations in USA and Brazil tend to get lower prices than
/// locations in Europe. Within Europe, Finland stands out as the most
/// expensive location."
#[must_use]
pub fn fig7_location_boxes(frame: &CheckFrame, vantages: &[(VantageId, String)]) -> Vec<Fig7Box> {
    // Per product × location: median daily ratio to the product minimum.
    let mut per_loc: std::collections::HashMap<VantageId, Vec<f64>> =
        std::collections::HashMap::new();
    for ((_domain, _slug), rows) in frame.by_product() {
        let mut loc_ratios: std::collections::HashMap<VantageId, Vec<f64>> =
            std::collections::HashMap::new();
        for row in rows {
            if row.min_usd <= 0.0 {
                continue;
            }
            for &(vid, usd) in &row.usd {
                loc_ratios.entry(vid).or_default().push(usd / row.min_usd);
            }
        }
        for (vid, mut ratios) in loc_ratios {
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = pd_util::stats::quantile_sorted(&ratios, 0.5);
            per_loc.entry(vid).or_default().push(median);
        }
    }
    vantages
        .iter()
        .filter_map(|(vid, label)| {
            let ratios = per_loc.get(vid)?;
            BoxStats::compute(ratios).map(|stats| Fig7Box {
                label: label.clone(),
                vantage: *vid,
                stats,
            })
        })
        .collect()
}

/// Relationship of a location pair in one Fig. 8 subplot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairRelation {
    /// Dots on the diagonal: both locations get similar prices.
    Similar,
    /// Dots cluster toward the y-axis: the row location is dearer.
    RowDearer,
    /// Dots cluster toward the x-axis: the column location is dearer.
    ColDearer,
    /// Some products dearer on one side, some on the other.
    Mixed,
}

/// One subplot of a Fig. 8 grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Cell {
    /// Row location label (the subplot's y-axis).
    pub row: String,
    /// Column location label (x-axis).
    pub col: String,
    /// Per-product points `(col_ratio, row_ratio)` — each location's
    /// price over the product's minimum across all locations.
    pub points: Vec<(f64, f64)>,
    /// Classified relationship.
    pub relation: PairRelation,
}

/// Fig. 8 — the pairwise grid for one retailer over chosen locations.
#[must_use]
pub fn fig8_pairwise(
    frame: &CheckFrame,
    domain: &str,
    vantages: &[(VantageId, String)],
) -> Vec<Fig8Cell> {
    // Per product: median ratio per location (to the product min).
    let mut per_product: Vec<std::collections::HashMap<VantageId, f64>> = Vec::new();
    for ((d, _slug), rows) in frame.by_product() {
        if &*d != domain {
            continue;
        }
        let mut loc_ratios: std::collections::HashMap<VantageId, Vec<f64>> =
            std::collections::HashMap::new();
        for row in rows {
            if row.min_usd <= 0.0 {
                continue;
            }
            for &(vid, usd) in &row.usd {
                loc_ratios.entry(vid).or_default().push(usd / row.min_usd);
            }
        }
        per_product.push(
            loc_ratios
                .into_iter()
                .map(|(vid, mut rs)| {
                    rs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                    (vid, pd_util::stats::quantile_sorted(&rs, 0.5))
                })
                .collect(),
        );
    }

    let mut cells = Vec::new();
    for (ri, (rvid, rlabel)) in vantages.iter().enumerate() {
        for (ci, (cvid, clabel)) in vantages.iter().enumerate() {
            if ri == ci {
                continue;
            }
            let points: Vec<(f64, f64)> = per_product
                .iter()
                .filter_map(|m| Some((*m.get(cvid)?, *m.get(rvid)?)))
                .collect();
            let relation = classify_pair(&points);
            cells.push(Fig8Cell {
                row: rlabel.clone(),
                col: clabel.clone(),
                points,
                relation,
            });
        }
    }
    cells
}

/// Classifies a pairwise cloud. Tolerance 2 % around the diagonal.
fn classify_pair(points: &[(f64, f64)]) -> PairRelation {
    if points.is_empty() {
        return PairRelation::Similar;
    }
    const TOL: f64 = 0.02;
    let mut row_dearer = 0usize;
    let mut col_dearer = 0usize;
    let mut similar = 0usize;
    for &(x, y) in points {
        if (y - x).abs() <= TOL {
            similar += 1;
        } else if y > x {
            row_dearer += 1;
        } else {
            col_dearer += 1;
        }
    }
    let n = points.len() as f64;
    if similar as f64 / n >= 0.8 {
        PairRelation::Similar
    } else if row_dearer as f64 / n >= 0.6 {
        PairRelation::RowDearer
    } else if col_dearer as f64 / n >= 0.6 {
        PairRelation::ColDearer
    } else {
        PairRelation::Mixed
    }
}

/// One box of Fig. 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Box {
    /// Domain.
    pub domain: String,
    /// Box statistics of price(Finland)/min ratios per product.
    pub stats: BoxStats,
    /// True when Finland is (essentially) the cheapest location for at
    /// least three quarters of the retailer's products (q3 ≈ 1) — the
    /// paper's visual "Finland is the cheaper location here" judgement.
    pub finland_cheapest: bool,
}

/// Fig. 9 — the Finland ratio per crawled domain. Paper: "Finland is
/// almost never the cheaper location (exceptions with mauijim.com and
/// tuscanyleather.it)".
#[must_use]
pub fn fig9_finland(frame: &CheckFrame, finland: VantageId) -> Vec<Fig9Box> {
    let mut per_domain: std::collections::BTreeMap<std::sync::Arc<str>, Vec<f64>> =
        std::collections::BTreeMap::new();
    for ((domain, _slug), rows) in frame.by_product() {
        let mut ratios = Vec::new();
        for row in rows {
            if row.min_usd <= 0.0 {
                continue;
            }
            if let Some(fi) = row.usd_at(finland) {
                ratios.push(fi / row.min_usd);
            }
        }
        if !ratios.is_empty() {
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = pd_util::stats::quantile_sorted(&ratios, 0.5);
            per_domain.entry(domain).or_default().push(median);
        }
    }
    per_domain
        .into_iter()
        .filter_map(|(domain, ratios)| {
            BoxStats::compute(&ratios).map(|stats| Fig9Box {
                finland_cheapest: stats.q3 <= 1.005,
                domain: domain.to_string(),
                stats,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_pair_similar() {
        let pts: Vec<(f64, f64)> = (0..10)
            .map(|i| (1.0 + i as f64 * 0.01, 1.0 + i as f64 * 0.01))
            .collect();
        assert_eq!(classify_pair(&pts), PairRelation::Similar);
    }

    #[test]
    fn classify_pair_row_dearer() {
        let pts: Vec<(f64, f64)> = (0..10).map(|_| (1.0, 1.15)).collect();
        assert_eq!(classify_pair(&pts), PairRelation::RowDearer);
    }

    #[test]
    fn classify_pair_col_dearer() {
        let pts: Vec<(f64, f64)> = (0..10).map(|_| (1.2, 1.0)).collect();
        assert_eq!(classify_pair(&pts), PairRelation::ColDearer);
    }

    #[test]
    fn classify_pair_mixed() {
        let mut pts: Vec<(f64, f64)> = (0..5).map(|_| (1.0, 1.2)).collect();
        pts.extend((0..5).map(|_| (1.2, 1.0)));
        assert_eq!(classify_pair(&pts), PairRelation::Mixed);
    }

    #[test]
    fn classify_pair_empty_is_similar() {
        assert_eq!(classify_pair(&[]), PairRelation::Similar);
    }
}
