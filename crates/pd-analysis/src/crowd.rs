//! Fig. 1 and Fig. 2: the crowdsourced dataset's view of retailers.

use crate::frame::CheckFrame;
use pd_util::stats::BoxStats;
use serde::{Deserialize, Serialize};

/// One bar of Fig. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Bar {
    /// Domain.
    pub domain: String,
    /// Number of crowd requests on this domain that showed a confirmed
    /// price difference.
    pub differing_requests: usize,
    /// Total crowd requests on the domain.
    pub total_requests: usize,
}

/// Fig. 1 — "Domains with the highest number of requests where price
/// differences occurred": domains ranked by confirmed-difference count.
#[must_use]
pub fn fig1_ranking(frame: &CheckFrame, top: usize) -> Vec<Fig1Bar> {
    let mut counts: std::collections::BTreeMap<&str, (usize, usize)> =
        std::collections::BTreeMap::new();
    for row in frame.rows() {
        let e = counts.entry(&*row.domain).or_insert((0, 0));
        e.1 += 1;
        if row.genuine {
            e.0 += 1;
        }
    }
    let mut bars: Vec<Fig1Bar> = counts
        .into_iter()
        .filter(|(_, (diff, _))| *diff > 0)
        .map(|(domain, (differing, total))| Fig1Bar {
            domain: domain.to_owned(),
            differing_requests: differing,
            total_requests: total,
        })
        .collect();
    bars.sort_by(|a, b| {
        b.differing_requests
            .cmp(&a.differing_requests)
            .then_with(|| a.domain.cmp(&b.domain))
    });
    bars.truncate(top);
    bars
}

/// One box of Fig. 2 (and Fig. 4, which shares the shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioBox {
    /// Domain.
    pub domain: String,
    /// Box statistics of the per-check max/min price ratio.
    pub stats: BoxStats,
}

/// Fig. 2 — "Magnitude of price differences per domain": for each of the
/// given domains, box statistics of the per-request max/min ratio.
///
/// Ratios of non-genuine checks enter as 1.0, as in the paper (a checked
/// product with no confirmed difference has ratio 1).
#[must_use]
pub fn fig2_ratio_boxes(frame: &CheckFrame, domains: &[String]) -> Vec<RatioBox> {
    domains
        .iter()
        .filter_map(|domain| {
            let ratios: Vec<f64> = frame.by_domain(domain).map(|r| r.ratio).collect();
            BoxStats::compute(&ratios).map(|stats| RatioBox {
                domain: domain.clone(),
                stats,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::CheckRow;
    use pd_util::{RequestId, VantageId};

    fn row(domain: &str, ratio: f64) -> CheckRow {
        CheckRow {
            request: RequestId::new(0),
            domain: domain.into(),
            slug: "p".into(),
            day: 0,
            usd: vec![
                (VantageId::new(0), 100.0),
                (VantageId::new(1), 100.0 * ratio),
            ],
            genuine: ratio > 1.0,
            ratio,
            min_usd: 100.0,
        }
    }

    fn frame(rows: Vec<CheckRow>) -> CheckFrame {
        // Round-trip through serde to construct (fields are private).
        let json = serde_json::json!({ "rows": rows });
        serde_json::from_value(json).unwrap()
    }

    #[test]
    fn fig1_ranks_by_differing_count() {
        let f = frame(vec![
            row("a.example", 1.2),
            row("a.example", 1.3),
            row("a.example", 1.0),
            row("b.example", 1.1),
            row("c.example", 1.0),
        ]);
        let bars = fig1_ranking(&f, 10);
        assert_eq!(bars.len(), 2, "domains with zero differences excluded");
        assert_eq!(bars[0].domain, "a.example");
        assert_eq!(bars[0].differing_requests, 2);
        assert_eq!(bars[0].total_requests, 3);
        assert_eq!(bars[1].domain, "b.example");
    }

    #[test]
    fn fig1_truncates_to_top() {
        let f = frame(vec![row("a.example", 1.2), row("b.example", 1.2)]);
        assert_eq!(fig1_ranking(&f, 1).len(), 1);
    }

    #[test]
    fn fig1_tie_break_is_alphabetical() {
        let f = frame(vec![row("z.example", 1.2), row("a.example", 1.2)]);
        let bars = fig1_ranking(&f, 10);
        assert_eq!(bars[0].domain, "a.example");
    }

    #[test]
    fn fig2_box_per_domain() {
        let f = frame(vec![
            row("a.example", 1.1),
            row("a.example", 1.2),
            row("a.example", 1.3),
        ]);
        let boxes = fig2_ratio_boxes(&f, &["a.example".to_owned(), "missing.example".to_owned()]);
        assert_eq!(boxes.len(), 1);
        assert!((boxes[0].stats.median - 1.2).abs() < 1e-9);
        assert_eq!(boxes[0].stats.count, 3);
    }
}
