//! Fig. 6: per-retailer ratio-vs-price curves and the
//! multiplicative/additive strategy classifier.
//!
//! Fig. 6(a) (a photography retailer): per-location ratio lines that are
//! *parallel to the x-axis* — multiplicative pricing. Fig. 6(b) (a
//! clothes manufacturer): one location's curve starts high at cheap
//! products and decays, converging to a flat line past ~$100 — an
//! additive term. Beyond re-plotting, this module implements the
//! *inference* the paper performs visually: fitting `ratio(p) = f + a/p`
//! per location and classifying the strategy from the fitted `a`.

use crate::frame::CheckFrame;
use pd_util::VantageId;
use serde::{Deserialize, Serialize};

/// One (min-price, ratio) point of a location's Fig. 6 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Product's minimum USD price across locations.
    pub min_price: f64,
    /// Price at this location over the minimum, per-product median
    /// across days.
    pub ratio: f64,
}

/// A per-location ratio-vs-price series with its strategy fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocationCurve {
    /// Vantage label (e.g. "Finland - Tampere").
    pub label: String,
    /// Vantage id.
    pub vantage: VantageId,
    /// Points, ascending by price.
    pub points: Vec<CurvePoint>,
    /// Fitted multiplicative factor `f` of `ratio(p) = f + a/p`.
    pub mult_factor: f64,
    /// Fitted additive USD term `a`.
    pub additive_usd: f64,
    /// Classification from the fit.
    pub strategy: StrategyClass,
}

/// What the fit says the location's pricing looks like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyClass {
    /// Ratio ≈ 1 everywhere: no discrimination at this location.
    Flat,
    /// Parallel line above 1: multiplicative.
    Multiplicative,
    /// Decaying curve: an additive term dominates.
    Additive,
    /// Both components significant.
    Mixed,
}

/// Builds Fig. 6 for one retailer: a curve per requested vantage point.
///
/// `vantages` maps ids to display labels (from the vantage fleet).
#[must_use]
pub fn fig6_curves(
    frame: &CheckFrame,
    domain: &str,
    vantages: &[(VantageId, String)],
) -> Vec<LocationCurve> {
    // Per product: min price + per-location median ratio across days.
    struct ProductAgg {
        min_price: f64,
        per_loc: std::collections::HashMap<VantageId, Vec<f64>>,
    }
    let mut products: std::collections::HashMap<std::sync::Arc<str>, ProductAgg> =
        std::collections::HashMap::new();
    for row in frame.by_domain(domain) {
        let agg = products
            .entry(std::sync::Arc::clone(&row.slug))
            .or_insert(ProductAgg {
                min_price: f64::MAX,
                per_loc: std::collections::HashMap::new(),
            });
        agg.min_price = agg.min_price.min(row.min_usd);
        for &(vid, usd) in &row.usd {
            if row.min_usd > 0.0 {
                agg.per_loc.entry(vid).or_default().push(usd / row.min_usd);
            }
        }
    }

    vantages
        .iter()
        .map(|(vid, label)| {
            let mut points: Vec<CurvePoint> = products
                .values()
                .filter_map(|agg| {
                    let ratios = agg.per_loc.get(vid)?;
                    let mut sorted = ratios.clone();
                    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                    Some(CurvePoint {
                        min_price: agg.min_price,
                        ratio: pd_util::stats::quantile_sorted(&sorted, 0.5),
                    })
                })
                .collect();
            points.sort_by(|a, b| a.min_price.partial_cmp(&b.min_price).expect("finite"));
            let (mult_factor, additive_usd) = fit_mult_additive(&points);
            let strategy = classify(mult_factor, additive_usd);
            LocationCurve {
                label: label.clone(),
                vantage: *vid,
                points,
                mult_factor,
                additive_usd,
                strategy,
            }
        })
        .collect()
}

/// Least-squares fit of `ratio = f + a · (1/p)` — linear in `1/p`.
fn fit_mult_additive(points: &[CurvePoint]) -> (f64, f64) {
    if points.len() < 2 {
        let f = points.first().map_or(1.0, |p| p.ratio);
        return (f, 0.0);
    }
    let xs: Vec<f64> = points.iter().map(|p| 1.0 / p.min_price.max(0.01)).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.ratio).collect();
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (sy / n, 0.0);
    }
    let a = (n * sxy - sx * sy) / denom;
    let f = (sy - a * sx) / n;
    (f, a)
}

/// Thresholds: a location is multiplicative when its flat component is
/// ≥2 % above par; additive when the fitted term exceeds $1.
fn classify(mult_factor: f64, additive_usd: f64) -> StrategyClass {
    let mult = mult_factor > 1.02;
    let add = additive_usd > 1.0;
    match (mult, add) {
        (false, false) => StrategyClass::Flat,
        (true, false) => StrategyClass::Multiplicative,
        (false, true) => StrategyClass::Additive,
        (true, true) => StrategyClass::Mixed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(f: f64, a: f64, prices: &[f64]) -> Vec<CurvePoint> {
        prices
            .iter()
            .map(|&p| CurvePoint {
                min_price: p,
                ratio: f + a / p,
            })
            .collect()
    }

    #[test]
    fn fit_recovers_pure_multiplicative() {
        let pts = points(1.25, 0.0, &[10.0, 50.0, 100.0, 500.0, 2000.0]);
        let (f, a) = fit_mult_additive(&pts);
        assert!((f - 1.25).abs() < 1e-9, "f {f}");
        assert!(a.abs() < 1e-9, "a {a}");
        assert_eq!(classify(f, a), StrategyClass::Multiplicative);
    }

    #[test]
    fn fit_recovers_pure_additive() {
        let pts = points(1.0, 8.0, &[10.0, 20.0, 50.0, 100.0, 200.0]);
        let (f, a) = fit_mult_additive(&pts);
        assert!((f - 1.0).abs() < 1e-6, "f {f}");
        assert!((a - 8.0).abs() < 1e-6, "a {a}");
        assert_eq!(classify(f, a), StrategyClass::Additive);
    }

    #[test]
    fn fit_recovers_mixed() {
        let pts = points(1.05, 6.0, &[10.0, 25.0, 60.0, 150.0, 400.0]);
        let (f, a) = fit_mult_additive(&pts);
        assert!((f - 1.05).abs() < 1e-6);
        assert!((a - 6.0).abs() < 1e-6);
        assert_eq!(classify(f, a), StrategyClass::Mixed);
    }

    #[test]
    fn flat_location_classified_flat() {
        let pts = points(1.0, 0.0, &[10.0, 100.0, 1000.0]);
        let (f, a) = fit_mult_additive(&pts);
        assert_eq!(classify(f, a), StrategyClass::Flat);
    }

    #[test]
    fn degenerate_fits() {
        assert_eq!(fit_mult_additive(&[]), (1.0, 0.0));
        let single = [CurvePoint {
            min_price: 50.0,
            ratio: 1.3,
        }];
        let (f, a) = fit_mult_additive(&single);
        assert_eq!((f, a), (1.3, 0.0));
        // All-same-price points: denom ≈ 0 path.
        let same = points(1.2, 0.0, &[100.0, 100.0, 100.0]);
        let (f, a) = fit_mult_additive(&same);
        assert!((f - 1.2).abs() < 1e-9);
        assert_eq!(a, 0.0);
    }
}
