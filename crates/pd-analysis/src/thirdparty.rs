//! Sec. 4.4's third-party presence scan.
//!
//! "We investigate the frequency of third parties that are present on the
//! retailers we study. It would appear that Google is present on most
//! e-retailers with their analytics (95%) and doubleclick (65%) domains.
//! Social networks … Facebook (80%), Pinterest (45%), and Twitter (40%)."
//!
//! The scan is operational: fetch one product page per domain and look
//! for the third-party hosts in `script src` / `img src` attributes —
//! the same passive inspection the authors ran on stored pages.

use pd_html::Selector;
use pd_net::clock::SimTime;
use pd_pricing::retailer::ThirdParty;
use pd_web::{Request, WebWorld};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Presence table for the scanned domains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThirdPartyTable {
    /// Domains scanned.
    pub scanned: usize,
    /// `(third-party host, presence fraction)` rows, in the paper's
    /// order: GA, DoubleClick, Facebook, Pinterest, Twitter.
    pub rows: Vec<(String, f64)>,
}

/// Scans one product page per domain for embedded third-party hosts.
#[must_use]
pub fn scan_third_parties(
    world: &WebWorld,
    domains: &[String],
    client: Ipv4Addr,
    time: SimTime,
) -> ThirdPartyTable {
    let script_sel = Selector::parse("script[src]").expect("static selector");
    let img_sel = Selector::parse("img[src]").expect("static selector");
    let mut counts = [0usize; 5];
    let mut scanned = 0usize;

    for domain in domains {
        let Some(server) = world.server_by_domain(domain) else {
            continue;
        };
        let Some(product) = server.catalog().iter().next() else {
            continue;
        };
        let req = Request::get(domain, &format!("/product/{}", product.slug), client, time);
        let resp = world.fetch(&req);
        if resp.status.code() != 200 {
            continue;
        }
        scanned += 1;
        let doc = pd_html::parse(&resp.body);
        let srcs: Vec<String> = script_sel
            .query_all(&doc)
            .into_iter()
            .chain(img_sel.query_all(&doc))
            .filter_map(|n| doc.attr(n, "src").map(str::to_owned))
            .collect();
        for (i, tp) in ThirdParty::ALL.iter().enumerate() {
            if srcs.iter().any(|s| s.contains(tp.host())) {
                counts[i] += 1;
            }
        }
    }

    let rows = ThirdParty::ALL
        .iter()
        .zip(counts)
        .map(|(tp, c)| {
            (
                tp.host().to_owned(),
                if scanned == 0 {
                    0.0
                } else {
                    c as f64 / scanned as f64
                },
            )
        })
        .collect();
    ThirdPartyTable { scanned, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_net::geo::{Country, Location};
    use pd_pricing::paper_retailers;
    use pd_util::Seed;

    #[test]
    fn scan_matches_spec_assignment() {
        let seed = Seed::new(1307);
        let specs = paper_retailers(seed);
        let crawled: Vec<String> = specs
            .iter()
            .filter(|s| s.crawled)
            .map(|s| s.domain.clone())
            .collect();
        let mut world = WebWorld::build(seed, specs.clone(), 160);
        let addr = world.allocate_client(&Location::new(Country::UnitedStates, "Boston"));
        let table = scan_third_parties(&world, &crawled, addr, SimTime::EPOCH);
        assert_eq!(table.scanned, 21);
        // The operational scan must agree exactly with the spec's
        // ground-truth tag assignment.
        for (i, tp) in pd_pricing::retailer::ThirdParty::ALL.iter().enumerate() {
            let truth = specs
                .iter()
                .filter(|s| s.crawled && s.third_parties.contains(tp))
                .count() as f64
                / 21.0;
            assert!(
                (table.rows[i].1 - truth).abs() < 1e-9,
                "{}: scan {} vs truth {}",
                tp.host(),
                table.rows[i].1,
                truth
            );
        }
    }

    #[test]
    fn scan_of_unknown_domains_is_empty() {
        let seed = Seed::new(1307);
        let mut world = WebWorld::build(seed, paper_retailers(seed), 160);
        let addr = world.allocate_client(&Location::new(Country::Spain, "Barcelona"));
        let table = scan_third_parties(&world, &["gone.example".to_owned()], addr, SimTime::EPOCH);
        assert_eq!(table.scanned, 0);
        assert!(table.rows.iter().all(|(_, f)| *f == 0.0));
    }
}
