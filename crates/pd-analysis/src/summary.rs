//! Sec. 3.2 dataset summary statistics (the reproduction's "T0").

use pd_sheriff::{Crowd, MeasurementStore};
use serde::{Deserialize, Serialize};

/// The headline numbers of Sec. 3.2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Crowd price-check requests (paper: 1 500).
    pub crowd_requests: usize,
    /// Distinct crowd users (paper: 340).
    pub crowd_users: usize,
    /// Distinct user countries (paper: 18).
    pub crowd_countries: usize,
    /// Distinct domains checked by the crowd (paper: 600).
    pub crowd_domains: usize,
    /// Retailers in the crawled dataset (paper: 21).
    pub crawled_retailers: usize,
    /// Total products crawled.
    pub crawled_products: usize,
    /// Crawl days per retailer (paper: 7).
    pub crawl_days: usize,
    /// Extracted prices in the crawled dataset (paper: 188 K).
    pub crawled_prices: usize,
}

/// Builds the summary from the two stores and the crowd.
#[must_use]
pub fn dataset_summary(
    crowd: &Crowd,
    crowd_store: &MeasurementStore,
    crawl_store: &MeasurementStore,
) -> DatasetSummary {
    let crowd_users: std::collections::HashSet<_> =
        crowd_store.records().iter().map(|m| m.user).collect();
    let crawled_products: std::collections::HashSet<_> = crawl_store
        .records()
        .iter()
        .map(|m| (m.domain.clone(), m.product_slug.clone()))
        .collect();
    let crawl_days: std::collections::HashSet<_> =
        crawl_store.records().iter().map(|m| m.day()).collect();
    DatasetSummary {
        crowd_requests: crowd_store.len(),
        crowd_users: crowd_users.len(),
        crowd_countries: crowd.country_count(),
        crowd_domains: crowd_store.domains().len(),
        crawled_retailers: crawl_store.domains().len(),
        crawled_products: crawled_products.len(),
        crawl_days: crawl_days.len(),
        crawled_prices: crawl_store.total_extracted_prices(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_currency::{Currency, Price};
    use pd_net::clock::SimTime;
    use pd_sheriff::measurement::{Measurement, NoiseTruth};
    use pd_sheriff::{CrowdConfig, PriceObservation};
    use pd_util::{Money, RequestId, Seed, UserId, VantageId};

    fn meas(domain: &str, slug: &str, user: u32, day: u64, n_prices: usize) -> Measurement {
        Measurement {
            request: RequestId::new(0),
            user: UserId::new(user),
            domain: domain.into(),
            product_slug: slug.into(),
            time: SimTime::from_millis(day * 24 * 3_600_000),
            user_price: None,
            observations: (0..n_prices)
                .map(|i| {
                    PriceObservation::ok(
                        VantageId::new(i as u32),
                        Price::new(Money::from_minor(100), Currency::Usd),
                        String::new(),
                    )
                })
                .collect(),
            noise_truth: NoiseTruth::Clean,
        }
    }

    #[test]
    fn summary_counts() {
        let seed = Seed::new(1307);
        let mut world = pd_web::WebWorld::build(seed, pd_pricing::paper_retailers(seed), 160);
        let crowd = pd_sheriff::Crowd::new(
            seed,
            CrowdConfig {
                users: 10,
                checks: 0,
                ..CrowdConfig::default()
            },
            &mut world,
        );
        let mut crowd_store = MeasurementStore::new();
        crowd_store.push(meas("a.example", "x", 1, 3, 14));
        crowd_store.push(meas("b.example", "y", 2, 4, 14));
        crowd_store.push(meas("a.example", "z", 1, 5, 14));
        let mut crawl_store = MeasurementStore::new();
        crawl_store.push(meas("a.example", "x", u32::MAX, 120, 14));
        crawl_store.push(meas("a.example", "x", u32::MAX, 121, 14));
        crawl_store.push(meas("a.example", "w", u32::MAX, 120, 13));

        let s = dataset_summary(&crowd, &crowd_store, &crawl_store);
        assert_eq!(s.crowd_requests, 3);
        assert_eq!(s.crowd_users, 2);
        assert_eq!(s.crowd_domains, 2);
        assert_eq!(s.crawled_retailers, 1);
        assert_eq!(s.crawled_products, 2);
        assert_eq!(s.crawl_days, 2);
        assert_eq!(s.crawled_prices, 14 + 14 + 13);
    }
}
