//! Sec. 3.2 dataset summary statistics (the reproduction's "T0").

use pd_sheriff::{Crowd, Measurement, MeasurementStore};
use pd_util::UserId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The headline numbers of Sec. 3.2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Crowd price-check requests (paper: 1 500).
    pub crowd_requests: usize,
    /// Distinct crowd users (paper: 340).
    pub crowd_users: usize,
    /// Distinct user countries (paper: 18).
    pub crowd_countries: usize,
    /// Distinct domains checked by the crowd (paper: 600).
    pub crowd_domains: usize,
    /// Retailers in the crawled dataset (paper: 21).
    pub crawled_retailers: usize,
    /// Total products crawled.
    pub crawled_products: usize,
    /// Crawl days per retailer (paper: 7).
    pub crawl_days: usize,
    /// Extracted prices in the crawled dataset (paper: 188 K).
    pub crawled_prices: usize,
}

/// Streaming accumulator behind [`dataset_summary`]: feed it crowd and
/// crawl measurements one at a time — in any order, e.g. chunk by chunk
/// from an on-disk store — and [`SummaryScan::finish`] yields the same
/// numbers as a whole-store scan. Every statistic is a count, a set
/// cardinality or a sum, so the scan never has to hold the stores.
#[derive(Debug, Default)]
pub struct SummaryScan {
    crowd_requests: usize,
    crowd_users: HashSet<UserId>,
    crowd_domains: HashSet<String>,
    crawl_domains: HashSet<String>,
    crawled_products: HashSet<(String, String)>,
    crawl_days: HashSet<usize>,
    crawled_prices: usize,
}

impl SummaryScan {
    /// An empty scan.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts one measurement from the **raw crowd** store.
    pub fn crowd_row(&mut self, m: &Measurement) {
        self.crowd_requests += 1;
        self.crowd_users.insert(m.user);
        if !self.crowd_domains.contains(m.domain.as_str()) {
            self.crowd_domains.insert(m.domain.clone());
        }
    }

    /// Accounts one measurement from the **crawl** store.
    pub fn crawl_row(&mut self, m: &Measurement) {
        if !self.crawl_domains.contains(m.domain.as_str()) {
            self.crawl_domains.insert(m.domain.clone());
        }
        self.crawled_products
            .insert((m.domain.clone(), m.product_slug.clone()));
        self.crawl_days.insert(m.day());
        self.crawled_prices += m.prices().len();
    }

    /// The Sec. 3.2 headline numbers for everything fed so far.
    #[must_use]
    pub fn finish(self, crowd: &Crowd) -> DatasetSummary {
        DatasetSummary {
            crowd_requests: self.crowd_requests,
            crowd_users: self.crowd_users.len(),
            crowd_countries: crowd.country_count(),
            crowd_domains: self.crowd_domains.len(),
            crawled_retailers: self.crawl_domains.len(),
            crawled_products: self.crawled_products.len(),
            crawl_days: self.crawl_days.len(),
            crawled_prices: self.crawled_prices,
        }
    }
}

/// Builds the summary from the two stores and the crowd.
#[must_use]
pub fn dataset_summary(
    crowd: &Crowd,
    crowd_store: &MeasurementStore,
    crawl_store: &MeasurementStore,
) -> DatasetSummary {
    let mut scan = SummaryScan::new();
    for m in crowd_store.records() {
        scan.crowd_row(m);
    }
    for m in crawl_store.records() {
        scan.crawl_row(m);
    }
    scan.finish(crowd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_currency::{Currency, Price};
    use pd_net::clock::SimTime;
    use pd_sheriff::measurement::{Measurement, NoiseTruth};
    use pd_sheriff::{CrowdConfig, PriceObservation};
    use pd_util::{Money, RequestId, Seed, UserId, VantageId};

    fn meas(domain: &str, slug: &str, user: u32, day: u64, n_prices: usize) -> Measurement {
        Measurement {
            request: RequestId::new(0),
            user: UserId::new(user),
            domain: domain.into(),
            product_slug: slug.into(),
            time: SimTime::from_millis(day * 24 * 3_600_000),
            user_price: None,
            observations: (0..n_prices)
                .map(|i| {
                    PriceObservation::ok(
                        VantageId::new(i as u32),
                        Price::new(Money::from_minor(100), Currency::Usd),
                        String::new(),
                    )
                })
                .collect(),
            noise_truth: NoiseTruth::Clean,
        }
    }

    #[test]
    fn summary_counts() {
        let seed = Seed::new(1307);
        let mut world = pd_web::WebWorld::build(seed, pd_pricing::paper_retailers(seed), 160);
        let crowd = pd_sheriff::Crowd::new(
            seed,
            CrowdConfig {
                users: 10,
                checks: 0,
                ..CrowdConfig::default()
            },
            &mut world,
        );
        let mut crowd_store = MeasurementStore::new();
        crowd_store.push(meas("a.example", "x", 1, 3, 14));
        crowd_store.push(meas("b.example", "y", 2, 4, 14));
        crowd_store.push(meas("a.example", "z", 1, 5, 14));
        let mut crawl_store = MeasurementStore::new();
        crawl_store.push(meas("a.example", "x", u32::MAX, 120, 14));
        crawl_store.push(meas("a.example", "x", u32::MAX, 121, 14));
        crawl_store.push(meas("a.example", "w", u32::MAX, 120, 13));

        let s = dataset_summary(&crowd, &crowd_store, &crawl_store);
        assert_eq!(s.crowd_requests, 3);
        assert_eq!(s.crowd_users, 2);
        assert_eq!(s.crowd_domains, 2);
        assert_eq!(s.crawled_retailers, 1);
        assert_eq!(s.crawled_products, 2);
        assert_eq!(s.crawl_days, 2);
        assert_eq!(s.crawled_prices, 14 + 14 + 13);

        // Feeding the same rows through the streaming scan — crawl rows
        // first, crowd rows reversed — lands on identical numbers: the
        // chunked store path depends on this order independence.
        let mut scan = SummaryScan::new();
        for m in crawl_store.records().iter().rev() {
            scan.crawl_row(m);
        }
        for m in crowd_store.records().iter().rev() {
            scan.crowd_row(m);
        }
        assert_eq!(scan.finish(&crowd), s);
    }
}
