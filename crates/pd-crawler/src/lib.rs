//! The systematic crawler (Sec. 4).
//!
//! "Afterwards, we systematically crawled the sites of retailers where
//! $heriff revealed price differences. … The crawled dataset focuses on
//! 21 retailers. We randomly picked up to 100 products per retailer and
//! checked the prices of these products on a daily basis for a week."
//!
//! * [`select`] — ranks crowd-flagged domains by confirmed-variation
//!   count and picks the crawl targets,
//! * [`crawl`] — the crawl driver: product sampling, the 7-day daily
//!   schedule, synchronized 14-point checks per product, politeness
//!   spacing and retry bookkeeping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crawl;
pub mod select;

pub use crawl::{CrawlConfig, Crawler};
pub use select::select_targets;
