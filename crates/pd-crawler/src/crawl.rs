//! The crawl driver.
//!
//! For every target retailer: sample up to `products_per_retailer`
//! products, then for each of `days` consecutive days run one
//! synchronized 14-point check per product. Checks within a retailer are
//! spaced by a politeness gap, and each day's sweep starts at a fixed
//! hour — the same every day, so day-over-day comparisons are apples to
//! apples.
//!
//! The per-retailer highlight is captured once from a reference render
//! and reused for every product — valid because a retailer's template is
//! shared across its product pages, which is exactly the economy of scale
//! the paper gets from $heriff's crowd highlights.

use pd_extract::HighlightExtractor;
use pd_net::clock::{SimDuration, SimTime};
use pd_sheriff::measurement::{Measurement, NoiseTruth};
use pd_sheriff::{MeasurementStore, Sheriff};
use pd_util::{ProductId, RequestId, Seed, UserId};
use pd_web::template::price_selector;
use pd_web::{Request, WebWorld};
use serde::{Deserialize, Serialize};

/// The synthetic "user" id crawler probes are recorded under.
pub const CRAWLER_USER: UserId = UserId(u32::MAX);

/// Crawl parameters. Paper defaults: ≤100 products, 7 days.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrawlConfig {
    /// Maximum products sampled per retailer.
    pub products_per_retailer: usize,
    /// Number of consecutive crawl days.
    pub days: u64,
    /// First crawl day (simulation day index; the paper's crawl ran
    /// after the crowd window).
    pub start_day: u64,
    /// Hour-of-day each daily sweep starts, in ms.
    pub sweep_start_ms: u64,
    /// Politeness gap between two checks on the same retailer.
    pub politeness: SimDuration,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            products_per_retailer: 100,
            days: 7,
            start_day: 120,
            sweep_start_ms: 6 * 3_600_000, // 06:00 UTC
            politeness: SimDuration::from_secs(2),
        }
    }
}

/// Per-retailer crawl bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetailerCrawlStats {
    /// Domain crawled.
    pub domain: String,
    /// Products sampled.
    pub products: usize,
    /// Checks issued (products × days).
    pub checks: usize,
    /// Checks where every vantage point extracted a price.
    pub complete_checks: usize,
    /// Retries performed (failed fetch replays).
    pub retries: usize,
}

/// The systematic crawler.
#[derive(Debug)]
pub struct Crawler {
    config: CrawlConfig,
    seed: Seed,
}

impl Crawler {
    /// Creates a crawler.
    #[must_use]
    pub fn new(seed: Seed, config: CrawlConfig) -> Self {
        Crawler {
            config,
            seed: seed.derive("crawler"),
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &CrawlConfig {
        &self.config
    }

    /// Crawls the given target domains. Unknown domains are skipped (and
    /// reported with zero products in the stats). Equivalent to crawling
    /// every target with [`Crawler::crawl_one`] and merging the per-shard
    /// stores in target order.
    #[must_use]
    pub fn crawl(
        &self,
        world: &WebWorld,
        sheriff: &Sheriff,
        targets: &[String],
    ) -> (MeasurementStore, Vec<RetailerCrawlStats>) {
        let mut store = MeasurementStore::new();
        let mut stats = Vec::with_capacity(targets.len());
        for domain in targets {
            let (shard, s) = self.crawl_one(world, sheriff, domain);
            store.extend(shard);
            stats.push(s);
        }
        (store, stats)
    }

    /// Parallel-safe entry point: crawls a single retailer into its own
    /// store shard. The per-retailer RNG is derived from the domain name
    /// (not from crawl order), so shards are independent of scheduling
    /// and can be produced concurrently, then merged in target order.
    #[must_use]
    pub fn crawl_one(
        &self,
        world: &WebWorld,
        sheriff: &Sheriff,
        domain: &str,
    ) -> (MeasurementStore, RetailerCrawlStats) {
        let mut store = MeasurementStore::new();
        let stats = self.crawl_retailer(world, sheriff, domain, &mut store);
        (store, stats)
    }

    fn crawl_retailer(
        &self,
        world: &WebWorld,
        sheriff: &Sheriff,
        domain: &str,
        store: &mut MeasurementStore,
    ) -> RetailerCrawlStats {
        let mut stats = RetailerCrawlStats {
            domain: domain.to_owned(),
            products: 0,
            checks: 0,
            complete_checks: 0,
            retries: 0,
        };
        let Some(server) = world.server_by_domain(domain) else {
            return stats;
        };
        let catalog = server.catalog();
        let sample = catalog.sample(self.seed.derive(domain), self.config.products_per_retailer);
        stats.products = sample.len();

        // Reference highlight: captured once per retailer (stands in for
        // the crowd-provided highlight the paper reused).
        let Some(extractor) = self.reference_highlight(world, sheriff, domain, server, &sample)
        else {
            return stats;
        };

        for day in 0..self.config.days {
            let day_start = SimTime::from_millis(
                (self.config.start_day + day) * 24 * 3_600_000 + self.config.sweep_start_ms,
            );
            let mut t = day_start;
            for &pid in &sample {
                let product = catalog.product(pid);
                let path = format!("/product/{}", product.slug);
                let mut observations = sheriff.check(world, domain, &path, &extractor, t, &[]);
                // Retry any failed observation once — transient failures
                // are the normal case on the real web; here the path is
                // exercised by unknown-host tests.
                if observations.iter().any(|o| o.price.is_none()) {
                    stats.retries += 1;
                    let retry_t = t + SimDuration::from_secs(30);
                    let retried = sheriff.check(world, domain, &path, &extractor, retry_t, &[]);
                    for (slot, new) in observations.iter_mut().zip(retried) {
                        if slot.price.is_none() && new.price.is_some() {
                            *slot = new;
                        }
                    }
                }
                stats.checks += 1;
                if observations.iter().all(|o| o.price.is_some()) {
                    stats.complete_checks += 1;
                }
                store.push(Measurement {
                    request: RequestId::new(0), // assigned by store
                    user: CRAWLER_USER,
                    domain: domain.to_owned(),
                    product_slug: product.slug.clone(),
                    time: t,
                    user_price: None,
                    observations,
                    noise_truth: NoiseTruth::Clean,
                });
                t += self.config.politeness;
            }
        }
        stats
    }

    /// Renders one sampled product from the first vantage point and
    /// captures the retailer's highlight.
    fn reference_highlight(
        &self,
        world: &WebWorld,
        sheriff: &Sheriff,
        domain: &str,
        server: &pd_web::RetailerServer,
        sample: &[ProductId],
    ) -> Option<HighlightExtractor> {
        let first = sample.first()?;
        let product = server.catalog().product(*first);
        let vp = sheriff.vantage_points().first()?;
        let req = Request::get(
            domain,
            &format!("/product/{}", product.slug),
            vp.addr,
            SimTime::from_millis(self.config.start_day * 24 * 3_600_000),
        );
        let resp = world.fetch(&req);
        if resp.status.code() != 200 {
            return None;
        }
        let doc = pd_html::parse(&resp.body);
        HighlightExtractor::from_highlight(&doc, &price_selector(server.spec().template_style))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_net::ip::IpAllocator;
    use pd_net::latency::LatencyModel;
    use pd_net::vantage::paper_vantage_points;
    use pd_pricing::paper_retailers;

    fn rig() -> (WebWorld, Sheriff) {
        let seed = Seed::new(1307);
        let mut world = WebWorld::build(seed, paper_retailers(seed), 160);
        let mut alloc = IpAllocator::new();
        let vps: Vec<_> = paper_vantage_points(&mut alloc)
            .into_iter()
            .map(|mut vp| {
                vp.addr = world.allocate_client(&vp.location);
                vp
            })
            .collect();
        (world, Sheriff::new(vps, LatencyModel::new(seed)))
    }

    fn small_config() -> CrawlConfig {
        CrawlConfig {
            products_per_retailer: 5,
            days: 2,
            start_day: 100,
            ..CrawlConfig::default()
        }
    }

    #[test]
    fn crawl_produces_products_times_days_checks() {
        let (world, sheriff) = rig();
        let crawler = Crawler::new(Seed::new(1), small_config());
        let (store, stats) = crawler.crawl(
            &world,
            &sheriff,
            &["www.digitalrev.com".to_owned(), "www.energie.it".to_owned()],
        );
        assert_eq!(store.len(), 2 * 5 * 2);
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert_eq!(s.products, 5);
            assert_eq!(s.checks, 10);
            assert_eq!(s.complete_checks, 10, "{}", s.domain);
            assert_eq!(s.retries, 0);
        }
    }

    #[test]
    fn crawl_covers_every_vantage_point() {
        let (world, sheriff) = rig();
        let crawler = Crawler::new(Seed::new(1), small_config());
        let (store, _) = crawler.crawl(&world, &sheriff, &["www.digitalrev.com".to_owned()]);
        for m in store.records() {
            assert_eq!(m.observations.len(), 14);
            assert_eq!(m.user, CRAWLER_USER);
        }
    }

    #[test]
    fn unknown_domain_reports_zero_products() {
        let (world, sheriff) = rig();
        let crawler = Crawler::new(Seed::new(1), small_config());
        let (store, stats) = crawler.crawl(&world, &sheriff, &["gone.example".to_owned()]);
        assert_eq!(store.len(), 0);
        assert_eq!(stats[0].products, 0);
        assert_eq!(stats[0].checks, 0);
    }

    #[test]
    fn sampling_caps_at_catalog_size() {
        let (world, sheriff) = rig();
        let mut cfg = small_config();
        cfg.products_per_retailer = 10_000;
        let crawler = Crawler::new(Seed::new(1), cfg);
        let (_, stats) = crawler.crawl(&world, &sheriff, &["www.mauijim.com".to_owned()]);
        let size = world
            .server_by_domain("www.mauijim.com")
            .unwrap()
            .catalog()
            .len();
        assert_eq!(stats[0].products, size);
    }

    #[test]
    fn daily_sweeps_land_on_consecutive_days() {
        let (world, sheriff) = rig();
        let crawler = Crawler::new(Seed::new(1), small_config());
        let (store, _) = crawler.crawl(&world, &sheriff, &["www.digitalrev.com".to_owned()]);
        let days: std::collections::BTreeSet<u64> =
            store.records().iter().map(|m| m.time.day_index()).collect();
        assert_eq!(days, [100u64, 101].into_iter().collect());
    }

    #[test]
    fn crawl_recovers_from_injected_transient_failures() {
        let (mut world, sheriff) = rig();
        world.set_failure_rate(0.05);
        let crawler = Crawler::new(Seed::new(1), small_config());
        let (store, stats) = crawler.crawl(&world, &sheriff, &["www.digitalrev.com".to_owned()]);
        assert!(stats[0].retries > 0, "5% failure rate must trigger retries");
        // After one retry round the overwhelming majority of checks are
        // complete again (P(fail twice) ≈ 0.25%/observation).
        let complete_frac = stats[0].complete_checks as f64 / stats[0].checks as f64;
        assert!(complete_frac >= 0.8, "complete {complete_frac}");
        // Every stored measurement still has 14 observation slots.
        assert!(store.records().iter().all(|m| m.observations.len() == 14));
    }

    #[test]
    fn crawl_is_deterministic() {
        let (world, sheriff) = rig();
        let a = Crawler::new(Seed::new(3), small_config()).crawl(
            &world,
            &sheriff,
            &["www.killah.com".to_owned(), "www.digitalrev.com".to_owned()],
        );
        let b = Crawler::new(Seed::new(3), small_config()).crawl(
            &world,
            &sheriff,
            &["www.killah.com".to_owned(), "www.digitalrev.com".to_owned()],
        );
        assert_eq!(a.0.len(), b.0.len());
        for (x, y) in a.0.records().iter().zip(b.0.records()) {
            assert_eq!(x.prices(), y.prices());
        }
    }

    #[test]
    fn shard_merge_matches_sequential_crawl() {
        let (world, sheriff) = rig();
        let crawler = Crawler::new(Seed::new(3), small_config());
        let targets = ["www.killah.com", "www.digitalrev.com", "www.energie.it"];
        let owned: Vec<String> = targets.iter().map(|t| (*t).to_owned()).collect();
        let (seq_store, seq_stats) = crawler.crawl(&world, &sheriff, &owned);
        // Crawl shards out of order, merge in target order.
        let mut shards: Vec<(MeasurementStore, RetailerCrawlStats)> = targets
            .iter()
            .rev()
            .map(|t| crawler.crawl_one(&world, &sheriff, t))
            .collect();
        shards.reverse();
        let mut store = MeasurementStore::new();
        let mut stats = Vec::new();
        for (shard, s) in shards {
            store.extend(shard);
            stats.push(s);
        }
        assert_eq!(stats, seq_stats);
        assert_eq!(store.len(), seq_store.len());
        for (a, b) in store.records().iter().zip(seq_store.records()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn multiplicative_retailer_yields_full_extent() {
        // digitalrev discriminates every product: every check must show
        // a confirmed variation (Fig. 3's 100 % extent).
        let (world, sheriff) = rig();
        let crawler = Crawler::new(Seed::new(1), small_config());
        let (store, _) = crawler.crawl(&world, &sheriff, &["www.digitalrev.com".to_owned()]);
        let fx = world.fx();
        for m in store.records() {
            let day = m.day().min(fx.days() - 1);
            let verdict = pd_currency::band_filter(fx, &m.prices(), day).unwrap();
            assert!(verdict.genuine, "check on {} not confirmed", m.product_slug);
        }
    }
}
