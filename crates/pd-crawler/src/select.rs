//! Crawl-target selection from the crowdsourced dataset.
//!
//! A domain becomes a crawl target when the (cleaned) crowd data shows at
//! least `min_confirmed` checks whose price variation survives the
//! exchange-band filter. This is the paper's funnel: the crowd covers 600
//! domains cheaply; the expensive systematic crawl focuses on the
//! retailers the crowd flagged.

use pd_currency::FxSeries;
use pd_sheriff::MeasurementStore;
use serde::{Deserialize, Serialize};

/// One ranked crawl candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetCandidate {
    /// Domain name.
    pub domain: String,
    /// Crowd checks on this domain.
    pub checks: usize,
    /// Checks with band-confirmed price variation.
    pub confirmed: usize,
}

/// Ranks domains by confirmed-variation count (descending, then by
/// domain for determinism) and returns those with at least
/// `min_confirmed` confirmed checks.
#[must_use]
pub fn select_targets(
    store: &MeasurementStore,
    fx: &FxSeries,
    min_confirmed: usize,
) -> Vec<TargetCandidate> {
    let mut by_domain: std::collections::BTreeMap<String, (usize, usize)> =
        std::collections::BTreeMap::new();
    for m in store.records() {
        let entry = by_domain.entry(m.domain.clone()).or_insert((0, 0));
        entry.0 += 1;
        let day = m.day().min(fx.days().saturating_sub(1));
        let confirmed = pd_currency::band_filter(fx, &m.prices(), day)
            .map(|v| v.genuine)
            .unwrap_or(false);
        if confirmed {
            entry.1 += 1;
        }
    }
    let mut out: Vec<TargetCandidate> = by_domain
        .into_iter()
        .map(|(domain, (checks, confirmed))| TargetCandidate {
            domain,
            checks,
            confirmed,
        })
        .filter(|c| c.confirmed >= min_confirmed)
        .collect();
    out.sort_by(|a, b| {
        b.confirmed
            .cmp(&a.confirmed)
            .then_with(|| a.domain.cmp(&b.domain))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_currency::{Currency, Price};
    use pd_net::clock::SimTime;
    use pd_sheriff::measurement::{Measurement, NoiseTruth};
    use pd_sheriff::PriceObservation;
    use pd_util::{Money, RequestId, Seed, UserId, VantageId};

    fn fx() -> FxSeries {
        FxSeries::generate(Seed::new(1307), 160)
    }

    fn meas(domain: &str, prices_minor: &[i64]) -> Measurement {
        Measurement {
            request: RequestId::new(0),
            user: UserId::new(0),
            domain: domain.into(),
            product_slug: "p".into(),
            time: SimTime::from_millis(3 * 24 * 3_600_000),
            user_price: None,
            observations: prices_minor
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    PriceObservation::ok(
                        VantageId::new(i as u32),
                        Price::new(Money::from_minor(*m), Currency::Usd),
                        String::new(),
                    )
                })
                .collect(),
            noise_truth: NoiseTruth::Clean,
        }
    }

    #[test]
    fn flags_only_varying_domains() {
        let mut store = pd_sheriff::MeasurementStore::new();
        store.push(meas("flat.example", &[1000, 1000, 1000]));
        store.push(meas("vary.example", &[1000, 1300]));
        store.push(meas("vary.example", &[2000, 2500]));
        let targets = select_targets(&store, &fx(), 1);
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].domain, "vary.example");
        assert_eq!(targets[0].checks, 2);
        assert_eq!(targets[0].confirmed, 2);
    }

    #[test]
    fn threshold_filters_one_offs() {
        let mut store = pd_sheriff::MeasurementStore::new();
        store.push(meas("once.example", &[1000, 1300]));
        store.push(meas("twice.example", &[1000, 1300]));
        store.push(meas("twice.example", &[1000, 1200]));
        let targets = select_targets(&store, &fx(), 2);
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].domain, "twice.example");
    }

    #[test]
    fn ranking_is_descending_and_deterministic() {
        let mut store = pd_sheriff::MeasurementStore::new();
        for _ in 0..5 {
            store.push(meas("big.example", &[1000, 1300]));
        }
        for _ in 0..2 {
            store.push(meas("small.example", &[1000, 1300]));
        }
        store.push(meas("tie-a.example", &[1000, 1300]));
        store.push(meas("tie-b.example", &[1000, 1300]));
        let targets = select_targets(&store, &fx(), 1);
        let domains: Vec<_> = targets.iter().map(|t| t.domain.as_str()).collect();
        assert_eq!(
            domains,
            vec![
                "big.example",
                "small.example",
                "tie-a.example",
                "tie-b.example"
            ]
        );
    }

    #[test]
    fn empty_store_selects_nothing() {
        let store = pd_sheriff::MeasurementStore::new();
        assert!(select_targets(&store, &fx(), 1).is_empty());
    }
}
