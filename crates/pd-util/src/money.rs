//! Exact fixed-point money.
//!
//! All prices in the simulation are stored as an integer count of *minor
//! units* (cents, pence, …). Floating point is only used at the analysis
//! boundary (ratios, statistics), never for the prices themselves: the
//! paper's currency filter compares prices that have round-tripped through
//! HTML rendering and locale-aware parsing, and any representation drift
//! would show up as a phantom price variation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// An exact amount of money in minor units (e.g. cents).
///
/// `Money` is currency-agnostic on purpose: the currency is carried
/// alongside it by [`pd-currency`](https://example.org)'s `Price` type.
/// Arithmetic is checked in debug builds (Rust's native overflow checks)
/// and the explicit [`Money::checked_add`]-style APIs are available where
/// untrusted magnitudes are combined.
///
/// # Examples
///
/// ```
/// use pd_util::Money;
///
/// let a = Money::from_major_minor(12, 99); // 12.99
/// let b = Money::from_minor(1);            //  0.01
/// assert_eq!((a + b).to_minor(), 1300);
/// assert_eq!(a.to_string(), "12.99");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Money {
    minor: i64,
}

impl Money {
    /// Zero amount.
    pub const ZERO: Money = Money { minor: 0 };

    /// Creates an amount from minor units (cents).
    #[must_use]
    pub const fn from_minor(minor: i64) -> Self {
        Money { minor }
    }

    /// Creates an amount from major units and a minor remainder.
    ///
    /// `from_major_minor(12, 99)` is 12.99. `minor` must be `0..=99`;
    /// the sign is taken from `major`.
    ///
    /// # Panics
    ///
    /// Panics if `minor > 99`.
    #[must_use]
    pub fn from_major_minor(major: i64, minor: u8) -> Self {
        assert!(minor <= 99, "minor unit out of range: {minor}");
        let sign = if major < 0 { -1 } else { 1 };
        Money {
            minor: major * 100 + sign * i64::from(minor),
        }
    }

    /// Creates an amount from a floating dollar value, rounding to the
    /// nearest cent (half away from zero).
    ///
    /// Only used by *generators* (catalog construction), never by parsers.
    #[must_use]
    pub fn from_f64(value: f64) -> Self {
        Money {
            minor: (value * 100.0).round() as i64,
        }
    }

    /// The amount in minor units.
    #[must_use]
    pub const fn to_minor(self) -> i64 {
        self.minor
    }

    /// The amount as a floating dollar value (analysis boundary only).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.minor as f64 / 100.0
    }

    /// Major part (truncated toward zero).
    #[must_use]
    pub const fn major(self) -> i64 {
        self.minor / 100
    }

    /// Minor remainder (always `0..=99`).
    #[must_use]
    pub const fn minor_part(self) -> u8 {
        (self.minor % 100).unsigned_abs() as u8
    }

    /// True if the amount is strictly positive.
    #[must_use]
    pub const fn is_positive(self) -> bool {
        self.minor > 0
    }

    /// Checked addition.
    #[must_use]
    pub fn checked_add(self, rhs: Money) -> Option<Money> {
        self.minor.checked_add(rhs.minor).map(Money::from_minor)
    }

    /// Checked subtraction.
    #[must_use]
    pub fn checked_sub(self, rhs: Money) -> Option<Money> {
        self.minor.checked_sub(rhs.minor).map(Money::from_minor)
    }

    /// Multiplies by a factor, rounding to the nearest minor unit
    /// (half away from zero). This is how pricing engines apply
    /// multiplicative location factors.
    #[must_use]
    pub fn scale(self, factor: f64) -> Money {
        Money {
            minor: (self.minor as f64 * factor).round() as i64,
        }
    }

    /// Ratio of `self` to `other` as `f64`.
    ///
    /// Returns `None` when `other` is zero. This is the quantity every
    /// figure in the paper plots (max/min price ratios).
    #[must_use]
    pub fn ratio_to(self, other: Money) -> Option<f64> {
        if other.minor == 0 {
            None
        } else {
            Some(self.minor as f64 / other.minor as f64)
        }
    }

    /// Rounds to "charm" retail pricing: the nearest `x.99` not above the
    /// current value plus one cent (e.g. 12.34 → 11.99, 12.99 → 12.99).
    ///
    /// Retail catalogs overwhelmingly use charm prices; rendering them makes
    /// the synthetic product pages look like the paper's targets and
    /// exercises the parser on realistic values.
    #[must_use]
    pub fn charm(self) -> Money {
        if self.minor <= 0 {
            return self;
        }
        let major = (self.minor + 1) / 100; // round up to the next whole unit
        let candidate = major * 100 - 1; // x.99 just below it
        if candidate <= 0 {
            Money::from_minor(99)
        } else {
            Money::from_minor(candidate)
        }
    }

    /// Absolute difference between two amounts.
    #[must_use]
    pub fn abs_diff(self, other: Money) -> Money {
        Money {
            minor: (self.minor - other.minor).abs(),
        }
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money {
            minor: self.minor + rhs.minor,
        }
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money {
            minor: self.minor - rhs.minor,
        }
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.minor += rhs.minor;
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        self.minor -= rhs.minor;
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money { minor: -self.minor }
    }
}

impl fmt::Display for Money {
    /// Canonical (locale-free) rendering: `-?major.MM`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.minor < 0 { "-" } else { "" };
        write!(f, "{sign}{}.{:02}", self.major().abs(), self.minor_part())
    }
}

impl std::iter::Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_parts() {
        let m = Money::from_major_minor(12, 99);
        assert_eq!(m.to_minor(), 1299);
        assert_eq!(m.major(), 12);
        assert_eq!(m.minor_part(), 99);
    }

    #[test]
    fn negative_amounts() {
        let m = Money::from_major_minor(-3, 50);
        assert_eq!(m.to_minor(), -350);
        assert_eq!(m.major(), -3);
        assert_eq!(m.minor_part(), 50);
        assert_eq!(m.to_string(), "-3.50");
    }

    #[test]
    #[should_panic(expected = "minor unit out of range")]
    fn rejects_out_of_range_minor() {
        let _ = Money::from_major_minor(1, 100);
    }

    #[test]
    fn display_is_canonical() {
        assert_eq!(Money::from_minor(5).to_string(), "0.05");
        assert_eq!(Money::from_minor(100).to_string(), "1.00");
        assert_eq!(Money::from_minor(-5).to_string(), "-0.05");
        assert_eq!(Money::from_minor(123456).to_string(), "1234.56");
    }

    #[test]
    fn from_f64_rounds_to_cent() {
        assert_eq!(Money::from_f64(12.994).to_minor(), 1299);
        assert_eq!(Money::from_f64(12.995).to_minor(), 1300);
        assert_eq!(Money::from_f64(0.004).to_minor(), 0);
    }

    #[test]
    fn scale_applies_multiplicative_factor() {
        let base = Money::from_minor(10_000); // 100.00
        assert_eq!(base.scale(1.15).to_minor(), 11_500);
        assert_eq!(base.scale(0.5).to_minor(), 5_000);
        // rounding: 99.99 * 1.1 = 109.989 -> 109.99
        assert_eq!(Money::from_minor(9_999).scale(1.1).to_minor(), 10_999);
    }

    #[test]
    fn ratio_to_handles_zero() {
        let a = Money::from_minor(200);
        assert_eq!(a.ratio_to(Money::from_minor(100)), Some(2.0));
        assert_eq!(a.ratio_to(Money::ZERO), None);
    }

    #[test]
    fn charm_prices() {
        assert_eq!(Money::from_minor(1234).charm().to_minor(), 1199);
        assert_eq!(Money::from_minor(1299).charm().to_minor(), 1299);
        assert_eq!(Money::from_minor(1300).charm().to_minor(), 1299);
        assert_eq!(Money::from_minor(50).charm().to_minor(), 99);
        assert_eq!(Money::from_minor(99).charm().to_minor(), 99);
        assert_eq!(Money::ZERO.charm(), Money::ZERO);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Money = [1, 2, 3].into_iter().map(Money::from_minor).sum();
        assert_eq!(total.to_minor(), 6);
    }

    #[test]
    fn checked_arithmetic_detects_overflow() {
        let max = Money::from_minor(i64::MAX);
        assert!(max.checked_add(Money::from_minor(1)).is_none());
        let min = Money::from_minor(i64::MIN);
        assert!(min.checked_sub(Money::from_minor(1)).is_none());
        assert_eq!(
            Money::from_minor(1).checked_add(Money::from_minor(2)),
            Some(Money::from_minor(3))
        );
    }

    #[test]
    fn abs_diff_symmetry() {
        let a = Money::from_minor(120);
        let b = Money::from_minor(200);
        assert_eq!(a.abs_diff(b), b.abs_diff(a));
        assert_eq!(a.abs_diff(b).to_minor(), 80);
    }

    proptest! {
        #[test]
        fn prop_display_round_trips_via_parts(minor in -1_000_000_000i64..1_000_000_000) {
            let m = Money::from_minor(minor);
            let sign = if minor < 0 { -1 } else { 1 };
            let rebuilt = sign * (m.major().abs() * 100 + i64::from(m.minor_part()));
            prop_assert_eq!(rebuilt, minor);
        }

        #[test]
        fn prop_add_sub_inverse(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
            let (ma, mb) = (Money::from_minor(a), Money::from_minor(b));
            prop_assert_eq!(ma + mb - mb, ma);
        }

        #[test]
        fn prop_charm_ends_in_99_and_is_close(minor in 1i64..10_000_000) {
            let c = Money::from_minor(minor).charm();
            prop_assert_eq!(c.to_minor() % 100, 99);
            // charm price is within one major unit of the original
            prop_assert!((c.to_minor() - minor).abs() <= 100);
        }

        #[test]
        fn prop_scale_identity(minor in 0i64..10_000_000) {
            prop_assert_eq!(Money::from_minor(minor).scale(1.0).to_minor(), minor);
        }

        #[test]
        fn prop_ratio_of_scaled(minor in 100i64..10_000_000, factor in 1.0f64..3.0) {
            let base = Money::from_minor(minor);
            let scaled = base.scale(factor);
            let ratio = scaled.ratio_to(base).unwrap();
            // Ratio recovered from cents is within a cent's relative error.
            prop_assert!((ratio - factor).abs() < 1.0 / minor as f64 + 1e-9);
        }
    }
}
