//! Hierarchical deterministic seeding.
//!
//! Every stochastic component of the simulation receives a [`Seed`] rather
//! than an RNG. A component that needs randomness derives a *child* seed
//! with a string label ([`Seed::derive`]) or an index ([`Seed::derive_idx`])
//! and builds its own RNG from it. This gives the workspace two properties
//! that a single shared RNG cannot:
//!
//! 1. **Isolation** — adding or removing a random draw inside one module
//!    does not shift the random stream seen by any other module, so test
//!    expectations stay stable as the code evolves.
//! 2. **Parallel safety** — fan-out code (e.g. the 14-vantage-point fetch)
//!    can hand each branch `seed.derive_idx(i)` and evaluate branches in any
//!    order, or in parallel, with identical results.
//!
//! Derivation is a small dedicated mix based on SplitMix64 with FNV-1a label
//! absorption. It is *not* cryptographic and does not need to be; it only
//! needs good avalanche behaviour so that sibling seeds are uncorrelated.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A deterministic seed for one component of the simulation.
///
/// `Seed` is cheap to copy and hash-derived seeds are stable across runs,
/// platforms and (intentionally) refactorings that move code between
/// modules, as long as the derivation *labels* stay the same.
///
/// # Examples
///
/// ```
/// use pd_util::Seed;
///
/// let root = Seed::new(1307);
/// let catalog = root.derive("catalog");
/// let crowd = root.derive("crowd");
/// assert_ne!(catalog, crowd);
/// // Same path, same seed — reproducible.
/// assert_eq!(root.derive("catalog"), Seed::new(1307).derive("catalog"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Seed(u64);

/// The experiment seed used throughout the reproduction.
///
/// 1307 is the arXiv year+month of the paper (2013-07).
pub const EXPERIMENT_SEED: Seed = Seed(1307);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One round of the SplitMix64 output function: a cheap, well-studied
/// 64-bit finalizer with full avalanche.
#[inline]
fn splitmix_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Seed {
    /// Creates a seed from a raw value.
    #[must_use]
    pub const fn new(value: u64) -> Self {
        Seed(value)
    }

    /// Returns the raw 64-bit value of this seed.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Derives an independent child seed from a string label.
    ///
    /// Labels are absorbed with FNV-1a and finalized with SplitMix64, so
    /// `derive("a")` and `derive("b")` are uncorrelated even for labels
    /// that share a long prefix.
    #[must_use]
    pub fn derive(self, label: &str) -> Self {
        let mut h = FNV_OFFSET ^ self.0;
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
        Seed(splitmix_mix(h))
    }

    /// Derives an independent child seed from an index.
    ///
    /// Useful when fanning out over a numbered collection (vantage points,
    /// products, days). Equivalent derivations with different indices are
    /// pairwise uncorrelated.
    #[must_use]
    pub fn derive_idx(self, index: u64) -> Self {
        Seed(splitmix_mix(
            self.0 ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }

    /// Builds a standard RNG from this seed.
    ///
    /// [`StdRng`] is used everywhere in the workspace; it is seedable,
    /// portable and fast enough for simulation workloads.
    #[must_use]
    pub fn rng(self) -> StdRng {
        StdRng::seed_from_u64(self.0)
    }
}

impl From<u64> for Seed {
    fn from(value: u64) -> Self {
        Seed(value)
    }
}

impl std::fmt::Display for Seed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed:{:#018x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn derive_is_deterministic() {
        let a = Seed::new(42).derive("catalog");
        let b = Seed::new(42).derive("catalog");
        assert_eq!(a, b);
    }

    #[test]
    fn derive_differs_by_label() {
        let root = Seed::new(42);
        assert_ne!(root.derive("a"), root.derive("b"));
        assert_ne!(root.derive("a"), root);
    }

    #[test]
    fn derive_differs_by_parent() {
        assert_ne!(Seed::new(1).derive("x"), Seed::new(2).derive("x"));
    }

    #[test]
    fn derive_idx_unique_over_wide_range() {
        let root = Seed::new(7);
        let seen: HashSet<u64> = (0..10_000).map(|i| root.derive_idx(i).value()).collect();
        assert_eq!(seen.len(), 10_000, "index derivation must not collide");
    }

    #[test]
    fn labels_with_shared_prefix_are_uncorrelated() {
        let root = Seed::new(9);
        let a = root.derive("retailer-1").value();
        let b = root.derive("retailer-10").value();
        // Hamming distance should be near 32 for avalanche behaviour.
        let dist = (a ^ b).count_ones();
        assert!((10..=54).contains(&dist), "poor avalanche: distance {dist}");
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut r1 = Seed::new(5).derive("x").rng();
        let mut r2 = Seed::new(5).derive("x").rng();
        for _ in 0..16 {
            assert_eq!(r1.random::<u64>(), r2.random::<u64>());
        }
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Seed::new(0x1307).to_string(), "seed:0x0000000000001307");
    }

    #[test]
    fn experiment_seed_value() {
        assert_eq!(EXPERIMENT_SEED.value(), 1307);
    }

    #[test]
    fn from_u64_round_trips() {
        let s: Seed = 99u64.into();
        assert_eq!(s.value(), 99);
    }
}
