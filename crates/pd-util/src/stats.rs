//! Statistics kernels for the figure analyses.
//!
//! Every evaluation figure in the paper is either a box-plot family
//! (Figs. 2, 4, 7, 9), a ranking (Figs. 1, 3), or a scatter summarized by
//! envelope statistics (Figs. 5, 6, 8, 10). This module provides the exact,
//! deterministic statistics those analyses need. All quantiles use the
//! *linear interpolation* definition (R-7, the R `quantile` default — the
//! paper's plots were made in R).

use serde::{Deserialize, Serialize};

/// The five-number summary plus whisker bounds used to draw one box of a
/// box-plot, following R's `boxplot.stats` (Tukey) convention that the
/// paper's figures use: whiskers extend to the most extreme data point
/// within 1.5×IQR of the box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Smallest observation.
    pub min: f64,
    /// Lower whisker (most extreme point ≥ q1 − 1.5·IQR).
    pub whisker_lo: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Upper whisker (most extreme point ≤ q3 + 1.5·IQR).
    pub whisker_hi: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of observations.
    pub count: usize,
    /// Observations outside the whiskers, ascending.
    pub outliers: Vec<f64>,
}

impl BoxStats {
    /// Computes box-plot statistics over a sample.
    ///
    /// Returns `None` for an empty sample. NaNs are rejected by debug
    /// assertion — the pipeline never produces them.
    #[must_use]
    pub fn compute(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        debug_assert!(values.iter().all(|v| !v.is_nan()), "NaN in sample");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let q1 = quantile_sorted(&sorted, 0.25);
        let median = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // Whiskers: most extreme data point within the fence — clamped
        // to the box, since a whisker extends *from* the box. (With
        // interpolated quantiles and sparse data the nearest in-fence
        // point can fall inside the box; the whisker then collapses onto
        // the quartile, exactly as a drawn boxplot would show it.)
        let whisker_lo = sorted
            .iter()
            .copied()
            .find(|v| *v >= lo_fence)
            .unwrap_or(sorted[0])
            .min(q1);
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|v| *v <= hi_fence)
            .unwrap_or(sorted[sorted.len() - 1])
            .max(q3);
        let outliers = sorted
            .iter()
            .copied()
            .filter(|v| *v < whisker_lo || *v > whisker_hi)
            .collect();
        Some(BoxStats {
            min: sorted[0],
            whisker_lo,
            q1,
            median,
            q3,
            whisker_hi,
            max: sorted[sorted.len() - 1],
            count: sorted.len(),
            outliers,
        })
    }
}

/// Linear-interpolation quantile (R-7) of an *already sorted* sample.
///
/// # Panics
///
/// Panics if the slice is empty or `p` is outside `[0, 1]`.
#[must_use]
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&p), "quantile p out of range: {p}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let h = (sorted.len() - 1) as f64 * p;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Convenience: sorts a copy and computes the R-7 quantile.
#[must_use]
pub fn quantile(values: &[f64], p: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    quantile_sorted(&sorted, p)
}

/// Arithmetic mean. Returns `None` on an empty sample.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Sample standard deviation (n−1 denominator). `None` for n < 2.
#[must_use]
pub fn stddev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    Some(var.sqrt())
}

/// Pearson correlation coefficient between two equal-length samples.
///
/// Returns `None` if lengths differ, n < 2, or either sample is constant.
/// Used by the Fig. 10 analysis to test whether login status correlates
/// with price level (the paper finds it does not).
#[must_use]
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let mx = mean(x)?;
    let my = mean(y)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx).powi(2);
        syy += (b - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// One bucket of a logarithmic histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogBucket {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge.
    pub hi: f64,
    /// Values that fell in the bucket.
    pub count: usize,
    /// Maximum of the bucketed metric (e.g. max ratio in a price band);
    /// `None` for empty buckets.
    pub max_value: Option<f64>,
    /// Mean of the bucketed metric; `None` for empty buckets.
    pub mean_value: Option<f64>,
}

/// Buckets `(key, value)` pairs into logarithmically spaced bins over the
/// key axis and summarizes the value within each bin.
///
/// This is the Fig. 5 reduction: keys are minimum product prices
/// ($10–$10 000, log axis), values are max/min ratios, and the paper's
/// claim is about the *envelope* (max ratio) per price band.
///
/// Empty input or non-positive bounds yield an empty vector.
#[must_use]
pub fn log_bucketize(
    pairs: &[(f64, f64)],
    lo: f64,
    hi: f64,
    buckets_per_decade: usize,
) -> Vec<LogBucket> {
    if pairs.is_empty() || lo <= 0.0 || hi <= lo || buckets_per_decade == 0 {
        return Vec::new();
    }
    let decades = (hi / lo).log10();
    let n = (decades * buckets_per_decade as f64).ceil().max(1.0) as usize;
    let step = decades / n as f64;
    let mut out: Vec<LogBucket> = (0..n)
        .map(|i| {
            let blo = lo * 10f64.powf(step * i as f64);
            let bhi = lo * 10f64.powf(step * (i + 1) as f64);
            LogBucket {
                lo: blo,
                hi: bhi,
                count: 0,
                max_value: None,
                mean_value: None,
            }
        })
        .collect();
    let mut sums = vec![0.0f64; n];
    for &(key, value) in pairs {
        if key < lo || key >= hi {
            continue;
        }
        let idx = (((key / lo).log10() / step) as usize).min(n - 1);
        let b = &mut out[idx];
        b.count += 1;
        b.max_value = Some(b.max_value.map_or(value, |m| m.max(value)));
        sums[idx] += value;
    }
    for (b, sum) in out.iter_mut().zip(sums) {
        if b.count > 0 {
            b.mean_value = Some(sum / b.count as f64);
        }
    }
    out
}

/// Fraction of `values` strictly greater than `threshold`.
///
/// Fig. 3 ("extent of price differences") is this statistic with
/// `threshold = 1.0` over per-request max/min ratios.
#[must_use]
pub fn fraction_above(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|v| **v > threshold).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantile_matches_r7_reference() {
        // R: quantile(c(1,2,3,4), c(.25,.5,.75)) -> 1.75 2.50 3.25
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&v, 0.25) - 1.75).abs() < 1e-12);
        assert!((quantile(&v, 0.50) - 2.50).abs() < 1e-12);
        assert!((quantile(&v, 0.75) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn quantile_extremes() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 3.0);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[5.0], 0.73), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile_sorted(&[], 0.5);
    }

    #[test]
    fn boxstats_basic() {
        let v: Vec<f64> = (1..=11).map(f64::from).collect();
        let b = BoxStats::compute(&v).unwrap();
        assert_eq!(b.median, 6.0);
        assert_eq!(b.q1, 3.5);
        assert_eq!(b.q3, 8.5);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 11.0);
        assert!(b.outliers.is_empty());
        assert_eq!(b.count, 11);
    }

    #[test]
    fn boxstats_detects_outliers() {
        let mut v: Vec<f64> = (1..=20).map(f64::from).collect();
        v.push(100.0);
        let b = BoxStats::compute(&v).unwrap();
        assert_eq!(b.outliers, vec![100.0]);
        assert!(b.whisker_hi <= 20.0);
        assert_eq!(b.max, 100.0);
    }

    #[test]
    fn boxstats_empty_is_none() {
        assert!(BoxStats::compute(&[]).is_none());
    }

    #[test]
    fn boxstats_constant_sample() {
        let b = BoxStats::compute(&[2.0; 9]).unwrap();
        assert_eq!(b.median, 2.0);
        assert_eq!(b.whisker_lo, 2.0);
        assert_eq!(b.whisker_hi, 2.0);
        assert!(b.outliers.is_empty());
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(stddev(&[1.0]), None);
        let sd = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None); // constant x
    }

    #[test]
    fn log_bucketize_assigns_by_decade() {
        let pairs = [(15.0, 1.5), (150.0, 2.0), (1500.0, 1.2), (15.0, 3.0)];
        let buckets = log_bucketize(&pairs, 10.0, 10_000.0, 1);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].count, 2);
        assert_eq!(buckets[0].max_value, Some(3.0));
        assert!((buckets[0].mean_value.unwrap() - 2.25).abs() < 1e-12);
        assert_eq!(buckets[1].count, 1);
        assert_eq!(buckets[2].count, 1);
    }

    #[test]
    fn log_bucketize_ignores_out_of_range() {
        let pairs = [(5.0, 9.0), (20_000.0, 9.0), (100.0, 1.0)];
        let buckets = log_bucketize(&pairs, 10.0, 10_000.0, 1);
        let total: usize = buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn log_bucketize_degenerate_inputs() {
        assert!(log_bucketize(&[], 10.0, 100.0, 1).is_empty());
        assert!(log_bucketize(&[(1.0, 1.0)], 0.0, 100.0, 1).is_empty());
        assert!(log_bucketize(&[(1.0, 1.0)], 10.0, 10.0, 1).is_empty());
        assert!(log_bucketize(&[(1.0, 1.0)], 10.0, 100.0, 0).is_empty());
    }

    #[test]
    fn fraction_above_threshold() {
        assert_eq!(fraction_above(&[], 1.0), 0.0);
        assert_eq!(fraction_above(&[1.0, 1.0], 1.0), 0.0);
        assert_eq!(fraction_above(&[1.0, 1.1, 1.2, 1.0], 1.0), 0.5);
    }

    proptest! {
        #[test]
        fn prop_quantile_monotone(mut v in proptest::collection::vec(-1e6f64..1e6, 1..100),
                                  p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(quantile_sorted(&v, lo) <= quantile_sorted(&v, hi) + 1e-9);
        }

        #[test]
        fn prop_quantile_within_range(v in proptest::collection::vec(-1e6f64..1e6, 1..100),
                                      p in 0.0f64..1.0) {
            let q = quantile(&v, p);
            let mn = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let mx = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(q >= mn - 1e-9 && q <= mx + 1e-9);
        }

        #[test]
        fn prop_boxstats_ordering(v in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let b = BoxStats::compute(&v).unwrap();
            prop_assert!(b.min <= b.whisker_lo + 1e-9);
            prop_assert!(b.whisker_lo <= b.q1 + 1e-9);
            prop_assert!(b.q1 <= b.median + 1e-9);
            prop_assert!(b.median <= b.q3 + 1e-9);
            prop_assert!(b.q3 <= b.whisker_hi + 1e-9);
            prop_assert!(b.whisker_hi <= b.max + 1e-9);
            prop_assert_eq!(b.count, v.len());
        }

        #[test]
        fn prop_pearson_bounded(
            x in proptest::collection::vec(-1e3f64..1e3, 3..50),
        ) {
            let y: Vec<f64> = x.iter().map(|v| v * 2.0 + 1.0).collect();
            if let Some(r) = pearson(&x, &y) {
                prop_assert!((r - 1.0).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_fraction_above_bounded(v in proptest::collection::vec(0.0f64..10.0, 0..100),
                                       t in 0.0f64..10.0) {
            let f = fraction_above(&v, t);
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }
}
