//! A global string interner for high-repetition identifiers.
//!
//! The analysis layer touches the same few hundred domain and product
//! slugs millions of times at paper scale; storing each occurrence as an
//! owned `String` made every `CheckRow` clone an allocation. Interning
//! maps equal strings to one shared `Arc<str>`, so a "copy" is a
//! reference-count bump and equality checks usually short-circuit on
//! pointer identity.
//!
//! The pool is process-global and append-only: entries live for the
//! process lifetime, which is the right trade for identifiers drawn from
//! a small closed set (retailer domains, product slugs). Do not intern
//! unbounded user input.
//!
//! ```
//! use pd_util::intern::intern;
//!
//! let a = intern("www.shop.example");
//! let b = intern("www.shop.example");
//! assert!(std::sync::Arc::ptr_eq(&a, &b), "same string, same allocation");
//! assert_eq!(&*a, "www.shop.example");
//! ```

use std::collections::HashSet;
use std::sync::{Arc, OnceLock, RwLock};

static POOL: OnceLock<RwLock<HashSet<Arc<str>>>> = OnceLock::new();

fn pool() -> &'static RwLock<HashSet<Arc<str>>> {
    POOL.get_or_init(|| RwLock::new(HashSet::new()))
}

/// Returns the shared `Arc<str>` for `s`, allocating it into the global
/// pool on first sight. Two calls with equal strings return pointers to
/// the same allocation.
///
/// Interning sits on the parallel frame-build hot path (twice per
/// `CheckRow`), so the common case — the string is already pooled — is
/// a shared read lock; the write lock is only taken on a miss, with a
/// re-check for a racing inserter.
///
/// # Panics
///
/// Panics if the pool lock is poisoned (a thread panicked mid-intern).
#[must_use]
pub fn intern(s: &str) -> Arc<str> {
    if let Some(hit) = pool().read().expect("intern pool lock").get(s) {
        return Arc::clone(hit);
    }
    let mut pool = pool().write().expect("intern pool lock");
    // Another thread may have interned `s` between our read and write.
    if let Some(hit) = pool.get(s) {
        return Arc::clone(hit);
    }
    let fresh: Arc<str> = Arc::from(s);
    pool.insert(Arc::clone(&fresh));
    fresh
}

/// Number of distinct strings currently interned (diagnostics only).
///
/// # Panics
///
/// Panics if the pool lock is poisoned (a thread panicked mid-intern).
#[must_use]
pub fn interned_count() -> usize {
    pool().read().expect("intern pool lock").len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes_allocations() {
        let a = intern("unit-test-domain.example");
        let b = intern("unit-test-domain.example");
        let c = intern("unit-test-other.example");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(&*c, "unit-test-other.example");
    }

    #[test]
    fn pool_grows_monotonically() {
        let before = interned_count();
        let _ = intern("unit-test-growth-1.example");
        let _ = intern("unit-test-growth-1.example");
        let _ = intern("unit-test-growth-2.example");
        let after = interned_count();
        assert!(after >= before + 2, "{before} -> {after}");
    }

    #[test]
    fn interned_values_survive_concurrent_use() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| intern("unit-test-concurrent.example")))
            .collect();
        let arcs: Vec<Arc<str>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for pair in arcs.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
    }
}
