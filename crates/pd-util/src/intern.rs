//! A global string interner for high-repetition identifiers.
//!
//! The analysis layer touches the same few hundred domain and product
//! slugs millions of times at paper scale; storing each occurrence as an
//! owned `String` made every `CheckRow` clone an allocation. Interning
//! maps equal strings to one shared `Arc<str>`, so a "copy" is a
//! reference-count bump and equality checks usually short-circuit on
//! pointer identity.
//!
//! The pool is process-global. Entries stay alive as long as anything —
//! including the pool itself — holds them, which is the right trade for
//! identifiers drawn from a small closed set (retailer domains, product
//! slugs). Long-lived processes that churn through many disjoint
//! identifier sets (a sweep driver running arm after arm) can call
//! [`purge_unreferenced`] at a quiet point to drop entries nothing else
//! references anymore. Do not intern unbounded user input.
//!
//! ```
//! use pd_util::intern::intern;
//!
//! let a = intern("www.shop.example");
//! let b = intern("www.shop.example");
//! assert!(std::sync::Arc::ptr_eq(&a, &b), "same string, same allocation");
//! assert_eq!(&*a, "www.shop.example");
//! ```

use std::collections::HashSet;
use std::sync::{Arc, OnceLock, RwLock};

static POOL: OnceLock<RwLock<HashSet<Arc<str>>>> = OnceLock::new();

fn pool() -> &'static RwLock<HashSet<Arc<str>>> {
    POOL.get_or_init(|| RwLock::new(HashSet::new()))
}

/// Returns the shared `Arc<str>` for `s`, allocating it into the global
/// pool on first sight. Two calls with equal strings return pointers to
/// the same allocation.
///
/// Interning sits on the parallel frame-build hot path (twice per
/// `CheckRow`), so the common case — the string is already pooled — is
/// a shared read lock; the write lock is only taken on a miss, with a
/// re-check for a racing inserter.
///
/// # Panics
///
/// Panics if the pool lock is poisoned (a thread panicked mid-intern).
#[must_use]
pub fn intern(s: &str) -> Arc<str> {
    if let Some(hit) = pool().read().expect("intern pool lock").get(s) {
        return Arc::clone(hit);
    }
    let mut pool = pool().write().expect("intern pool lock");
    // Another thread may have interned `s` between our read and write.
    if let Some(hit) = pool.get(s) {
        return Arc::clone(hit);
    }
    let fresh: Arc<str> = Arc::from(s);
    pool.insert(Arc::clone(&fresh));
    fresh
}

/// Number of distinct strings currently interned (diagnostics only).
///
/// # Panics
///
/// Panics if the pool lock is poisoned (a thread panicked mid-intern).
#[must_use]
pub fn interned_count() -> usize {
    pool().read().expect("intern pool lock").len()
}

/// Whether `s` is currently in the pool (diagnostics and tests).
///
/// # Panics
///
/// Panics if the pool lock is poisoned (a thread panicked mid-intern).
#[must_use]
pub fn is_interned(s: &str) -> bool {
    pool().read().expect("intern pool lock").contains(s)
}

/// Drops every pooled string whose only remaining strong reference is
/// the pool's own, returning how many entries were removed.
///
/// Safe to call at any time: an entry some thread still holds (or is
/// mid-`intern` on) has `strong_count > 1` and survives; a purged string
/// is simply re-interned as a fresh allocation on next sight. The sweep
/// driver calls this between arms so a long multi-arm run does not
/// accumulate every arm's synthetic domain set for the process lifetime.
///
/// # Panics
///
/// Panics if the pool lock is poisoned (a thread panicked mid-intern).
pub fn purge_unreferenced() -> usize {
    let mut pool = pool().write().expect("intern pool lock");
    let before = pool.len();
    pool.retain(|s| Arc::strong_count(s) > 1);
    before - pool.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes_allocations() {
        let a = intern("unit-test-domain.example");
        let b = intern("unit-test-domain.example");
        let c = intern("unit-test-other.example");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(&*c, "unit-test-other.example");
    }

    #[test]
    fn pool_holds_live_entries() {
        // Hold the Arcs so a concurrent purge (other tests run in
        // parallel in this binary) cannot evict them.
        let a = intern("unit-test-growth-1.example");
        let b = intern("unit-test-growth-2.example");
        assert!(is_interned("unit-test-growth-1.example"));
        assert!(is_interned("unit-test-growth-2.example"));
        assert!(interned_count() >= 2);
        drop((a, b));
    }

    #[test]
    fn purge_drops_only_orphaned_entries() {
        let kept = intern("unit-test-purge-kept.example");
        {
            let _orphan = intern("unit-test-purge-orphan.example");
        }
        assert!(is_interned("unit-test-purge-orphan.example"));
        purge_unreferenced();
        assert!(
            !is_interned("unit-test-purge-orphan.example"),
            "orphaned entry should be purged"
        );
        assert!(
            is_interned("unit-test-purge-kept.example"),
            "live entry must survive a purge"
        );
        assert!(Arc::ptr_eq(&kept, &intern("unit-test-purge-kept.example")));
    }

    #[test]
    fn interned_values_survive_concurrent_use() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| intern("unit-test-concurrent.example")))
            .collect();
        let arcs: Vec<Arc<str>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for pair in arcs.windows(2) {
            assert!(Arc::ptr_eq(&pair[0], &pair[1]));
        }
    }
}
