//! Strongly-typed identifiers.
//!
//! The pipeline moves measurements between six crates; newtype ids make it
//! impossible to index a product table with a user id. All ids are dense
//! small integers assigned by the owning registry, which keeps datasets
//! compact and makes them usable as `Vec` indices.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
            Serialize, Deserialize, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from its dense index.
            #[must_use]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// The dense index of this id (usable as a `Vec` index).
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

define_id!(
    /// Identifies a product within one retailer's catalog.
    ProductId,
    "prod-"
);
define_id!(
    /// Identifies a retailer (one simulated e-commerce domain).
    RetailerId,
    "ret-"
);
define_id!(
    /// Identifies a crowd user (a $heriff installee).
    UserId,
    "user-"
);
define_id!(
    /// Identifies a measurement vantage point.
    VantageId,
    "vp-"
);
define_id!(
    /// Identifies one crowd price-check request (a $heriff button click).
    RequestId,
    "req-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(ProductId::new(3).to_string(), "prod-3");
        assert_eq!(RetailerId::new(0).to_string(), "ret-0");
        assert_eq!(UserId::new(12).to_string(), "user-12");
        assert_eq!(VantageId::new(7).to_string(), "vp-7");
        assert_eq!(RequestId::new(1499).to_string(), "req-1499");
    }

    #[test]
    fn index_round_trips() {
        let id = ProductId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(ProductId::from(42u32), id);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ProductId::new(1) < ProductId::new(2));
    }

    #[test]
    fn ids_work_as_map_keys() {
        use std::collections::HashMap;
        let mut m: HashMap<RetailerId, &str> = HashMap::new();
        m.insert(RetailerId::new(1), "amazon-like");
        assert_eq!(m[&RetailerId::new(1)], "amazon-like");
    }
}
