//! Foundation utilities shared by every crate in the price-discrimination
//! reproduction workspace.
//!
//! The whole reproduction is a *deterministic* discrete simulation: given the
//! same [`seed::Seed`] every crate must produce bit-identical output. This
//! crate provides the plumbing that makes that practical:
//!
//! * [`seed`] — a hierarchical seed type. Components never share an RNG;
//!   they derive independent child seeds from labelled paths, so adding a
//!   random draw in one module cannot perturb another.
//! * [`money`] — exact fixed-point money (`i64` minor units). Prices must
//!   round-trip through HTML rendering and locale-aware parsing without
//!   floating-point drift, otherwise the currency filter of the paper
//!   (Sec. 2.2) would flag phantom variations.
//! * [`stats`] — quantiles, box-plot statistics and histogram helpers used
//!   by every figure in the evaluation.
//! * [`ids`] — strongly-typed identifiers (product, retailer, user, vantage
//!   point) so the cross-crate plumbing cannot mix them up.
//! * [`mod@intern`] — a global string interner; high-repetition identifiers
//!   (retailer domains, product slugs) are shared as `Arc<str>` instead of
//!   being cloned per row.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ids;
pub mod intern;
pub mod money;
pub mod seed;
pub mod stats;

pub use ids::{ProductId, RequestId, RetailerId, UserId, VantageId};
pub use intern::intern;
pub use money::Money;
pub use seed::Seed;
