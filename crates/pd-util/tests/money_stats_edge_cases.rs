//! Edge-case coverage for the two substrate modules every figure depends
//! on: exact fixed-point money and box-plot statistics.
//!
//! The in-module unit tests cover the happy paths; this suite pins the
//! boundaries — rounding at the half-cent, zero and negative amounts,
//! cross-currency formatting conventions, and the degenerate sample sizes
//! the analyses meet at small experiment scales.

use pd_currency::Locale;
use pd_net::geo::Country;
use pd_util::stats::{self, BoxStats};
use pd_util::Money;

// --- money: rounding ---

#[test]
fn from_f64_rounds_half_away_from_zero() {
    assert_eq!(Money::from_f64(0.005).to_minor(), 1);
    assert_eq!(Money::from_f64(-0.005).to_minor(), -1);
    assert_eq!(Money::from_f64(2.675).to_minor(), 268);
    assert_eq!(Money::from_f64(-2.675).to_minor(), -268);
}

#[test]
fn from_f64_survives_float_noise_near_cent_boundaries() {
    // 1.10 is not representable exactly; the conversion must still land
    // on 110 minor units, not 109.
    for cents in 0..1_000i64 {
        let as_float = cents as f64 / 100.0;
        assert_eq!(Money::from_f64(as_float).to_minor(), cents, "{as_float}");
    }
}

#[test]
fn to_f64_round_trips_through_from_f64() {
    for minor in [0i64, 1, -1, 99, -350, 1_299, 123_456_789] {
        let m = Money::from_minor(minor);
        assert_eq!(Money::from_f64(m.to_f64()).to_minor(), minor);
    }
}

#[test]
fn scale_rounds_to_nearest_cent() {
    // 10.00 × 1.005 = 10.05 exactly; 10.01 × 1.1 = 11.011 → 11.01.
    assert_eq!(Money::from_minor(1_000).scale(1.005).to_minor(), 1_005);
    assert_eq!(Money::from_minor(1_001).scale(1.1).to_minor(), 1_101);
    // Scaling by 1.0 is the identity even for negative amounts.
    assert_eq!(Money::from_minor(-777).scale(1.0).to_minor(), -777);
}

// --- money: zero and negative amounts ---

#[test]
fn zero_is_neither_positive_nor_distorts_arithmetic() {
    assert!(!Money::ZERO.is_positive());
    assert_eq!(Money::ZERO.to_minor(), 0);
    assert_eq!(Money::ZERO.to_string(), "0.00");
    let m = Money::from_minor(4_200);
    assert_eq!((m + Money::ZERO).to_minor(), 4_200);
    assert_eq!((m - m).to_minor(), 0);
    assert_eq!((-Money::ZERO).to_minor(), 0);
}

#[test]
fn negation_and_abs_diff_are_consistent() {
    let a = Money::from_minor(1_299);
    let b = Money::from_minor(-350);
    assert_eq!((-a).to_minor(), -1_299);
    assert_eq!(a.abs_diff(b).to_minor(), 1_649);
    assert_eq!(b.abs_diff(a).to_minor(), 1_649);
    assert_eq!(a.abs_diff(a).to_minor(), 0);
}

#[test]
fn negative_amounts_format_with_single_sign() {
    assert_eq!(Money::from_minor(-5).to_string(), "-0.05");
    assert_eq!(Money::from_minor(-123_456).to_string(), "-1234.56");
}

#[test]
fn ratio_to_handles_signs_and_zero() {
    let a = Money::from_minor(200);
    assert_eq!(a.ratio_to(Money::from_minor(100)), Some(2.0));
    assert_eq!(a.ratio_to(Money::ZERO), None);
    let r = Money::from_minor(-200).ratio_to(Money::from_minor(100));
    assert_eq!(r, Some(-2.0));
}

#[test]
fn sum_of_empty_iterator_is_zero() {
    let total: Money = std::iter::empty::<Money>().sum();
    assert_eq!(total, Money::ZERO);
}

// --- money: cross-currency formatting ---

#[test]
fn us_and_uk_locales_use_prefix_symbol_and_dot_decimal() {
    let amount = Money::from_minor(129_900);
    assert_eq!(
        Locale::of_country(Country::UnitedStates).format(amount),
        "$1,299.00"
    );
    assert_eq!(
        Locale::of_country(Country::UnitedKingdom).format(amount),
        "£1,299.00"
    );
}

#[test]
fn continental_locales_swap_separators_and_suffix_the_symbol() {
    let amount = Money::from_minor(129_900);
    assert_eq!(
        Locale::of_country(Country::Germany).format(amount),
        "1.299,00\u{a0}€"
    );
    assert_eq!(
        Locale::of_country(Country::Brazil).format(amount),
        "R$1.299,00"
    );
}

#[test]
fn zero_decimal_currency_formats_without_fraction() {
    // JPY carries whole yen in the major part.
    let amount = Money::from_major_minor(1_299, 0);
    assert_eq!(Locale::of_country(Country::Japan).format(amount), "¥1,299");
}

#[test]
fn every_locale_format_parse_round_trips_negative_amounts() {
    let amount = Money::from_minor(-4_250);
    for country in [
        Country::UnitedStates,
        Country::Germany,
        Country::Poland,
        Country::Brazil,
    ] {
        let locale = Locale::of_country(country);
        let text = locale.format(amount);
        let back = locale
            .parse(&text)
            .unwrap_or_else(|e| panic!("{country:?} failed to re-parse {text:?}: {e}"));
        assert_eq!(back.amount, amount, "{country:?}: {text:?}");
    }
}

// --- stats: degenerate inputs ---

#[test]
fn boxstats_empty_input_is_none() {
    assert!(BoxStats::compute(&[]).is_none());
    assert!(stats::mean(&[]).is_none());
    assert!(stats::stddev(&[]).is_none());
}

#[test]
fn boxstats_single_sample_collapses_to_the_point() {
    let s = BoxStats::compute(&[7.25]).expect("single sample is valid");
    assert_eq!(s.count, 1);
    for v in [
        s.min,
        s.whisker_lo,
        s.q1,
        s.median,
        s.q3,
        s.whisker_hi,
        s.max,
    ] {
        assert_eq!(v, 7.25);
    }
    assert!(s.outliers.is_empty());
}

#[test]
fn boxstats_two_samples_put_median_between() {
    let s = BoxStats::compute(&[1.0, 3.0]).expect("two samples");
    assert_eq!(s.min, 1.0);
    assert_eq!(s.max, 3.0);
    assert_eq!(s.median, 2.0);
    assert!(s.q1 <= s.median && s.median <= s.q3);
}

// --- stats: median/max invariants ---

#[test]
fn boxstats_median_and_max_invariants_hold_on_varied_samples() {
    let samples: [&[f64]; 4] = [
        &[1.0, 1.0, 1.0, 1.0],
        &[5.0, -3.0, 2.5, 0.0, 9.75],
        &[1e-9, 1e9],
        &[2.0, 2.0, 2.0, 50.0], // one far outlier
    ];
    for values in samples {
        let s = BoxStats::compute(values).expect("non-empty");
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(s.max, max);
        assert_eq!(s.min, min);
        assert!(s.min <= s.median && s.median <= s.max);
        // The median is the 0.5 quantile of the same sample.
        assert_eq!(s.median, stats::quantile(values, 0.5));
        // Whiskers bracket the box; box brackets the median.
        assert!(s.whisker_lo <= s.q1 && s.q1 <= s.median);
        assert!(s.median <= s.q3 && s.q3 <= s.whisker_hi);
        // Every outlier lies strictly outside the whiskers.
        for o in &s.outliers {
            assert!(*o < s.whisker_lo || *o > s.whisker_hi);
        }
    }
}

#[test]
fn quantile_is_exact_on_an_odd_sorted_sample() {
    let v = [10.0, 20.0, 30.0, 40.0, 50.0];
    assert_eq!(stats::quantile(&v, 0.0), 10.0);
    assert_eq!(stats::quantile(&v, 0.5), 30.0);
    assert_eq!(stats::quantile(&v, 1.0), 50.0);
}

#[test]
fn fraction_above_empty_input_is_zero() {
    assert_eq!(stats::fraction_above(&[], 1.05), 0.0);
}
