//! One retailer's request handling.
//!
//! The server is a pure function of (request, resolved client location,
//! FX series): geo-localize, select locale, quote through the ground-truth
//! engine, localize the currency, render the template. Sessions and login
//! ride on cookies. `/checkout/<slug>` adds shipping and tax — *after*
//! the product page, which is exactly why the paper's product-page
//! methodology is not confounded by them ("most e-retailers do not
//! include shipping and taxing before checkout").

use crate::convert::usd_to_local;
use crate::http::{Request, Response};
use crate::template::{render, RenderInput};
use pd_currency::{FxSeries, Locale};
use pd_net::geo::{Country, Location, Region};
use pd_pricing::quote::{LoginState, QuoteContext};
use pd_pricing::{Catalog, PricingEngine, RetailerSpec};
use pd_util::{Money, Seed};

/// A simulated retailer web server.
#[derive(Debug, Clone)]
pub struct RetailerServer {
    spec: RetailerSpec,
    catalog: Catalog,
    engine: PricingEngine,
    seed: Seed,
}

impl RetailerServer {
    /// Builds the server for a retailer spec. Catalog and engine are
    /// derived from `seed` × the retailer's domain, so every retailer
    /// prices independently.
    #[must_use]
    pub fn new(seed: Seed, spec: RetailerSpec) -> Self {
        let rseed = seed.derive("retailer").derive(&spec.domain);
        let catalog = Catalog::generate(rseed, &spec.categories, spec.catalog_size);
        let engine = PricingEngine::new(rseed, spec.components.clone());
        RetailerServer {
            spec,
            catalog,
            engine,
            seed: rseed,
        }
    }

    /// The retailer's spec.
    #[must_use]
    pub fn spec(&self) -> &RetailerSpec {
        &self.spec
    }

    /// The retailer's catalog (ground truth; the crawler uses it only to
    /// enumerate product URLs, as a sitemap would).
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The ground-truth engine (tests and ablations only).
    #[must_use]
    pub fn engine(&self) -> &PricingEngine {
        &self.engine
    }

    /// Handles a request. `client_location` is what the retailer's
    /// city-granularity geo-IP database resolved for the client address
    /// (`None` ⇒ unknown ⇒ US-default localization, as real retailers
    /// fall back).
    #[must_use]
    pub fn handle(
        &self,
        req: &Request,
        client_location: Option<&Location>,
        fx: &FxSeries,
    ) -> Response {
        let fallback = Location::new(Country::UnitedStates, "Unknown");
        let location = client_location.unwrap_or(&fallback).clone();

        if let Some(slug) = req.path.strip_prefix("/product/") {
            self.product_page(req, &location, slug, fx)
        } else if let Some(slug) = req.path.strip_prefix("/checkout/") {
            self.checkout_page(req, &location, slug, fx)
        } else if req.path == "/" {
            self.index_page()
        } else {
            Response::not_found()
        }
    }

    /// Session token: from the `sid` cookie if present, else derived from
    /// the client address and time (and echoed via `Set-Cookie`).
    fn session_token(&self, req: &Request) -> (u64, bool) {
        if let Some(sid) = req.cookie("sid").and_then(|s| s.parse::<u64>().ok()) {
            (sid, false)
        } else {
            let token = self
                .seed
                .derive("session")
                .derive_idx(u64::from(u32::from(req.client_addr)))
                .derive_idx(req.time.as_millis())
                .value();
            (token, true)
        }
    }

    fn quote_context(&self, req: &Request, location: &Location) -> (QuoteContext, bool) {
        let (session_token, fresh) = self.session_token(req);
        let login = match req.cookie("login").and_then(|v| v.parse::<u64>().ok()) {
            Some(user_key) => LoginState::LoggedIn { user_key },
            None => LoginState::Anonymous,
        };
        let ctx = QuoteContext::anonymous(location.clone(), req.time)
            .with_login(login)
            .with_session(session_token);
        (ctx, fresh)
    }

    fn product_page(
        &self,
        req: &Request,
        location: &Location,
        slug: &str,
        fx: &FxSeries,
    ) -> Response {
        let Some(product) = self.catalog.by_slug(slug) else {
            return Response::not_found();
        };
        let (ctx, fresh_session) = self.quote_context(req, location);
        let locale = Locale::of_country(location.country);
        let day = ctx.day.min(fx.days().saturating_sub(1));

        let mut usd = self.engine.quote(product, &ctx);
        if self.spec.inlines_tax {
            usd = usd.scale(1.0 + tax_rate(location.country));
        }
        let price = usd_to_local(fx, usd, locale.currency, day);
        let price_text = locale.format_price(price);

        // Deterministic recommendations: the next three products.
        let recommended: Vec<(String, String)> = (1..=3)
            .map(|k| {
                let idx = (product.id.index() + k) % self.catalog.len();
                let rp = self.catalog.product(pd_util::ProductId::new(idx as u32));
                let rusd = self.engine.quote(rp, &ctx);
                let rprice = usd_to_local(fx, rusd, locale.currency, day);
                (rp.name.clone(), locale.format_price(rprice))
            })
            .collect();

        let input = RenderInput {
            domain: &self.spec.domain,
            product_name: &product.name,
            price_text,
            recommended,
            third_parties: &self.spec.third_parties,
            promo_text: "Save $10 on orders over $100 today!".to_owned(),
        };
        let doc = render(self.spec.template_style, &input);
        let mut resp = Response::ok(doc.to_html(pd_html::NodeId::ROOT));
        if fresh_session {
            resp = resp.with_set_cookie("sid", &ctx.session_token.to_string());
        }
        resp
    }

    fn checkout_page(
        &self,
        req: &Request,
        location: &Location,
        slug: &str,
        fx: &FxSeries,
    ) -> Response {
        let Some(product) = self.catalog.by_slug(slug) else {
            return Response::not_found();
        };
        let (ctx, _) = self.quote_context(req, location);
        let locale = Locale::of_country(location.country);
        let day = ctx.day.min(fx.days().saturating_sub(1));

        let usd = self.engine.quote(product, &ctx);
        let tax = usd.scale(tax_rate(location.country));
        let shipping = shipping_usd(location.country);
        let total = usd + tax + shipping;

        let lines = [
            ("Item", usd),
            ("Tax", tax),
            ("Shipping", shipping),
            ("Total", total),
        ];
        let locale_lines: Vec<(String, String)> = lines
            .iter()
            .map(|(label, amount)| {
                let p = usd_to_local(fx, *amount, locale.currency, day);
                ((*label).to_owned(), locale.format_price(p))
            })
            .collect();

        let mut body = String::from("<html><body><table id=\"checkout\">");
        for (label, text) in &locale_lines {
            body.push_str(&format!(
                "<tr><td class=\"line-label\">{label}</td><td class=\"line-amount\">{}</td></tr>",
                pd_html::escape::escape_text(text)
            ));
        }
        body.push_str("</table></body></html>");
        Response::ok(body)
    }

    fn index_page(&self) -> Response {
        let mut body = format!(
            "<html><head><title>{}</title></head><body><ul id=\"catalog\">",
            self.spec.domain
        );
        for p in self.catalog.iter() {
            body.push_str(&format!(
                "<li><a href=\"/product/{}\">{}</a></li>",
                p.slug, p.name
            ));
        }
        body.push_str("</ul></body></html>");
        Response::ok(body)
    }
}

/// Simplified VAT/sales-tax rate by country (applied only at checkout
/// unless the retailer is a tax-inliner).
#[must_use]
pub fn tax_rate(country: Country) -> f64 {
    match country.region() {
        Region::NorthAmerica => 0.07,
        Region::SouthAmerica => 0.17,
        Region::Eurozone | Region::EuropeNonEuro => 0.21,
        Region::AsiaPacific => 0.10,
    }
}

/// Flat shipping in USD by region (checkout only).
#[must_use]
pub fn shipping_usd(country: Country) -> Money {
    match country.region() {
        Region::NorthAmerica => Money::from_minor(599),
        Region::SouthAmerica => Money::from_minor(1_499),
        Region::Eurozone | Region::EuropeNonEuro => Money::from_minor(899),
        Region::AsiaPacific => Money::from_minor(1_299),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::price_selector;
    use pd_html::parse;
    use pd_net::clock::SimTime;
    use pd_pricing::paper_retailers;
    use std::net::Ipv4Addr;

    fn digitalrev() -> RetailerServer {
        let spec = paper_retailers(Seed::new(1307))
            .into_iter()
            .find(|r| r.domain == "www.digitalrev.com")
            .unwrap();
        RetailerServer::new(Seed::new(1307), spec)
    }

    fn fx() -> FxSeries {
        FxSeries::generate(Seed::new(1307), 160)
    }

    fn addr() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 9)
    }

    fn get(server: &RetailerServer, path: &str, loc: &Location) -> Response {
        let req = Request::get(&server.spec().domain, path, addr(), SimTime::EPOCH);
        server.handle(&req, Some(loc), &fx())
    }

    #[test]
    fn product_page_renders_and_extracts() {
        let server = digitalrev();
        let slug = server.catalog().iter().next().unwrap().slug.clone();
        let us = Location::new(Country::UnitedStates, "New York");
        let resp = get(&server, &format!("/product/{slug}"), &us);
        assert_eq!(resp.status.code(), 200);
        let doc = parse(&resp.body);
        let sel = price_selector(server.spec().template_style);
        let hit = sel.query_first(&doc).expect("price node");
        let text = doc.text_content(hit);
        assert!(text.starts_with('$'), "US visitor sees USD: {text}");
    }

    #[test]
    fn finland_sees_euros_and_higher_price() {
        let server = digitalrev();
        let product = server.catalog().iter().next().unwrap().clone();
        let us = Location::new(Country::UnitedStates, "New York");
        let fi = Location::new(Country::Finland, "Tampere");
        let us_resp = get(&server, &format!("/product/{}", product.slug), &us);
        let fi_resp = get(&server, &format!("/product/{}", product.slug), &fi);
        let sel = price_selector(server.spec().template_style);
        let us_doc = parse(&us_resp.body);
        let fi_doc = parse(&fi_resp.body);
        let us_text = us_doc.text_content(sel.query_first(&us_doc).unwrap());
        let fi_text = fi_doc.text_content(sel.query_first(&fi_doc).unwrap());
        assert!(fi_text.contains('€'), "{fi_text}");
        // Parse both and compare USD values: Finland pays ~1.26×.
        let us_price = Locale::of_country(Country::UnitedStates)
            .parse(&us_text)
            .unwrap();
        let fi_price = Locale::of_country(Country::Finland)
            .parse(&fi_text)
            .unwrap();
        let f = fx();
        let ratio = f.to_usd_mid(fi_price, 0) / f.to_usd_mid(us_price, 0);
        assert!((1.2..1.32).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn unknown_location_falls_back_to_usd() {
        let server = digitalrev();
        let slug = server.catalog().iter().next().unwrap().slug.clone();
        let req = Request::get(
            &server.spec().domain,
            &format!("/product/{slug}"),
            addr(),
            SimTime::EPOCH,
        );
        let resp = server.handle(&req, None, &fx());
        assert_eq!(resp.status.code(), 200);
        assert!(resp.body.contains('$'));
    }

    #[test]
    fn missing_product_404s() {
        let server = digitalrev();
        let us = Location::new(Country::UnitedStates, "Boston");
        assert_eq!(get(&server, "/product/nope", &us).status.code(), 404);
        assert_eq!(get(&server, "/bogus", &us).status.code(), 404);
    }

    #[test]
    fn index_lists_all_products() {
        let server = digitalrev();
        let us = Location::new(Country::UnitedStates, "Boston");
        let resp = get(&server, "/", &us);
        for p in server.catalog().iter() {
            assert!(resp.body.contains(&p.slug));
        }
    }

    #[test]
    fn fresh_session_sets_cookie_and_reuse_is_stable() {
        let server = digitalrev();
        let slug = server.catalog().iter().next().unwrap().slug.clone();
        let us = Location::new(Country::UnitedStates, "Boston");
        let req = Request::get(
            &server.spec().domain,
            &format!("/product/{slug}"),
            addr(),
            SimTime::EPOCH,
        );
        let resp = server.handle(&req, Some(&us), &fx());
        let (name, sid) = resp.set_cookie().expect("session cookie");
        assert_eq!(name, "sid");
        // Replaying with the cookie: no new cookie, same body.
        let req2 = req.clone().with_cookie("sid", sid);
        let resp2 = server.handle(&req2, Some(&us), &fx());
        assert!(resp2.set_cookie().is_none());
    }

    #[test]
    fn checkout_adds_tax_and_shipping() {
        let server = digitalrev();
        let product = server.catalog().iter().next().unwrap().clone();
        let us = Location::new(Country::UnitedStates, "Boston");
        let page = get(&server, &format!("/checkout/{}", product.slug), &us);
        assert_eq!(page.status.code(), 200);
        let doc = parse(&page.body);
        let amounts = pd_html::Selector::parse("td.line-amount")
            .unwrap()
            .query_all(&doc);
        assert_eq!(amounts.len(), 4, "item, tax, shipping, total");
        let loc = Locale::of_country(Country::UnitedStates);
        let parsed: Vec<_> = amounts
            .iter()
            .map(|&n| loc.parse(&doc.text_content(n)).unwrap().amount)
            .collect();
        // total = item + tax + shipping
        assert_eq!(parsed[3], parsed[0] + parsed[1] + parsed[2]);
        assert!(parsed[1].is_positive(), "tax charged at checkout");
        // and the product page price equals the pre-tax item price.
        let ppage = get(&server, &format!("/product/{}", product.slug), &us);
        let pdoc = parse(&ppage.body);
        let sel = price_selector(server.spec().template_style);
        let ptext = pdoc.text_content(sel.query_first(&pdoc).unwrap());
        assert_eq!(loc.parse(&ptext).unwrap().amount, parsed[0]);
    }

    #[test]
    fn tax_inliner_shows_higher_product_price() {
        let mut spec = paper_retailers(Seed::new(1307))
            .into_iter()
            .find(|r| r.domain == "www.digitalrev.com")
            .unwrap();
        spec.inlines_tax = true;
        let inliner = RetailerServer::new(Seed::new(1307), spec);
        let normal = digitalrev();
        let us = Location::new(Country::UnitedStates, "Boston");
        let slug = normal.catalog().iter().next().unwrap().slug.clone();
        let sel = price_selector(normal.spec().template_style);
        let loc = Locale::of_country(Country::UnitedStates);
        let price_of = |srv: &RetailerServer| {
            let resp = get(srv, &format!("/product/{slug}"), &us);
            let doc = parse(&resp.body);
            loc.parse(&doc.text_content(sel.query_first(&doc).unwrap()))
                .unwrap()
                .amount
        };
        let (pn, pi) = (price_of(&normal), price_of(&inliner));
        let ratio = pi.ratio_to(pn).unwrap();
        assert!((ratio - 1.07).abs() < 0.01, "inlined tax ratio {ratio}");
    }

    #[test]
    fn same_request_is_deterministic() {
        let server = digitalrev();
        let slug = server.catalog().iter().next().unwrap().slug.clone();
        let fi = Location::new(Country::Finland, "Tampere");
        let a = get(&server, &format!("/product/{slug}"), &fi);
        let b = get(&server, &format!("/product/{slug}"), &fi);
        assert_eq!(a.body, b.body);
    }
}
