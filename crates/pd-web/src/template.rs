//! The five product-page template families.
//!
//! "Different retailers have different web templates for presenting their
//! products. Extracting the price of a product from an unknown template is
//! non-trivial: a simple search for dollar or euro sign would fail since
//! typically product pages include additional recommended or advertised
//! products along with their prices." (Sec. 2.2)
//!
//! Each family therefore renders, besides the product price:
//!
//! * three **recommended products** with their own prices, often sharing
//!   the main price's class name,
//! * a **promo banner** containing a literal dollar amount ("Save $10
//!   today!"),
//! * **third-party tags** (analytics scripts, social widgets) for the
//!   Sec. 4.4 presence scan,
//! * structural differences per family: id-anchored boxes, tables,
//!   class-only markup, and deeply nested widgets.
//!
//! [`price_selector`] returns the family's ground-truth selector for the
//! main price node — used only to *simulate the user's highlight*, never
//! by the extraction pipeline itself.

use pd_html::{DocBuilder, Document, Selector};
use pd_pricing::retailer::ThirdParty;

/// Everything a template needs to render one product page.
#[derive(Debug, Clone)]
pub struct RenderInput<'a> {
    /// Retailer domain (rendered into the header/title).
    pub domain: &'a str,
    /// Product display name.
    pub product_name: &'a str,
    /// Fully formatted localized price text, e.g. `"1.299,00 €"`.
    pub price_text: String,
    /// Recommended products: (name, formatted price) pairs.
    pub recommended: Vec<(String, String)>,
    /// Third-party tags to embed.
    pub third_parties: &'a [ThirdParty],
    /// Promo banner text (contains a literal dollar amount).
    pub promo_text: String,
}

/// Number of template families.
pub const FAMILY_COUNT: u8 = 5;

/// Renders a product page in the given template family (`style % 5`).
#[must_use]
pub fn render(style: u8, input: &RenderInput<'_>) -> Document {
    match style % FAMILY_COUNT {
        0 => render_classic(input),
        1 => render_table(input),
        2 => render_buybox(input),
        3 => render_minimal(input),
        _ => render_cluttered(input),
    }
}

/// Ground-truth selector for the *main* price node of a family.
///
/// # Panics
///
/// Never — all five selectors are statically valid (tested).
#[must_use]
pub fn price_selector(style: u8) -> Selector {
    let src = match style % FAMILY_COUNT {
        0 => "#product-detail > span.price",
        1 => "#offer-table td.product-price",
        2 => "#buybox > b.amount",
        3 => "div.pdp-wrap > p.cost",
        _ => "#main .price-widget > strong",
    };
    Selector::parse(src).expect("static selector is valid")
}

fn head(b: &mut DocBuilder, input: &RenderInput<'_>) {
    b.text_element(
        "title",
        &[],
        &format!("{} — {}", input.product_name, input.domain),
    );
    b.leaf("meta", &[("charset", "utf-8")]);
    for tp in input.third_parties {
        match tp {
            ThirdParty::GoogleAnalytics | ThirdParty::DoubleClick | ThirdParty::Twitter => {
                b.open(
                    "script",
                    &[
                        ("src", &format!("http://{}/t.js", tp.host())),
                        ("async", ""),
                    ],
                );
                b.close();
            }
            ThirdParty::Facebook | ThirdParty::Pinterest => {
                b.leaf(
                    "img",
                    &[
                        ("src", &format!("http://{}/w.png", tp.host())),
                        ("width", "1"),
                        ("height", "1"),
                    ],
                );
            }
        }
    }
}

fn promo(b: &mut DocBuilder, input: &RenderInput<'_>) {
    b.open("div", &[("class", "promo-banner")]);
    b.text_element("em", &[], &input.promo_text);
    b.close();
}

fn recommendations(b: &mut DocBuilder, input: &RenderInput<'_>, price_class: &str) {
    b.open("div", &[("class", "recommendations")]);
    b.text_element("h3", &[], "Customers also viewed");
    for (name, price) in &input.recommended {
        b.open("div", &[("class", "reco-card")]);
        b.text_element("a", &[("href", "#")], name);
        // Same class as the main price — the naive extractor's trap.
        b.text_element("span", &[("class", price_class)], price);
        b.close();
    }
    b.close();
}

/// Family 0 — "classic": id-anchored product box, `span.price`.
fn render_classic(input: &RenderInput<'_>) -> Document {
    DocBuilder::page_with_head(
        |h| head(h, input),
        |b| {
            b.open("div", &[("class", "header")]);
            b.text_element("a", &[("href", "/")], input.domain);
            b.close();
            promo(b, input);
            b.open("div", &[("id", "product-detail"), ("class", "product")]);
            b.text_element("h1", &[], input.product_name);
            b.text_element("span", &[("class", "price")], &input.price_text);
            b.text_element("button", &[("class", "add-to-cart")], "Add to cart");
            b.close();
            recommendations(b, input, "price");
            b.comment(" rendered by shopkit 2.3 ");
        },
    )
}

/// Family 1 — "table": offer table with a `td.product-price`.
fn render_table(input: &RenderInput<'_>) -> Document {
    DocBuilder::page_with_head(
        |h| head(h, input),
        |b| {
            promo(b, input);
            b.open("table", &[("id", "offer-table")]);
            b.open("tr", &[]);
            b.text_element("th", &[], "Item");
            b.text_element("th", &[], "Price");
            b.close();
            b.open("tr", &[]);
            b.text_element("td", &[("class", "product-name")], input.product_name);
            b.text_element("td", &[("class", "product-price")], &input.price_text);
            b.close();
            b.close();
            recommendations(b, input, "product-price");
        },
    )
}

/// Family 2 — "buybox": modern PDP with an id-anchored buy box.
fn render_buybox(input: &RenderInput<'_>) -> Document {
    DocBuilder::page_with_head(
        |h| head(h, input),
        |b| {
            b.open("div", &[("class", "pdp")]);
            b.open("div", &[("class", "gallery")]);
            b.leaf(
                "img",
                &[("src", "/img/product.jpg"), ("alt", input.product_name)],
            );
            b.close();
            b.open("div", &[("id", "buybox"), ("class", "buy-box")]);
            b.text_element("h2", &[], input.product_name);
            b.text_element("b", &[("class", "amount")], &input.price_text);
            b.text_element("small", &[("class", "vat-note")], "excl. shipping");
            b.close();
            b.close();
            promo(b, input);
            recommendations(b, input, "amount");
        },
    )
}

/// Family 3 — "minimal": no ids anywhere; class-signature extraction.
fn render_minimal(input: &RenderInput<'_>) -> Document {
    DocBuilder::page_with_head(
        |h| head(h, input),
        |b| {
            b.open("div", &[("class", "pdp-wrap")]);
            b.text_element("h1", &[], input.product_name);
            b.text_element("p", &[("class", "cost")], &input.price_text);
            b.close();
            promo(b, input);
            recommendations(b, input, "reco-cost");
        },
    )
}

/// Family 4 — "cluttered": deeply nested widget with label noise.
fn render_cluttered(input: &RenderInput<'_>) -> Document {
    DocBuilder::page_with_head(
        |h| head(h, input),
        |b| {
            promo(b, input);
            b.open("div", &[("id", "main")]);
            b.open("div", &[("class", "col col-left")]);
            b.text_element("strong", &[], "Today's deals");
            b.close();
            b.open("div", &[("class", "col col-main")]);
            b.text_element("h1", &[], input.product_name);
            b.open("div", &[("class", "widget price-widget")]);
            b.text_element("span", &[("class", "label")], "Our price:");
            b.text_element("strong", &[], &input.price_text);
            b.close();
            b.close();
            b.close();
            recommendations(b, input, "deal-price");
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_html::{parse, NodeId};

    fn input() -> RenderInput<'static> {
        RenderInput {
            domain: "www.shop.example",
            product_name: "Camera Nova 0042",
            price_text: "$1,299.00".to_owned(),
            recommended: vec![
                ("Lens A".to_owned(), "$24.99".to_owned()),
                ("Bag B".to_owned(), "$89.00".to_owned()),
                ("Card C".to_owned(), "$12.50".to_owned()),
            ],
            third_parties: &[
                ThirdParty::GoogleAnalytics,
                ThirdParty::Facebook,
                ThirdParty::Pinterest,
            ],
            promo_text: "Save $10 today!".to_owned(),
        }
    }

    #[test]
    fn every_family_contains_exactly_one_main_price() {
        for style in 0..FAMILY_COUNT {
            let doc = render(style, &input());
            let sel = price_selector(style);
            let hits = sel.query_all(&doc);
            assert_eq!(hits.len(), 1, "family {style}");
            assert_eq!(doc.text_content(hits[0]), "$1,299.00", "family {style}");
        }
    }

    #[test]
    fn every_family_survives_reparse() {
        // Render → serialize → parse → select: the full pipeline the
        // vantage points exercise.
        for style in 0..FAMILY_COUNT {
            let html = render(style, &input()).to_html(NodeId::ROOT);
            let doc = parse(&html);
            let hits = price_selector(style).query_all(&doc);
            assert_eq!(hits.len(), 1, "family {style}");
            assert_eq!(doc.text_content(hits[0]), "$1,299.00");
        }
    }

    #[test]
    fn recommended_prices_are_decoys() {
        // Each page carries ≥4 price-looking strings; only one is the
        // product's. This is the paper's challenge (i) in miniature.
        for style in 0..FAMILY_COUNT {
            let html = render(style, &input()).to_html(NodeId::ROOT);
            let dollar_count = html.matches('$').count();
            assert!(dollar_count >= 4, "family {style}: {dollar_count} prices");
        }
    }

    #[test]
    fn third_party_tags_present() {
        for style in 0..FAMILY_COUNT {
            let html = render(style, &input()).to_html(NodeId::ROOT);
            assert!(html.contains("www.google-analytics.com"), "family {style}");
            assert!(html.contains("connect.facebook.net"), "family {style}");
            assert!(html.contains("assets.pinterest.com"), "family {style}");
            assert!(!html.contains("ad.doubleclick.net"), "family {style}");
        }
    }

    #[test]
    fn families_are_structurally_distinct() {
        let htmls: Vec<String> = (0..FAMILY_COUNT)
            .map(|s| render(s, &input()).to_html(NodeId::ROOT))
            .collect();
        for i in 0..htmls.len() {
            for j in i + 1..htmls.len() {
                assert_ne!(htmls[i], htmls[j], "families {i} and {j} identical");
            }
        }
    }

    #[test]
    fn style_wraps_modulo_family_count() {
        let a = render(0, &input()).to_html(NodeId::ROOT);
        let b = render(5, &input()).to_html(NodeId::ROOT);
        assert_eq!(a, b);
        assert_eq!(price_selector(0).source(), price_selector(5).source());
    }

    #[test]
    fn localized_price_text_renders_verbatim() {
        let mut inp = input();
        inp.price_text = "1.199,00\u{a0}€".to_owned();
        for style in 0..FAMILY_COUNT {
            let doc = render(style, &inp);
            let hit = price_selector(style).query_first(&doc).unwrap();
            assert_eq!(doc.text_content(hit), "1.199,00\u{a0}€");
        }
    }
}
