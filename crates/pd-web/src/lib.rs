//! Simulated retailer web servers.
//!
//! The measurement system only ever sees HTTP responses carrying HTML.
//! This crate produces them: each retailer from `pd-pricing` becomes a
//! server that geo-locates the client address, selects the local currency
//! and number format, quotes the price through the retailer's ground-truth
//! pricing engine, and renders one of five HTML template families —
//! complete with recommended-product prices, promo banners with dollar
//! amounts, and third-party tracker tags, i.e. all the noise that defeats
//! naive price extraction (Sec. 2.2, challenge (i)).
//!
//! * [`http`] — request/response/URI types,
//! * [`convert`] — USD→local conversion at the day's mid rate,
//! * [`template`] — the five product-page template families,
//! * [`server`] — one retailer's request handling (product pages,
//!   checkout with tax/shipping, sessions),
//! * [`world`] — the full simulated web: every server behind a host
//!   registry plus a fetch entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod http;
pub mod server;
pub mod template;
pub mod world;

pub use http::{Request, Response, Status};
pub use server::RetailerServer;
pub use world::WebWorld;
