//! Minimal HTTP request/response model, with a real wire format.
//!
//! The simulated retailers never leave the process, but the model covers
//! exactly the header surface the paper's methodology interacts with:
//! `Host`, `User-Agent` (the three Spain probes differ only here),
//! `Cookie`/`Set-Cookie` (sessions, login), and the client address
//! (geo-location input).
//!
//! Since the `pd serve` daemon speaks HTTP/1.1 over TCP, both [`Request`]
//! and [`Response`] also carry a byte-level wire codec:
//! [`Request::write_to`] / [`Request::read_from`] (and the `parse` /
//! `to_bytes` convenience pair) emit and accept standard `CRLF`-delimited
//! messages with `content-length` framing. Parsing lowercases header
//! names and folds duplicate headers into one comma-separated value
//! (RFC 7230 §3.2.2), so the in-memory map round-trips bytes exactly.
//!
//! Connection persistence follows HTTP/1.1 semantics: a message is
//! keep-alive unless its `connection` header carries a `close` token
//! ([`Request::keep_alive`] / [`Response::keep_alive`]). A parsed
//! HTTP/1.0 request without an explicit `connection` header gets
//! `connection: close` synthesized — the struct does not carry the
//! version, so the header records the 1.0 default and the decision
//! survives re-serialization (writing always emits HTTP/1.1).

use pd_net::clock::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufRead, Read, Write};
use std::net::Ipv4Addr;

/// Longest accepted request/status/header line, in bytes.
const MAX_LINE_BYTES: usize = 64 * 1024;
/// Largest accepted message body, in bytes.
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Errors from the byte-level HTTP codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection before sending a full message.
    Eof,
    /// Underlying I/O failure (message carries the `io::Error` text).
    Io(String),
    /// Malformed `METHOD TARGET HTTP/1.x` request line.
    BadRequestLine(String),
    /// Malformed `HTTP/1.x CODE REASON` status line.
    BadStatusLine(String),
    /// Malformed `name: value` header line.
    BadHeader(String),
    /// Status code outside the model (only 200/400/404/503 exist).
    UnknownStatus(u16),
    /// A line or body exceeded the hard size cap.
    TooLarge(&'static str),
    /// Body was not valid UTF-8 or shorter than `content-length`.
    BadBody(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Eof => write!(f, "connection closed before a full message"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::BadRequestLine(l) => write!(f, "malformed request line: {l:?}"),
            HttpError::BadStatusLine(l) => write!(f, "malformed status line: {l:?}"),
            HttpError::BadHeader(l) => write!(f, "malformed header: {l:?}"),
            HttpError::UnknownStatus(c) => write!(f, "unsupported status code {c}"),
            HttpError::TooLarge(what) => write!(f, "{what} exceeds size limit"),
            HttpError::BadBody(e) => write!(f, "bad message body: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e.to_string())
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the terminator.
/// Returns `None` on clean EOF before any byte.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let n = reader
        .by_ref()
        .take(MAX_LINE_BYTES as u64 + 1)
        .read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Ok(None);
    }
    if raw.len() > MAX_LINE_BYTES {
        return Err(HttpError::TooLarge("header line"));
    }
    if raw.last() == Some(&b'\n') {
        raw.pop();
        if raw.last() == Some(&b'\r') {
            raw.pop();
        }
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|e| HttpError::BadHeader(e.to_string()))
}

/// Reads `name: value` header lines until the blank separator line.
/// Names are lowercased; duplicates fold into one `", "`-joined value.
fn read_headers<R: BufRead>(reader: &mut R) -> Result<BTreeMap<String, String>, HttpError> {
    let mut headers = BTreeMap::new();
    loop {
        let line = read_line(reader)?.ok_or(HttpError::Eof)?;
        if line.is_empty() {
            return Ok(headers);
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            // Obsolete line folding — deprecated by RFC 7230, reject.
            return Err(HttpError::BadHeader(line));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(line.clone()))?;
        let name = name.trim().to_ascii_lowercase();
        if name.is_empty() {
            return Err(HttpError::BadHeader(line.clone()));
        }
        let value = value.trim().to_owned();
        headers
            .entry(name)
            .and_modify(|prev: &mut String| {
                prev.push_str(", ");
                prev.push_str(&value);
            })
            .or_insert(value);
    }
}

/// Reads a `content-length`-framed UTF-8 body.
fn read_body<R: BufRead>(
    reader: &mut R,
    headers: &BTreeMap<String, String>,
) -> Result<String, HttpError> {
    let len = match headers.get("content-length") {
        None => return Ok(String::new()),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadHeader(format!("content-length: {v}")))?,
    };
    if len > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("message body"));
    }
    let mut raw = vec![0_u8; len];
    reader.read_exact(&mut raw).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => {
            HttpError::BadBody("body shorter than content-length".to_owned())
        }
        _ => HttpError::Io(e.to_string()),
    })?;
    String::from_utf8(raw).map_err(|e| HttpError::BadBody(e.to_string()))
}

/// Whether a `connection` header value asks to close: any comma-
/// separated token equal to `close`, ASCII case-insensitively
/// (RFC 7230 §6.1 — `Connection` is a list-typed header).
fn wants_close(connection: Option<&str>) -> bool {
    connection.is_some_and(|value| {
        value
            .split(',')
            .any(|token| token.trim().eq_ignore_ascii_case("close"))
    })
}

/// Writes the header block (sorted by name) plus `content-length` framing.
fn write_headers<W: Write>(
    w: &mut W,
    headers: &BTreeMap<String, String>,
    body_len: usize,
) -> io::Result<()> {
    for (name, value) in headers {
        if name == "content-length" {
            continue; // always recomputed from the body
        }
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "content-length: {body_len}\r\n\r\n")
}

/// HTTP-ish response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// 200.
    Ok,
    /// 404.
    NotFound,
    /// 400.
    BadRequest,
    /// 503 — transient upstream failure (failure injection).
    ServiceUnavailable,
}

impl Status {
    /// Numeric code.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::NotFound => 404,
            Status::BadRequest => 400,
            Status::ServiceUnavailable => 503,
        }
    }

    /// Inverse of [`Status::code`]; `None` for codes outside the model.
    #[must_use]
    pub fn from_code(code: u16) -> Option<Self> {
        match code {
            200 => Some(Status::Ok),
            400 => Some(Status::BadRequest),
            404 => Some(Status::NotFound),
            503 => Some(Status::ServiceUnavailable),
            _ => None,
        }
    }

    /// Canonical reason phrase for the status line.
    #[must_use]
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::NotFound => "Not Found",
            Status::BadRequest => "Bad Request",
            Status::ServiceUnavailable => "Service Unavailable",
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// An HTTP request — to a simulated retailer, or over a real socket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...).
    pub method: String,
    /// Target host, e.g. `www.digitalrev.com`.
    pub host: String,
    /// Path + query, e.g. `/product/camera-nova-0042?ref=a`.
    pub path: String,
    /// Client IPv4 address (the geo-location input). Wire parsing leaves
    /// this unspecified (`0.0.0.0`); servers fill in the peer address.
    pub client_addr: Ipv4Addr,
    /// Simulated send time (wire parsing leaves [`SimTime::EPOCH`]).
    pub time: SimTime,
    /// Request headers (lowercased names, duplicates folded with `", "`).
    /// `host` and `content-length` live in dedicated fields, not here.
    pub headers: BTreeMap<String, String>,
    /// Request body (empty for GET).
    pub body: String,
}

impl Request {
    /// Builds a GET request with no extra headers.
    #[must_use]
    pub fn get(host: &str, path: &str, client_addr: Ipv4Addr, time: SimTime) -> Self {
        Request {
            method: "GET".to_owned(),
            host: host.to_owned(),
            path: path.to_owned(),
            client_addr,
            time,
            headers: BTreeMap::new(),
            body: String::new(),
        }
    }

    /// Builds a POST request carrying `body`.
    #[must_use]
    pub fn post(host: &str, path: &str, body: &str, client_addr: Ipv4Addr, time: SimTime) -> Self {
        Request {
            method: "POST".to_owned(),
            body: body.to_owned(),
            ..Request::get(host, path, client_addr, time)
        }
    }

    /// Adds/replaces a header (name lowercased).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers
            .insert(name.to_ascii_lowercase(), value.to_owned());
        self
    }

    /// Reads a header.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Parses one cookie value out of the `Cookie` header.
    #[must_use]
    pub fn cookie(&self, name: &str) -> Option<&str> {
        let header = self.header("cookie")?;
        header.split(';').find_map(|pair| {
            let (k, v) = pair.trim().split_once('=')?;
            (k == name).then_some(v)
        })
    }

    /// Sets a cookie (merging with any existing `Cookie` header).
    #[must_use]
    pub fn with_cookie(self, name: &str, value: &str) -> Self {
        let merged = match self.header("cookie") {
            Some(existing) => format!("{existing}; {name}={value}"),
            None => format!("{name}={value}"),
        };
        self.with_header("cookie", &merged)
    }

    /// Full URI for logging and $heriff fan-out. An empty path renders as
    /// `/`, so the URI always round-trips through [`Request::parse`].
    #[must_use]
    pub fn uri(&self) -> String {
        let path = if self.path.is_empty() {
            "/"
        } else {
            &self.path
        };
        format!("http://{}{}", self.host, path)
    }

    /// Path without the query string.
    #[must_use]
    pub fn path_only(&self) -> &str {
        match self.path.split_once('?') {
            Some((path, _)) => path,
            None => self.path.as_str(),
        }
    }

    /// Query string after `?`, if any (without the `?`).
    #[must_use]
    pub fn query(&self) -> Option<&str> {
        self.path.split_once('?').map(|(_, q)| q)
    }

    /// Looks up one `key=value` pair in the query string.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }

    /// Whether the connection should persist after this request
    /// (HTTP/1.1 semantics: keep-alive unless the `connection` header
    /// carries a `close` token; [`Request::read_from`] synthesizes that
    /// header for HTTP/1.0 requests, where close is the default).
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        !wants_close(self.header("connection"))
    }

    /// Serializes the request in HTTP/1.1 wire format.
    ///
    /// The `host` field becomes the `host` header and `content-length` is
    /// computed from the body; both are excluded from [`Request::headers`]
    /// on the way back in, so `parse(to_bytes())` reproduces the request.
    ///
    /// # Errors
    /// Propagates writer failures.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let path = if self.path.is_empty() {
            "/"
        } else {
            &self.path
        };
        write!(w, "{} {} HTTP/1.1\r\n", self.method, path)?;
        write!(w, "host: {}\r\n", self.host)?;
        let extras: BTreeMap<String, String> = self
            .headers
            .iter()
            .filter(|(name, _)| name.as_str() != "host")
            .map(|(name, value)| (name.clone(), value.clone()))
            .collect();
        write_headers(w, &extras, self.body.len())?;
        w.write_all(self.body.as_bytes())
    }

    /// [`Request::write_to`] into a fresh buffer.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_to(&mut buf).expect("Vec write is infallible");
        buf
    }

    /// Reads one wire-format request off a buffered stream.
    ///
    /// `client_addr` is left as `0.0.0.0` and `time` as the epoch —
    /// servers overwrite them with connection metadata.
    ///
    /// # Errors
    /// [`HttpError::Eof`] on a cleanly closed idle connection; other
    /// variants for malformed or oversized messages.
    pub fn read_from<R: BufRead>(reader: &mut R) -> Result<Self, HttpError> {
        let line = read_line(reader)?.ok_or(HttpError::Eof)?;
        let mut parts = line.split(' ');
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
                _ => return Err(HttpError::BadRequestLine(line.clone())),
            };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::BadRequestLine(line.clone()));
        }
        // Absolute-form targets carry the host inline; origin-form relies
        // on the `host` header.
        let (mut host, path) = match target.strip_prefix("http://") {
            Some(rest) => match rest.split_once('/') {
                Some((h, p)) => (h.to_owned(), format!("/{p}")),
                None => (rest.to_owned(), "/".to_owned()),
            },
            None => (String::new(), target.to_owned()),
        };
        let mut headers = read_headers(reader)?;
        if let Some(header_host) = headers.remove("host") {
            if host.is_empty() {
                host = header_host;
            }
        }
        // HTTP/1.0 defaults to close. The struct does not carry the
        // version, so record the default as an explicit header — an
        // old client without `connection: keep-alive` is never left
        // waiting on a connection the server holds open.
        if version == "HTTP/1.0" && !headers.contains_key("connection") {
            headers.insert("connection".to_owned(), "close".to_owned());
        }
        let body = read_body(reader, &headers)?;
        headers.remove("content-length");
        Ok(Request {
            method: method.to_owned(),
            host,
            path,
            client_addr: Ipv4Addr::UNSPECIFIED,
            time: SimTime::EPOCH,
            headers,
            body,
        })
    }

    /// Parses a complete wire-format request from a byte slice.
    ///
    /// # Errors
    /// Same as [`Request::read_from`].
    pub fn parse(bytes: &[u8]) -> Result<Self, HttpError> {
        let mut reader = bytes;
        Self::read_from(&mut reader)
    }
}

/// A response from a simulated retailer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Response headers (lowercased names).
    pub headers: BTreeMap<String, String>,
    /// HTML body.
    pub body: String,
}

impl Response {
    /// 200 with an HTML body.
    #[must_use]
    pub fn ok(body: String) -> Self {
        let mut headers = BTreeMap::new();
        headers.insert(
            "content-type".to_owned(),
            "text/html; charset=utf-8".to_owned(),
        );
        Response {
            status: Status::Ok,
            headers,
            body,
        }
    }

    /// 404 with a terse body.
    #[must_use]
    pub fn not_found() -> Self {
        Response {
            status: Status::NotFound,
            headers: BTreeMap::new(),
            body: "<html><body><h1>404 Not Found</h1></body></html>".to_owned(),
        }
    }

    /// 400 with a reason.
    #[must_use]
    pub fn bad_request(reason: &str) -> Self {
        Response {
            status: Status::BadRequest,
            headers: BTreeMap::new(),
            body: format!("<html><body><h1>400</h1><p>{reason}</p></body></html>"),
        }
    }

    /// 503 with a reason (transient; retrying later succeeds).
    #[must_use]
    pub fn service_unavailable(reason: &str) -> Self {
        Response {
            status: Status::ServiceUnavailable,
            headers: BTreeMap::new(),
            body: format!("<html><body><h1>503</h1><p>{reason}</p></body></html>"),
        }
    }

    /// 200 with a JSON body.
    #[must_use]
    pub fn json(body: String) -> Self {
        let mut headers = BTreeMap::new();
        headers.insert("content-type".to_owned(), "application/json".to_owned());
        Response {
            status: Status::Ok,
            headers,
            body,
        }
    }

    /// Reads a header.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Adds/replaces a header (name lowercased).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers
            .insert(name.to_ascii_lowercase(), value.to_owned());
        self
    }

    /// Replaces the status, keeping headers and body.
    #[must_use]
    pub fn with_status(mut self, status: Status) -> Self {
        self.status = status;
        self
    }

    /// Whether the connection persists after this response (keep-alive
    /// unless the `connection` header carries a `close` token). Clients
    /// use this to decide if the socket is reusable.
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        !wants_close(self.header("connection"))
    }

    /// Serializes the response in HTTP/1.1 wire format
    /// (`content-length` framing recomputed from the body).
    ///
    /// # Errors
    /// Propagates writer failures.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status.code(),
            self.status.reason()
        )?;
        write_headers(w, &self.headers, self.body.len())?;
        w.write_all(self.body.as_bytes())
    }

    /// [`Response::write_to`] into a fresh buffer.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_to(&mut buf).expect("Vec write is infallible");
        buf
    }

    /// Reads one wire-format response off a buffered stream.
    ///
    /// # Errors
    /// [`HttpError::Eof`] on a closed connection;
    /// [`HttpError::UnknownStatus`] for codes outside the model; other
    /// variants for malformed or oversized messages.
    pub fn read_from<R: BufRead>(reader: &mut R) -> Result<Self, HttpError> {
        let line = read_line(reader)?.ok_or(HttpError::Eof)?;
        let mut parts = line.splitn(3, ' ');
        let (version, code) = match (parts.next(), parts.next()) {
            (Some(v), Some(c)) => (v, c),
            _ => return Err(HttpError::BadStatusLine(line.clone())),
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::BadStatusLine(line.clone()));
        }
        let code: u16 = code
            .parse()
            .map_err(|_| HttpError::BadStatusLine(line.clone()))?;
        let status = Status::from_code(code).ok_or(HttpError::UnknownStatus(code))?;
        let mut headers = read_headers(reader)?;
        let body = read_body(reader, &headers)?;
        headers.remove("content-length");
        Ok(Response {
            status,
            headers,
            body,
        })
    }

    /// Parses a complete wire-format response from a byte slice.
    ///
    /// # Errors
    /// Same as [`Response::read_from`].
    pub fn parse(bytes: &[u8]) -> Result<Self, HttpError> {
        let mut reader = bytes;
        Self::read_from(&mut reader)
    }

    /// Adds a `Set-Cookie` header (single-cookie model: one per response).
    #[must_use]
    pub fn with_set_cookie(mut self, name: &str, value: &str) -> Self {
        self.headers
            .insert("set-cookie".to_owned(), format!("{name}={value}"));
        self
    }

    /// Parses the `Set-Cookie` header, if present.
    #[must_use]
    pub fn set_cookie(&self) -> Option<(&str, &str)> {
        self.header("set-cookie")?.split_once('=')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }

    #[test]
    fn request_headers_case_insensitive() {
        let r = Request::get("shop.example", "/", addr(), SimTime::EPOCH)
            .with_header("User-Agent", "test");
        assert_eq!(r.header("user-agent"), Some("test"));
        assert_eq!(r.header("USER-AGENT"), Some("test"));
        assert_eq!(r.header("missing"), None);
    }

    #[test]
    fn cookies_parse_and_merge() {
        let r = Request::get("shop.example", "/", addr(), SimTime::EPOCH)
            .with_cookie("sid", "123")
            .with_cookie("login", "alice");
        assert_eq!(r.cookie("sid"), Some("123"));
        assert_eq!(r.cookie("login"), Some("alice"));
        assert_eq!(r.cookie("other"), None);
    }

    #[test]
    fn uri_format() {
        let r = Request::get("www.shop.example", "/product/x", addr(), SimTime::EPOCH);
        assert_eq!(r.uri(), "http://www.shop.example/product/x");
    }

    #[test]
    fn response_constructors() {
        let ok = Response::ok("<p>hi</p>".into());
        assert_eq!(ok.status, Status::Ok);
        assert_eq!(ok.status.code(), 200);
        assert!(ok.header("content-type").unwrap().contains("text/html"));
        assert_eq!(Response::not_found().status.code(), 404);
        assert_eq!(Response::bad_request("x").status.code(), 400);
    }

    #[test]
    fn set_cookie_round_trip() {
        let r = Response::ok(String::new()).with_set_cookie("sid", "99");
        assert_eq!(r.set_cookie(), Some(("sid", "99")));
        assert_eq!(Response::ok(String::new()).set_cookie(), None);
    }

    #[test]
    fn request_wire_round_trip_with_query_and_body() {
        let r = Request::post(
            "svc.example",
            "/runs?limit=10&order=desc",
            "{\"scenario\":\"smoke\"}",
            Ipv4Addr::UNSPECIFIED,
            SimTime::EPOCH,
        )
        .with_header("User-Agent", "pd-serve-client")
        .with_cookie("sid", "42");
        let parsed = Request::parse(&r.to_bytes()).expect("round-trip");
        assert_eq!(parsed, r);
        assert_eq!(parsed.query(), Some("limit=10&order=desc"));
        assert_eq!(parsed.query_param("limit"), Some("10"));
        assert_eq!(parsed.query_param("order"), Some("desc"));
        assert_eq!(parsed.query_param("missing"), None);
        assert_eq!(parsed.path_only(), "/runs");
        assert_eq!(parsed.uri(), "http://svc.example/runs?limit=10&order=desc");
    }

    #[test]
    fn request_parse_lowercases_names_and_folds_duplicates() {
        let raw = b"GET /healthz?v=1 HTTP/1.1\r\n\
                    Host: svc.example\r\n\
                    X-Tag: one\r\n\
                    x-TAG: two\r\n\
                    Accept:   text/plain  \r\n\r\n";
        let r = Request::parse(raw).expect("parse");
        assert_eq!(r.method, "GET");
        assert_eq!(r.host, "svc.example");
        assert_eq!(r.path, "/healthz?v=1");
        assert_eq!(r.header("x-tag"), Some("one, two"));
        assert_eq!(r.header("ACCEPT"), Some("text/plain"));
        // host and content-length live in fields, not the map.
        assert_eq!(r.header("host"), None);
        assert_eq!(r.header("content-length"), None);
        assert_eq!(r.body, "");
    }

    #[test]
    fn request_parse_absolute_form_and_bare_lf() {
        let raw = b"GET http://shop.example/a?b=c HTTP/1.1\nhost: ignored.example\n\n";
        let r = Request::parse(raw).expect("parse");
        assert_eq!(r.host, "shop.example");
        assert_eq!(r.path, "/a?b=c");
        let root = Request::parse(b"GET http://shop.example HTTP/1.1\r\n\r\n").expect("parse");
        assert_eq!(root.path, "/");
        assert_eq!(root.uri(), "http://shop.example/");
    }

    #[test]
    fn empty_path_uri_round_trips_through_wire() {
        let r = Request::get("shop.example", "", Ipv4Addr::UNSPECIFIED, SimTime::EPOCH);
        assert_eq!(r.uri(), "http://shop.example/");
        let parsed = Request::parse(&r.to_bytes()).expect("round-trip");
        assert_eq!(parsed.path, "/");
        assert_eq!(parsed.uri(), r.uri());
    }

    #[test]
    fn request_parse_rejects_garbage() {
        assert_eq!(Request::parse(b""), Err(HttpError::Eof));
        assert!(matches!(
            Request::parse(b"NOT-HTTP\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
        assert!(matches!(
            Request::parse(b"GET / SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
        assert!(matches!(
            Request::parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
        assert!(matches!(
            Request::parse(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort"),
            Err(HttpError::BadBody(_))
        ));
    }

    #[test]
    fn keep_alive_follows_connection_semantics() {
        // HTTP/1.1 default: keep-alive.
        let r = Request::parse(b"GET / HTTP/1.1\r\nhost: a\r\n\r\n").expect("parse");
        assert!(r.keep_alive());
        // A `close` token anywhere in the list, any case, closes.
        let r = Request::parse(b"GET / HTTP/1.1\r\nconnection: Keep-Alive, CLOSE\r\n\r\n")
            .expect("parse");
        assert!(!r.keep_alive());
        // ... but a token merely *containing* "close" does not.
        let r = Request::parse(b"GET / HTTP/1.1\r\nconnection: closed\r\n\r\n").expect("parse");
        assert!(r.keep_alive());
        // HTTP/1.0 default: close, recorded as a synthesized header.
        let r = Request::parse(b"GET / HTTP/1.0\r\n\r\n").expect("parse");
        assert!(!r.keep_alive());
        assert_eq!(r.header("connection"), Some("close"));
        // HTTP/1.0 with an explicit keep-alive stays open.
        let r = Request::parse(b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n").expect("parse");
        assert!(r.keep_alive());

        assert!(Response::ok(String::new()).keep_alive());
        let closing = Response::ok(String::new()).with_header("Connection", "close");
        assert!(!closing.keep_alive());
        let parsed = Response::parse(&closing.to_bytes()).expect("round-trip");
        assert!(!parsed.keep_alive(), "the decision survives the wire");
    }

    #[test]
    fn response_wire_round_trip() {
        let r = Response::json("{\"id\":\"j-1\"}".to_owned())
            .with_status(Status::ServiceUnavailable)
            .with_header("Retry-After", "1");
        let parsed = Response::parse(&r.to_bytes()).expect("round-trip");
        assert_eq!(parsed, r);
        assert_eq!(parsed.status.code(), 503);
        assert_eq!(parsed.header("retry-after"), Some("1"));
        assert_eq!(parsed.body, "{\"id\":\"j-1\"}");
    }

    #[test]
    fn response_parse_rejects_unknown_status() {
        assert_eq!(
            Response::parse(b"HTTP/1.1 418 I'm a teapot\r\n\r\n"),
            Err(HttpError::UnknownStatus(418))
        );
        assert!(matches!(
            Response::parse(b"HTTP/1.1 teapot\r\n\r\n"),
            Err(HttpError::BadStatusLine(_))
        ));
    }

    #[test]
    fn status_code_round_trip() {
        for status in [
            Status::Ok,
            Status::BadRequest,
            Status::NotFound,
            Status::ServiceUnavailable,
        ] {
            assert_eq!(Status::from_code(status.code()), Some(status));
            assert!(!status.reason().is_empty());
        }
        assert_eq!(Status::from_code(302), None);
    }
}
