//! Minimal HTTP request/response model.
//!
//! The simulation does not need wire formats — requests never leave the
//! process — but it models exactly the header surface the paper's
//! methodology interacts with: `Host`, `User-Agent` (the three Spain
//! probes differ only here), `Cookie`/`Set-Cookie` (sessions, login), and
//! the client address (geo-location input).

use pd_net::clock::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// HTTP-ish response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// 200.
    Ok,
    /// 404.
    NotFound,
    /// 400.
    BadRequest,
    /// 503 — transient upstream failure (failure injection).
    ServiceUnavailable,
}

impl Status {
    /// Numeric code.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::NotFound => 404,
            Status::BadRequest => 400,
            Status::ServiceUnavailable => 503,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// A GET request to a simulated retailer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Target host, e.g. `www.digitalrev.com`.
    pub host: String,
    /// Path + query, e.g. `/product/camera-nova-0042`.
    pub path: String,
    /// Client IPv4 address (the geo-location input).
    pub client_addr: Ipv4Addr,
    /// Simulated send time.
    pub time: SimTime,
    /// Request headers (lowercased names).
    pub headers: BTreeMap<String, String>,
}

impl Request {
    /// Builds a GET request with no extra headers.
    #[must_use]
    pub fn get(host: &str, path: &str, client_addr: Ipv4Addr, time: SimTime) -> Self {
        Request {
            host: host.to_owned(),
            path: path.to_owned(),
            client_addr,
            time,
            headers: BTreeMap::new(),
        }
    }

    /// Adds/replaces a header (name lowercased).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers
            .insert(name.to_ascii_lowercase(), value.to_owned());
        self
    }

    /// Reads a header.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Parses one cookie value out of the `Cookie` header.
    #[must_use]
    pub fn cookie(&self, name: &str) -> Option<&str> {
        let header = self.header("cookie")?;
        header.split(';').find_map(|pair| {
            let (k, v) = pair.trim().split_once('=')?;
            (k == name).then_some(v)
        })
    }

    /// Sets a cookie (merging with any existing `Cookie` header).
    #[must_use]
    pub fn with_cookie(self, name: &str, value: &str) -> Self {
        let merged = match self.header("cookie") {
            Some(existing) => format!("{existing}; {name}={value}"),
            None => format!("{name}={value}"),
        };
        self.with_header("cookie", &merged)
    }

    /// Full URI for logging and $heriff fan-out.
    #[must_use]
    pub fn uri(&self) -> String {
        format!("http://{}{}", self.host, self.path)
    }
}

/// A response from a simulated retailer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Response headers (lowercased names).
    pub headers: BTreeMap<String, String>,
    /// HTML body.
    pub body: String,
}

impl Response {
    /// 200 with an HTML body.
    #[must_use]
    pub fn ok(body: String) -> Self {
        let mut headers = BTreeMap::new();
        headers.insert(
            "content-type".to_owned(),
            "text/html; charset=utf-8".to_owned(),
        );
        Response {
            status: Status::Ok,
            headers,
            body,
        }
    }

    /// 404 with a terse body.
    #[must_use]
    pub fn not_found() -> Self {
        Response {
            status: Status::NotFound,
            headers: BTreeMap::new(),
            body: "<html><body><h1>404 Not Found</h1></body></html>".to_owned(),
        }
    }

    /// 400 with a reason.
    #[must_use]
    pub fn bad_request(reason: &str) -> Self {
        Response {
            status: Status::BadRequest,
            headers: BTreeMap::new(),
            body: format!("<html><body><h1>400</h1><p>{reason}</p></body></html>"),
        }
    }

    /// 503 with a reason (transient; retrying later succeeds).
    #[must_use]
    pub fn service_unavailable(reason: &str) -> Self {
        Response {
            status: Status::ServiceUnavailable,
            headers: BTreeMap::new(),
            body: format!("<html><body><h1>503</h1><p>{reason}</p></body></html>"),
        }
    }

    /// Reads a header.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Adds a `Set-Cookie` header (single-cookie model: one per response).
    #[must_use]
    pub fn with_set_cookie(mut self, name: &str, value: &str) -> Self {
        self.headers
            .insert("set-cookie".to_owned(), format!("{name}={value}"));
        self
    }

    /// Parses the `Set-Cookie` header, if present.
    #[must_use]
    pub fn set_cookie(&self) -> Option<(&str, &str)> {
        self.header("set-cookie")?.split_once('=')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }

    #[test]
    fn request_headers_case_insensitive() {
        let r = Request::get("shop.example", "/", addr(), SimTime::EPOCH)
            .with_header("User-Agent", "test");
        assert_eq!(r.header("user-agent"), Some("test"));
        assert_eq!(r.header("USER-AGENT"), Some("test"));
        assert_eq!(r.header("missing"), None);
    }

    #[test]
    fn cookies_parse_and_merge() {
        let r = Request::get("shop.example", "/", addr(), SimTime::EPOCH)
            .with_cookie("sid", "123")
            .with_cookie("login", "alice");
        assert_eq!(r.cookie("sid"), Some("123"));
        assert_eq!(r.cookie("login"), Some("alice"));
        assert_eq!(r.cookie("other"), None);
    }

    #[test]
    fn uri_format() {
        let r = Request::get("www.shop.example", "/product/x", addr(), SimTime::EPOCH);
        assert_eq!(r.uri(), "http://www.shop.example/product/x");
    }

    #[test]
    fn response_constructors() {
        let ok = Response::ok("<p>hi</p>".into());
        assert_eq!(ok.status, Status::Ok);
        assert_eq!(ok.status.code(), 200);
        assert!(ok.header("content-type").unwrap().contains("text/html"));
        assert_eq!(Response::not_found().status.code(), 404);
        assert_eq!(Response::bad_request("x").status.code(), 400);
    }

    #[test]
    fn set_cookie_round_trip() {
        let r = Response::ok(String::new()).with_set_cookie("sid", "99");
        assert_eq!(r.set_cookie(), Some(("sid", "99")));
        assert_eq!(Response::ok(String::new()).set_cookie(), None);
    }
}
