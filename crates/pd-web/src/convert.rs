//! USD → local-currency conversion as retailers perform it.
//!
//! A geo-locating retailer prices internally in USD (the engine's output)
//! and displays the local currency at the day's market mid rate, rounded
//! to the currency's minor unit. The rounding error is at most half a
//! minor unit — far inside the exchange-rate band the analysis filter
//! allows — so a *uniform* retailer never trips the detector merely by
//! localizing currency (a property the integration tests pin down).

use pd_currency::{Currency, FxSeries, Price};
use pd_util::Money;

/// Converts a USD amount to `currency` at `day`'s mid rate.
///
/// JPY (zero minor digits) rounds to the whole yen, stored in the
/// [`Money`] major part as everywhere else in the workspace.
#[must_use]
pub fn usd_to_local(fx: &FxSeries, usd: Money, currency: Currency, day: usize) -> Price {
    if currency == Currency::Usd {
        return Price::usd(usd);
    }
    let rate = fx.rate(currency, day).mid(); // USD per unit of `currency`
    let local_major = usd.to_f64() / rate;
    let amount = if currency.decimals() == 0 {
        Money::from_minor(local_major.round() as i64 * 100)
    } else {
        Money::from_f64(local_major)
    };
    Price::new(amount, currency)
}

/// Converts a local price back to USD at the mid rate (reporting).
#[must_use]
pub fn local_to_usd_mid(fx: &FxSeries, price: Price, day: usize) -> f64 {
    fx.to_usd_mid(price, day)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_util::Seed;
    use proptest::prelude::*;

    fn fx() -> FxSeries {
        FxSeries::generate(Seed::new(1307), 160)
    }

    #[test]
    fn usd_identity() {
        let p = usd_to_local(&fx(), Money::from_minor(1299), Currency::Usd, 5);
        assert_eq!(p.amount, Money::from_minor(1299));
        assert_eq!(p.currency, Currency::Usd);
    }

    #[test]
    fn eur_conversion_near_parity() {
        let f = fx();
        let p = usd_to_local(&f, Money::from_minor(13_200), Currency::Eur, 0);
        // $132 at ~1.32 → ~€100.
        let eur = p.amount.to_f64();
        assert!((95.0..105.0).contains(&eur), "{eur}");
    }

    #[test]
    fn jpy_conversion_whole_yen() {
        let f = fx();
        let p = usd_to_local(&f, Money::from_minor(10_000), Currency::Jpy, 0);
        // $100 at ~0.0105 → ~¥9524, whole yen.
        assert_eq!(p.amount.to_minor() % 100, 0);
        let yen = p.amount.major();
        assert!((9_000..10_500).contains(&yen), "{yen}");
    }

    #[test]
    fn round_trip_error_within_band() {
        // Convert USD → EUR → USD at extreme rates: the residual must be
        // inside the filter band (no self-inflicted false positives).
        let f = fx();
        for day in [0usize, 50, 149] {
            for usd_minor in [999i64, 10_000, 123_456, 999_999] {
                let usd = Money::from_minor(usd_minor);
                let local = usd_to_local(&f, usd, Currency::Eur, day);
                let back_lo = f.to_usd_low(local, day);
                let back_hi = f.to_usd_high(local, day);
                let orig = usd.to_f64();
                assert!(
                    back_lo <= orig + 0.01 && back_hi >= orig - 0.01,
                    "day {day} {usd_minor}: [{back_lo}, {back_hi}] vs {orig}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_conversion_monotone(
            a in 100i64..10_000_000,
            b in 100i64..10_000_000,
            day in 0usize..150,
        ) {
            let f = fx();
            let pa = usd_to_local(&f, Money::from_minor(a), Currency::Eur, day);
            let pb = usd_to_local(&f, Money::from_minor(b), Currency::Eur, day);
            if a <= b {
                prop_assert!(pa.amount <= pb.amount);
            } else {
                prop_assert!(pa.amount >= pb.amount);
            }
        }

        #[test]
        fn prop_round_trip_relative_error_small(
            usd_minor in 1_000i64..100_000_000,
            day in 0usize..150,
            cidx in 0usize..9,
        ) {
            let f = fx();
            let c = Currency::ALL[cidx];
            let usd = Money::from_minor(usd_minor);
            let local = usd_to_local(&f, usd, c, day);
            let back = local_to_usd_mid(&f, local, day);
            let rel = (back - usd.to_f64()).abs() / usd.to_f64();
            // Worst case: JPY rounding of half a yen on a small price.
            prop_assert!(rel < 0.006, "rel {rel} for {c:?}");
        }
    }
}
