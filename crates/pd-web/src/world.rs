//! The full simulated web.
//!
//! [`WebWorld`] wires every retailer server behind a DNS-like host
//! registry, owns the shared FX series, and resolves client addresses to
//! locations with city granularity (the commercial-geo-IP model: country
//! from the address block, city from the registration the access network
//! made). [`WebWorld::fetch`] is the single entry point both $heriff's
//! fan-out and the crawler use.

use crate::http::{Request, Response};
use crate::server::RetailerServer;
use pd_currency::FxSeries;
use pd_net::geo::Location;
use pd_net::host::{HostId, HostRegistry};
use pd_net::ip::{GeoIpDb, IpAllocator};
use pd_pricing::RetailerSpec;
use pd_util::Seed;
use std::collections::HashMap;
use std::net::Ipv4Addr;

// (failure injection uses keyed hashing from `Seed`; no RNG state)

/// The simulated web: servers, DNS, geo-IP, FX.
#[derive(Debug)]
pub struct WebWorld {
    hosts: HostRegistry,
    servers: Vec<RetailerServer>,
    geoip: GeoIpDb,
    addr_city: HashMap<Ipv4Addr, Location>,
    alloc: IpAllocator,
    fx: FxSeries,
    /// Transient-failure probability per fetch (keyed hash — a given
    /// (client, uri, second) either fails or succeeds, deterministically,
    /// and succeeds on retry a second later). Zero by default.
    failure_rate: f64,
    failure_seed: Seed,
}

impl WebWorld {
    /// Builds the world from retailer specs. `fx_days` bounds the
    /// simulated horizon (the paper's window is 151 days, Jan–May 2013).
    #[must_use]
    pub fn build(seed: Seed, specs: Vec<RetailerSpec>, fx_days: usize) -> Self {
        let mut hosts = HostRegistry::new();
        let mut servers = Vec::with_capacity(specs.len());
        for spec in specs {
            let id = hosts.register(&spec.domain);
            debug_assert_eq!(id.index(), servers.len(), "dense server ids");
            servers.push(RetailerServer::new(seed, spec));
        }
        WebWorld {
            hosts,
            servers,
            geoip: GeoIpDb::new(),
            addr_city: HashMap::new(),
            alloc: IpAllocator::new(),
            fx: FxSeries::generate(seed, fx_days),
            failure_rate: 0.0,
            failure_seed: seed.derive("transient-failures"),
        }
    }

    /// Enables transient fetch failures at the given rate (failure
    /// injection for the crawler's retry logic). Failures are
    /// deterministic in (client, uri, second) and clear on retry.
    pub fn set_failure_rate(&mut self, rate: f64) {
        assert!((0.0..=1.0).contains(&rate), "rate out of range: {rate}");
        self.failure_rate = rate;
    }

    /// Whether a fetch at this instant transiently fails.
    fn transiently_fails(&self, req: &Request) -> bool {
        if self.failure_rate == 0.0 {
            return false;
        }
        let key = self
            .failure_seed
            .derive(&req.host)
            .derive(&req.path)
            .derive_idx(u64::from(u32::from(req.client_addr)))
            .derive_idx(req.time.as_millis() / 1000);
        let u = (key.value() >> 11) as f64 / (1u64 << 53) as f64;
        u < self.failure_rate
    }

    /// Allocates a client address at `location`, registering it in the
    /// city-granularity geo table.
    pub fn allocate_client(&mut self, location: &Location) -> Ipv4Addr {
        let addr = self.alloc.allocate(location.country);
        self.addr_city.insert(addr, location.clone());
        addr
    }

    /// Resolves an address the way retailers do: exact city entry if the
    /// access network registered one, else country-level geo-IP with an
    /// unknown city.
    #[must_use]
    pub fn resolve_client(&self, addr: Ipv4Addr) -> Option<Location> {
        if let Some(loc) = self.addr_city.get(&addr) {
            return Some(loc.clone());
        }
        self.geoip
            .lookup(addr)
            .map(|country| Location::new(country, "Unknown"))
    }

    /// The shared FX series (analysis uses the same market data the
    /// retailers localized with, as the paper did).
    #[must_use]
    pub fn fx(&self) -> &FxSeries {
        &self.fx
    }

    /// Host registry (diagnostics, domain enumeration).
    #[must_use]
    pub fn hosts(&self) -> &HostRegistry {
        &self.hosts
    }

    /// All servers, dense by [`HostId`].
    #[must_use]
    pub fn servers(&self) -> &[RetailerServer] {
        &self.servers
    }

    /// Server of a host id.
    ///
    /// # Panics
    ///
    /// Panics on a foreign id.
    #[must_use]
    pub fn server(&self, id: HostId) -> &RetailerServer {
        &self.servers[id.index()]
    }

    /// Server by domain name.
    #[must_use]
    pub fn server_by_domain(&self, domain: &str) -> Option<&RetailerServer> {
        self.hosts.resolve(domain).map(|id| self.server(id))
    }

    /// Performs one fetch: DNS + geo-IP + the retailer's handler.
    ///
    /// Unknown hosts return 404 (the simulation's NXDOMAIN); with
    /// failure injection enabled, a fetch may transiently 500 — retrying
    /// at a later second succeeds.
    #[must_use]
    pub fn fetch(&self, req: &Request) -> Response {
        if self.transiently_fails(req) {
            return Response::service_unavailable("transient upstream failure (injected)");
        }
        let Some(host) = self.hosts.resolve(&req.host) else {
            return Response::not_found();
        };
        let location = self.resolve_client(req.client_addr);
        self.servers[host.index()].handle(req, location.as_ref(), &self.fx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_net::clock::SimTime;
    use pd_net::geo::Country;
    use pd_pricing::{filler_retailers, paper_retailers};

    fn world() -> WebWorld {
        let seed = Seed::new(1307);
        let mut specs = paper_retailers(seed);
        specs.extend(filler_retailers(seed, 20));
        WebWorld::build(seed, specs, 160)
    }

    #[test]
    fn hosts_resolve_to_servers() {
        let w = world();
        assert_eq!(w.servers().len(), 50);
        let s = w.server_by_domain("www.amazon.com").unwrap();
        assert_eq!(s.spec().domain, "www.amazon.com");
        assert!(w.server_by_domain("nope.example").is_none());
    }

    #[test]
    fn fetch_unknown_host_is_404() {
        let mut w = world();
        let addr = w.allocate_client(&Location::new(Country::Spain, "Barcelona"));
        let req = Request::get("no-such.example", "/", addr, SimTime::EPOCH);
        assert_eq!(w.fetch(&req).status.code(), 404);
    }

    #[test]
    fn client_resolution_prefers_city_entry() {
        let mut w = world();
        let loc = Location::new(Country::UnitedStates, "Lincoln");
        let addr = w.allocate_client(&loc);
        assert_eq!(w.resolve_client(addr), Some(loc));
        // An unregistered address in a known block resolves to country
        // with unknown city.
        let foreign = std::net::Ipv4Addr::new(10, 0, 77, 77);
        let resolved = w.resolve_client(foreign).unwrap();
        assert_eq!(resolved.country, Country::UnitedStates);
        assert_eq!(resolved.city.name, "Unknown");
    }

    #[test]
    fn end_to_end_fetch_renders_localized_page() {
        let mut w = world();
        let fi = w.allocate_client(&Location::new(Country::Finland, "Tampere"));
        let slug = w
            .server_by_domain("www.digitalrev.com")
            .unwrap()
            .catalog()
            .iter()
            .next()
            .unwrap()
            .slug
            .clone();
        let req = Request::get(
            "www.digitalrev.com",
            &format!("/product/{slug}"),
            fi,
            SimTime::EPOCH,
        );
        let resp = w.fetch(&req);
        assert_eq!(resp.status.code(), 200);
        assert!(resp.body.contains('€'), "Finnish visitor sees EUR");
    }

    #[test]
    fn fetch_is_deterministic() {
        let mut w = world();
        let addr = w.allocate_client(&Location::new(Country::Germany, "Berlin"));
        let slug = w
            .server_by_domain("www.energie.it")
            .unwrap()
            .catalog()
            .iter()
            .next()
            .unwrap()
            .slug
            .clone();
        let req = Request::get(
            "www.energie.it",
            &format!("/product/{slug}"),
            addr,
            SimTime::from_millis(12345),
        );
        assert_eq!(w.fetch(&req).body, w.fetch(&req).body);
    }

    #[test]
    fn failure_injection_is_transient_and_deterministic() {
        let mut w = world();
        w.set_failure_rate(0.5);
        let addr = w.allocate_client(&Location::new(Country::Spain, "Barcelona"));
        let slug = w
            .server_by_domain("www.digitalrev.com")
            .unwrap()
            .catalog()
            .iter()
            .next()
            .unwrap()
            .slug
            .clone();
        let mut failed_at = None;
        for s in 0..50u64 {
            let req = Request::get(
                "www.digitalrev.com",
                &format!("/product/{slug}"),
                addr,
                SimTime::from_millis(s * 1000),
            );
            let r1 = w.fetch(&req);
            let r2 = w.fetch(&req);
            // Deterministic: same request, same outcome.
            assert_eq!(r1.status, r2.status);
            if r1.status.code() != 200 {
                failed_at = Some(s);
            }
        }
        let s = failed_at.expect("50% rate must fail somewhere in 50 tries");
        // Transient: a retry 30 s later succeeds eventually.
        let recovered = (1..60u64).any(|d| {
            let req = Request::get(
                "www.digitalrev.com",
                &format!("/product/{slug}"),
                addr,
                SimTime::from_millis((s + d) * 1000),
            );
            w.fetch(&req).status.code() == 200
        });
        assert!(recovered);
    }

    #[test]
    #[should_panic(expected = "rate out of range")]
    fn failure_rate_validated() {
        let mut w = world();
        w.set_failure_rate(1.5);
    }

    #[test]
    fn identical_worlds_from_identical_seeds() {
        let w1 = world();
        let w2 = world();
        for (a, b) in w1.servers().iter().zip(w2.servers()) {
            assert_eq!(a.spec(), b.spec());
            assert_eq!(a.catalog().len(), b.catalog().len());
        }
    }
}
