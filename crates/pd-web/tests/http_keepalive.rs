//! Property tests for the keep-alive wire codec (ISSUE 8).
//!
//! The `pd serve` daemon reads many requests off one persistent
//! connection, so the codec must hold up under *sequences*, not just
//! single messages:
//!
//! * **pipelining** — any sequence of requests serialized back-to-back
//!   into one byte stream reads back exactly, in order, through the
//!   same `read_from` loop an accept worker runs, ending in a clean
//!   `Eof`,
//! * **mid-stream close** — a `connection: close` token (any case, any
//!   position in the list-typed header) ends the serving loop at the
//!   right request, and everything served up to that point round-tripped
//!   exactly,
//! * **truncation** — any strict prefix of a valid request is rejected
//!   with an error, never mis-parsed — and the rejection does not
//!   poison anything: the same request re-sent whole on a fresh
//!   connection parses fine (what a client does after a 400 + close).

use pd_net::clock::SimTime;
use pd_web::http::{HttpError, Request};
use proptest::prelude::*;
use proptest::{collection, TestRng};
use std::io::BufReader;
use std::net::Ipv4Addr;

/// Connection-header spellings a real client might send; half the
/// sampled requests carry none at all.
const CONNECTION_VALUES: &[&str] = &[
    "keep-alive",
    "close",
    "Close",
    "CLOSE",
    "x-token, close",
    "keep-alive, x-other",
];

/// A strategy producing wire-safe requests: origin-form path, lowercase
/// headers, printable-ASCII body, and sometimes an explicit
/// `connection` header.
struct ArbRequest;

impl Strategy for ArbRequest {
    type Value = Request;

    fn sample(&self, rng: &mut TestRng) -> Request {
        let method = ["GET", "POST", "PUT", "DELETE"][rng.below(4) as usize];
        let host = Strategy::sample(&"[a-z0-9]{1,12}", rng);
        let path = Strategy::sample(&"/[a-z0-9/_-]{0,20}", rng);
        let body = Strategy::sample(&"[ -~]{0,40}", rng);
        let mut request = Request {
            method: method.to_owned(),
            host,
            path,
            client_addr: Ipv4Addr::UNSPECIFIED,
            time: SimTime::EPOCH,
            headers: std::collections::BTreeMap::new(),
            body,
        };
        for _ in 0..rng.below(4) {
            let name = Strategy::sample(&"x-[a-z][a-z0-9-]{0,8}", rng);
            let value = Strategy::sample(&"[a-z0-9-]{0,12}", rng);
            request = request.with_header(&name, &value);
        }
        if rng.below(2) == 0 {
            let value = CONNECTION_VALUES[rng.below(CONNECTION_VALUES.len() as u64) as usize];
            request = request.with_header("connection", value);
        }
        request
    }
}

/// One connection's worth of bytes: every request, back to back.
fn pipeline_bytes(requests: &[Request]) -> Vec<u8> {
    let mut wire = Vec::new();
    for request in requests {
        wire.extend_from_slice(&request.to_bytes());
    }
    wire
}

proptest! {
    /// Pipelined sequences round-trip: reading the concatenated wire
    /// bytes with the server's `read_from` loop yields every request
    /// exactly, in order, and then a clean `Eof` — no request's bytes
    /// bleed into the next.
    #[test]
    fn prop_pipelined_requests_round_trip(
        requests in collection::vec(ArbRequest, 1..8),
    ) {
        let wire = pipeline_bytes(&requests);
        // A tiny BufReader models the socket's buffered read half,
        // including reads that straddle buffer refills.
        let mut reader = BufReader::with_capacity(16, wire.as_slice());
        for (i, sent) in requests.iter().enumerate() {
            let parsed = Request::read_from(&mut reader)
                .unwrap_or_else(|e| panic!("request {i} failed to parse: {e}"));
            prop_assert_eq!(&parsed, sent, "request {} mutated in transit", i);
        }
        prop_assert_eq!(
            Request::read_from(&mut reader),
            Err(HttpError::Eof),
            "a drained connection must end in a clean Eof"
        );
    }

    /// The serving loop stops exactly at the first `connection: close`
    /// request (any case, anywhere in the list-typed value), and every
    /// request served before the close round-tripped exactly.
    #[test]
    fn prop_mid_stream_close_ends_the_loop_at_the_right_request(
        requests in collection::vec(ArbRequest, 1..8),
    ) {
        let wire = pipeline_bytes(&requests);
        let mut reader = BufReader::new(wire.as_slice());
        // The accept worker's loop: serve until a request asks to close.
        let mut served = Vec::new();
        loop {
            match Request::read_from(&mut reader) {
                Ok(request) => {
                    let keep = request.keep_alive();
                    served.push(request);
                    if !keep {
                        break;
                    }
                }
                Err(HttpError::Eof) => break,
                Err(e) => panic!("valid pipeline failed to parse: {e}"),
            }
        }
        let expect = requests
            .iter()
            .position(|r| !r.keep_alive())
            .map_or(requests.len(), |i| i + 1);
        prop_assert_eq!(served.len(), expect);
        prop_assert_eq!(&served[..], &requests[..expect]);
    }

    /// Any strict prefix of a request is an error — never a mis-parse —
    /// and the error does not poison a retry: the full bytes on a fresh
    /// connection still parse to the original request.
    #[test]
    fn prop_truncated_request_rejects_then_fresh_connection_succeeds(
        request in ArbRequest,
        cut_frac in 0.0f64..1.0,
    ) {
        let wire = request.to_bytes();
        // Map the fraction onto [1, len): always a strict, non-empty
        // prefix.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = 1 + ((wire.len() - 1) as f64 * cut_frac) as usize;
        prop_assume!(cut < wire.len());
        let truncated = &wire[..cut];
        prop_assert!(
            Request::parse(truncated).is_err(),
            "a {}-byte prefix of a {}-byte request must not parse",
            cut,
            wire.len()
        );
        // The "next connection": same request, fresh stream, whole bytes.
        let reparsed = Request::parse(&wire).expect("full request parses");
        prop_assert_eq!(reparsed, request);
    }
}
