//! Geography: countries, cities and locations.
//!
//! The crowd spans 18 countries (Sec. 3.2); the systematic crawl uses the
//! 14 vantage-point locations of Fig. 7. Countries carry the attributes
//! retailers actually key pricing on — the local currency and a coarse
//! market region.

use serde::{Deserialize, Serialize};
use std::fmt;

/// ISO-like country identifiers for every country that appears in the
/// paper's datasets (vantage points, crowd countries) plus enough others
/// to make up the 18-country crowd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Country {
    UnitedStates,
    UnitedKingdom,
    Germany,
    Spain,
    Finland,
    Belgium,
    Brazil,
    Italy,
    France,
    Netherlands,
    Poland,
    Portugal,
    Greece,
    Sweden,
    Ireland,
    Canada,
    Australia,
    Japan,
}

impl Country {
    /// All modeled countries — exactly the 18 of the crowdsourced dataset.
    pub const ALL: [Country; 18] = [
        Country::UnitedStates,
        Country::UnitedKingdom,
        Country::Germany,
        Country::Spain,
        Country::Finland,
        Country::Belgium,
        Country::Brazil,
        Country::Italy,
        Country::France,
        Country::Netherlands,
        Country::Poland,
        Country::Portugal,
        Country::Greece,
        Country::Sweden,
        Country::Ireland,
        Country::Canada,
        Country::Australia,
        Country::Japan,
    ];

    /// Two-letter code (ISO 3166-1 alpha-2).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Country::UnitedStates => "US",
            Country::UnitedKingdom => "GB",
            Country::Germany => "DE",
            Country::Spain => "ES",
            Country::Finland => "FI",
            Country::Belgium => "BE",
            Country::Brazil => "BR",
            Country::Italy => "IT",
            Country::France => "FR",
            Country::Netherlands => "NL",
            Country::Poland => "PL",
            Country::Portugal => "PT",
            Country::Greece => "GR",
            Country::Sweden => "SE",
            Country::Ireland => "IE",
            Country::Canada => "CA",
            Country::Australia => "AU",
            Country::Japan => "JP",
        }
    }

    /// Human-readable name as the paper's figures label it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Country::UnitedStates => "USA",
            Country::UnitedKingdom => "UK",
            Country::Germany => "Germany",
            Country::Spain => "Spain",
            Country::Finland => "Finland",
            Country::Belgium => "Belgium",
            Country::Brazil => "Brazil",
            Country::Italy => "Italy",
            Country::France => "France",
            Country::Netherlands => "Netherlands",
            Country::Poland => "Poland",
            Country::Portugal => "Portugal",
            Country::Greece => "Greece",
            Country::Sweden => "Sweden",
            Country::Ireland => "Ireland",
            Country::Canada => "Canada",
            Country::Australia => "Australia",
            Country::Japan => "Japan",
        }
    }

    /// Coarse market region, the granularity at which many of the paper's
    /// retailers differentiate (e.g. amazon.com: "constant prices across
    /// US but vary them across countries").
    #[must_use]
    pub fn region(self) -> Region {
        match self {
            Country::UnitedStates | Country::Canada => Region::NorthAmerica,
            Country::Brazil => Region::SouthAmerica,
            Country::Australia | Country::Japan => Region::AsiaPacific,
            Country::UnitedKingdom | Country::Ireland => Region::EuropeNonEuro,
            Country::Sweden | Country::Poland => Region::EuropeNonEuro,
            _ => Region::Eurozone,
        }
    }

    /// Index of this country in [`Country::ALL`] — stable and dense, used
    /// for seed derivation and vector indexing.
    #[must_use]
    pub fn index(self) -> usize {
        Country::ALL
            .iter()
            .position(|c| *c == self)
            .expect("country present in ALL")
    }
}

impl fmt::Display for Country {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Coarse market regions used by region-level pricing strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Region {
    NorthAmerica,
    SouthAmerica,
    Eurozone,
    EuropeNonEuro,
    AsiaPacific,
}

/// A city, identified by name within a country.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct City {
    /// City name (ASCII, as the paper's labels: "Sao Paulo", "Liege").
    pub name: String,
}

impl City {
    /// Creates a city.
    #[must_use]
    pub fn new(name: &str) -> Self {
        City {
            name: name.to_owned(),
        }
    }
}

/// A geographic location: country plus city.
///
/// Two vantage points may share a `Location` and differ only in platform
/// (the paper's three Spain probes).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Country of the location.
    pub country: Country,
    /// City of the location.
    pub city: City,
}

impl Location {
    /// Creates a location.
    #[must_use]
    pub fn new(country: Country, city: &str) -> Self {
        Location {
            country,
            city: City::new(city),
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} - {}", self.country.name(), self.city.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_18_countries() {
        assert_eq!(Country::ALL.len(), 18);
        let codes: std::collections::HashSet<_> = Country::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), 18, "country codes must be unique");
    }

    #[test]
    fn index_round_trips() {
        for (i, c) in Country::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn regions_match_paper_structure() {
        assert_eq!(Country::UnitedStates.region(), Region::NorthAmerica);
        assert_eq!(Country::Brazil.region(), Region::SouthAmerica);
        assert_eq!(Country::Finland.region(), Region::Eurozone);
        assert_eq!(Country::UnitedKingdom.region(), Region::EuropeNonEuro);
        assert_eq!(Country::Japan.region(), Region::AsiaPacific);
    }

    #[test]
    fn location_display_matches_figure_labels() {
        let l = Location::new(Country::Finland, "Tampere");
        assert_eq!(l.to_string(), "Finland - Tampere");
        let l = Location::new(Country::UnitedStates, "New York");
        assert_eq!(l.to_string(), "USA - New York");
    }

    #[test]
    fn locations_hash_by_value() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Location::new(Country::Spain, "Barcelona"));
        assert!(s.contains(&Location::new(Country::Spain, "Barcelona")));
        assert!(!s.contains(&Location::new(Country::Spain, "Madrid")));
    }
}
