//! Simulated internet substrate.
//!
//! The paper's measurement system ran on the real internet: 14 vantage
//! points in different countries issued synchronized HTTP requests, and
//! retailers geo-located the client IP to decide which price to show. This
//! crate rebuilds exactly the pieces of that environment the system
//! interacts with:
//!
//! * [`clock`] — a simulated wall clock with civil-date arithmetic. The
//!   crawl schedule ("daily for a week"), the FX-rate series ("daily lowest
//!   and highest") and the synchronization logic all consume it.
//! * [`geo`] — countries, cities and the paper's 14 measurement locations
//!   (Fig. 7: Liège, São Paulo, Tampere, Berlin, 3× Spain with different
//!   platforms, London and 6 US cities).
//! * [`ip`] — per-location IPv4 allocation and a geo-IP database, the
//!   lookup retailers use to localize clients.
//! * [`latency`] — a deterministic latency model, used to show that the
//!   synchronized fan-out keeps the spread of arrival times far below the
//!   timescale of price changes.
//! * [`host`] — a DNS-like registry mapping retail domains to simulated
//!   servers.
//! * [`vantage`] — vantage-point definitions (location + platform).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod geo;
pub mod host;
pub mod ip;
pub mod latency;
pub mod vantage;

pub use clock::{CivilDate, SimClock, SimDuration, SimTime};
pub use geo::{City, Country, Location};
pub use host::{HostId, HostRegistry};
pub use ip::{GeoIpDb, IpAllocator};
pub use latency::LatencyModel;
pub use vantage::{paper_vantage_points, Browser, Os, Platform, VantagePoint};
