//! DNS-like host registry.
//!
//! Maps retail domain names (`www.example-books.com`) to dense
//! [`HostId`]s. The crowd dataset spans 600 domains; the registry is the
//! single source of truth for which domains exist and guarantees a stable
//! ordering for seed derivation and reporting.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense id of a registered host (domain).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct HostId(pub u32);

impl HostId {
    /// Creates a host id from its dense index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        HostId(index)
    }

    /// The dense index (usable as a `Vec` index).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host-{}", self.0)
    }
}

/// Registry of domain names.
///
/// Registration is idempotent: registering the same name twice returns
/// the same id. Lookup never allocates.
///
/// # Examples
///
/// ```
/// use pd_net::host::HostRegistry;
///
/// let mut reg = HostRegistry::new();
/// let id = reg.register("www.digitalrev-photo.example");
/// assert_eq!(reg.register("www.digitalrev-photo.example"), id);
/// assert_eq!(reg.resolve("www.digitalrev-photo.example"), Some(id));
/// assert_eq!(reg.name(id), "www.digitalrev-photo.example");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HostRegistry {
    names: Vec<String>,
    by_name: HashMap<String, HostId>,
}

impl HostRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a domain name (idempotent) and returns its id.
    ///
    /// Names are normalized to lowercase, mirroring DNS case
    /// insensitivity.
    pub fn register(&mut self, name: &str) -> HostId {
        let norm = name.to_ascii_lowercase();
        if let Some(&id) = self.by_name.get(&norm) {
            return id;
        }
        let id = HostId::new(u32::try_from(self.names.len()).expect("host table overflow"));
        self.names.push(norm.clone());
        self.by_name.insert(norm, id);
        id
    }

    /// Resolves a name to an id, if registered.
    #[must_use]
    pub fn resolve(&self, name: &str) -> Option<HostId> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// Name of a registered host.
    ///
    /// # Panics
    ///
    /// Panics on an id not issued by this registry.
    #[must_use]
    pub fn name(&self, id: HostId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered hosts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (HostId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (HostId::new(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut reg = HostRegistry::new();
        let a = reg.register("www.shop.example");
        let b = reg.register("www.shop.example");
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn names_are_case_insensitive() {
        let mut reg = HostRegistry::new();
        let a = reg.register("WWW.Shop.Example");
        assert_eq!(reg.resolve("www.shop.example"), Some(a));
        assert_eq!(reg.name(a), "www.shop.example");
    }

    #[test]
    fn resolve_unknown_is_none() {
        let reg = HostRegistry::new();
        assert_eq!(reg.resolve("nope.example"), None);
        assert!(reg.is_empty());
    }

    #[test]
    fn ids_are_dense_registration_order() {
        let mut reg = HostRegistry::new();
        let ids: Vec<HostId> = (0..10)
            .map(|i| reg.register(&format!("host{i}.example")))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        let collected: Vec<_> = reg.iter().map(|(id, _)| id).collect();
        assert_eq!(collected, ids);
    }
}
