//! Simulated time.
//!
//! The simulation epoch is **2013-01-01 00:00:00 UTC** — the start of the
//! paper's crowdsourced collection window (Jan–May 2013). Time is a count
//! of milliseconds since that epoch; civil-date conversion uses the
//! days-from-civil algorithm so "daily" schedules and per-day FX rates are
//! exact, leap years included.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Milliseconds in one day.
pub const MILLIS_PER_DAY: u64 = 24 * 60 * 60 * 1000;

/// An instant of simulated time (ms since 2013-01-01 00:00:00 UTC).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Duration from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Duration from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Duration from whole minutes.
    #[must_use]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Duration from whole hours.
    #[must_use]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// Duration from whole days.
    #[must_use]
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * MILLIS_PER_DAY)
    }

    /// Length in milliseconds.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }
}

impl SimTime {
    /// The simulation epoch, 2013-01-01 00:00:00 UTC.
    pub const EPOCH: SimTime = SimTime(0);

    /// Instant from raw milliseconds since the epoch.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Milliseconds since the epoch.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Day index since the epoch (day 0 = 2013-01-01).
    #[must_use]
    pub const fn day_index(self) -> u64 {
        self.0 / MILLIS_PER_DAY
    }

    /// Milliseconds elapsed within the current day.
    #[must_use]
    pub const fn millis_of_day(self) -> u64 {
        self.0 % MILLIS_PER_DAY
    }

    /// The civil (Gregorian) date of this instant.
    #[must_use]
    pub fn civil_date(self) -> CivilDate {
        CivilDate::from_day_index(self.day_index())
    }

    /// Saturating difference between two instants.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.civil_date();
        let ms = self.millis_of_day();
        let (h, m, s) = (ms / 3_600_000, (ms / 60_000) % 60, (ms / 1000) % 60);
        write!(f, "{d} {h:02}:{m:02}:{s:02}Z")
    }
}

/// A Gregorian calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CivilDate {
    /// Four-digit year.
    pub year: i32,
    /// Month, `1..=12`.
    pub month: u8,
    /// Day of month, `1..=31`.
    pub day: u8,
}

/// Days from 1970-01-01 to 2013-01-01 (the simulation epoch).
const EPOCH_OFFSET_1970: i64 = 15_706;

impl CivilDate {
    /// Builds a date, validating ranges.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range month/day (this is generator-side code;
    /// parsed dates go through [`CivilDate::checked_new`]).
    #[must_use]
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        Self::checked_new(year, month, day).expect("invalid civil date")
    }

    /// Builds a date, returning `None` when out of range.
    #[must_use]
    pub fn checked_new(year: i32, month: u8, day: u8) -> Option<Self> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(CivilDate { year, month, day })
    }

    /// Date of a simulation day index (day 0 = 2013-01-01).
    #[must_use]
    pub fn from_day_index(day_index: u64) -> Self {
        civil_from_days(day_index as i64 + EPOCH_OFFSET_1970)
    }

    /// Simulation day index of this date (negative before 2013).
    #[must_use]
    pub fn day_index(self) -> i64 {
        days_from_civil(self.year, self.month, self.day) - EPOCH_OFFSET_1970
    }

    /// Midnight at the start of this date as a [`SimTime`].
    ///
    /// # Panics
    ///
    /// Panics for dates before the 2013 epoch.
    #[must_use]
    pub fn midnight(self) -> SimTime {
        let idx = self.day_index();
        assert!(idx >= 0, "date {self} precedes the simulation epoch");
        SimTime::from_millis(idx as u64 * MILLIS_PER_DAY)
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// True for Gregorian leap years.
#[must_use]
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in a month.
#[must_use]
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap_year(year) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m as i32 + 9) % 12); // [0, 11]
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (inverse of [`days_from_civil`]).
fn civil_from_days(z: i64) -> CivilDate {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    CivilDate {
        year: (y + i64::from(m <= 2)) as i32,
        month: m,
        day: d,
    }
}

/// A monotonically advancing simulated clock.
///
/// The clock is deliberately *manual*: nothing in the simulation advances
/// it implicitly, so tests and experiments control time exactly. The
/// crawler advances it one day per crawl round; the crowd simulator
/// advances it between user sessions.
///
/// # Examples
///
/// ```
/// use pd_net::clock::{SimClock, SimDuration};
///
/// let mut clock = SimClock::new();
/// assert_eq!(clock.now().day_index(), 0);
/// clock.advance(SimDuration::from_days(3));
/// assert_eq!(clock.now().day_index(), 3);
/// assert_eq!(clock.now().civil_date().to_string(), "2013-01-04");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock at the simulation epoch.
    #[must_use]
    pub fn new() -> Self {
        SimClock {
            now: SimTime::EPOCH,
        }
    }

    /// A clock starting at a specific instant.
    #[must_use]
    pub fn starting_at(t: SimTime) -> Self {
        SimClock { now: t }
    }

    /// Current simulated instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Advances the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past — simulated time never rewinds.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "clock cannot rewind: {} -> {}", self.now, t);
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_2013_01_01() {
        assert_eq!(SimTime::EPOCH.civil_date(), CivilDate::new(2013, 1, 1));
    }

    #[test]
    fn crowdsourcing_window_jan_to_may() {
        // The crowd window ends 2013-05-31; 150 days after the epoch.
        let may31 = CivilDate::new(2013, 5, 31);
        assert_eq!(may31.day_index(), 150);
        assert_eq!(CivilDate::from_day_index(150), may31);
    }

    #[test]
    fn civil_round_trip_2013() {
        for idx in 0..365 {
            let d = CivilDate::from_day_index(idx);
            assert_eq!(d.day_index(), idx as i64, "round-trip failed at {d}");
            assert_eq!(d.year, 2013);
        }
    }

    #[test]
    fn leap_year_handling() {
        assert!(is_leap_year(2012));
        assert!(!is_leap_year(2013));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2000));
        assert_eq!(days_in_month(2012, 2), 29);
        assert_eq!(days_in_month(2013, 2), 28);
    }

    #[test]
    fn checked_new_validates() {
        assert!(CivilDate::checked_new(2013, 2, 29).is_none());
        assert!(CivilDate::checked_new(2012, 2, 29).is_some());
        assert!(CivilDate::checked_new(2013, 0, 1).is_none());
        assert!(CivilDate::checked_new(2013, 13, 1).is_none());
        assert!(CivilDate::checked_new(2013, 4, 31).is_none());
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_millis(3 * MILLIS_PER_DAY + 3_600_000 + 90_000);
        assert_eq!(t.to_string(), "2013-01-04 01:01:30Z");
        assert_eq!(CivilDate::new(2013, 1, 4).to_string(), "2013-01-04");
    }

    #[test]
    fn midnight_matches_day_index() {
        let d = CivilDate::new(2013, 3, 15);
        assert_eq!(d.midnight().civil_date(), d);
        assert_eq!(d.midnight().millis_of_day(), 0);
    }

    #[test]
    #[should_panic(expected = "precedes the simulation epoch")]
    fn midnight_before_epoch_panics() {
        let _ = CivilDate::new(2012, 12, 31).midnight();
    }

    #[test]
    fn clock_advances() {
        let mut c = SimClock::new();
        c.advance(SimDuration::from_hours(25));
        assert_eq!(c.now().day_index(), 1);
        c.advance_to(SimTime::from_millis(4 * MILLIS_PER_DAY));
        assert_eq!(c.now().day_index(), 4);
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn clock_rejects_rewind() {
        let mut c = SimClock::starting_at(SimTime::from_millis(10));
        c.advance_to(SimTime::from_millis(5));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
    }

    #[test]
    fn since_is_saturating() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(30);
        assert_eq!(b.since(a).as_millis(), 20);
        assert_eq!(a.since(b).as_millis(), 0);
    }

    proptest! {
        #[test]
        fn prop_civil_round_trip(idx in 0u64..40_000) {
            let d = CivilDate::from_day_index(idx);
            prop_assert_eq!(d.day_index(), idx as i64);
            prop_assert!(CivilDate::checked_new(d.year, d.month, d.day).is_some());
        }

        #[test]
        fn prop_dates_are_monotone(a in 0u64..40_000, b in 0u64..40_000) {
            let (da, db) = (CivilDate::from_day_index(a), CivilDate::from_day_index(b));
            prop_assert_eq!(a.cmp(&b), da.cmp(&db));
        }

        #[test]
        fn prop_day_index_consistency(ms in 0u64..(40_000 * MILLIS_PER_DAY)) {
            let t = SimTime::from_millis(ms);
            prop_assert_eq!(t.civil_date(), CivilDate::from_day_index(t.day_index()));
        }
    }
}
