//! Measurement vantage points.
//!
//! $heriff fans every price check out to 14 vantage points (Sec. 3.1).
//! Fig. 7 names them: Belgium (Liège), Brazil (São Paulo), Finland
//! (Tampere), Germany (Berlin), three probes in Spain differing only in
//! platform (Linux/Firefox, Mac/Safari, Windows/Chrome), UK (London), and
//! six US cities (Boston, Chicago, Lincoln, Los Angeles, New York,
//! Albany). The triple-Spain setup is the paper's control for system
//! effects: same location, different OS/browser.

use crate::geo::{Country, Location};
use crate::ip::IpAllocator;
use pd_util::VantageId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Operating system of a probe or user machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Os {
    Linux,
    MacOs,
    Windows,
}

/// Browser of a probe or user machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Browser {
    Firefox,
    Chrome,
    Safari,
}

/// An OS/browser pair; rendered into the `User-Agent` request header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Platform {
    /// Operating system.
    pub os: Os,
    /// Browser.
    pub browser: Browser,
}

impl Platform {
    /// Linux + Firefox, the baseline probe platform.
    pub const LINUX_FIREFOX: Platform = Platform {
        os: Os::Linux,
        browser: Browser::Firefox,
    };
    /// macOS + Safari.
    pub const MAC_SAFARI: Platform = Platform {
        os: Os::MacOs,
        browser: Browser::Safari,
    };
    /// Windows + Chrome.
    pub const WIN_CHROME: Platform = Platform {
        os: Os::Windows,
        browser: Browser::Chrome,
    };

    /// A 2013-plausible `User-Agent` string for this platform.
    #[must_use]
    pub fn user_agent(self) -> String {
        let os = match self.os {
            Os::Linux => "X11; Linux x86_64",
            Os::MacOs => "Macintosh; Intel Mac OS X 10_8_3",
            Os::Windows => "Windows NT 6.1; WOW64",
        };
        match self.browser {
            Browser::Firefox => format!("Mozilla/5.0 ({os}; rv:21.0) Gecko/20100101 Firefox/21.0"),
            Browser::Chrome => format!(
                "Mozilla/5.0 ({os}) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/27.0.1453.110 Safari/537.36"
            ),
            Browser::Safari => format!(
                "Mozilla/5.0 ({os}) AppleWebKit/536.28.10 (KHTML, like Gecko) Version/6.0.3 Safari/536.28.10"
            ),
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let os = match self.os {
            Os::Linux => "Linux",
            Os::MacOs => "Mac",
            Os::Windows => "Win",
        };
        let br = match self.browser {
            Browser::Firefox => "FF",
            Browser::Chrome => "Chrome",
            Browser::Safari => "Safari",
        };
        write!(f, "{os},{br}")
    }
}

/// One measurement vantage point: a machine at a fixed location with a
/// fixed platform and a stable client IP address.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VantagePoint {
    /// Dense vantage-point id.
    pub id: VantageId,
    /// Where the probe sits.
    pub location: Location,
    /// OS/browser it presents.
    pub platform: Platform,
    /// Its client IP (geo-locates to `location.country`).
    pub addr: Ipv4Addr,
}

impl VantagePoint {
    /// Label as it appears on the x-axis of Fig. 7, e.g.
    /// `"Finland - Tampere"` or `"Spain (Linux,FF)"`.
    #[must_use]
    pub fn label(&self) -> String {
        if self.location.country == Country::Spain {
            format!("Spain ({})", self.platform)
        } else {
            self.location.to_string()
        }
    }
}

/// Builds the paper's 14 vantage points, allocating each an address from
/// `alloc`.
///
/// Ordering is stable: alphabetical by the Fig. 7 label, exactly the
/// order in which the figure lists them. `VantageId`s are assigned
/// densely in that order.
#[must_use]
pub fn paper_vantage_points(alloc: &mut IpAllocator) -> Vec<VantagePoint> {
    let spec: [(Country, &str, Platform); 14] = [
        (Country::Belgium, "Liege", Platform::LINUX_FIREFOX),
        (Country::Brazil, "Sao Paulo", Platform::LINUX_FIREFOX),
        (Country::Finland, "Tampere", Platform::LINUX_FIREFOX),
        (Country::Germany, "Berlin", Platform::LINUX_FIREFOX),
        (Country::Spain, "Barcelona", Platform::LINUX_FIREFOX),
        (Country::Spain, "Barcelona", Platform::MAC_SAFARI),
        (Country::Spain, "Barcelona", Platform::WIN_CHROME),
        (Country::UnitedKingdom, "London", Platform::LINUX_FIREFOX),
        (Country::UnitedStates, "Boston", Platform::LINUX_FIREFOX),
        (Country::UnitedStates, "Chicago", Platform::LINUX_FIREFOX),
        (Country::UnitedStates, "Lincoln", Platform::LINUX_FIREFOX),
        (
            Country::UnitedStates,
            "Los Angeles",
            Platform::LINUX_FIREFOX,
        ),
        (Country::UnitedStates, "New York", Platform::LINUX_FIREFOX),
        (Country::UnitedStates, "Albany", Platform::LINUX_FIREFOX),
    ];
    spec.iter()
        .enumerate()
        .map(|(i, (country, city, platform))| VantagePoint {
            id: VantageId::new(i as u32),
            location: Location::new(*country, city),
            platform: *platform,
            addr: alloc.allocate(*country),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_14_vantage_points() {
        let mut alloc = IpAllocator::new();
        let vps = paper_vantage_points(&mut alloc);
        assert_eq!(vps.len(), 14);
    }

    #[test]
    fn three_spain_probes_differ_only_in_platform() {
        let mut alloc = IpAllocator::new();
        let vps = paper_vantage_points(&mut alloc);
        let spain: Vec<_> = vps
            .iter()
            .filter(|v| v.location.country == Country::Spain)
            .collect();
        assert_eq!(spain.len(), 3);
        let platforms: std::collections::HashSet<_> = spain.iter().map(|v| v.platform).collect();
        assert_eq!(platforms.len(), 3);
        assert!(spain.windows(2).all(|w| w[0].location == w[1].location));
    }

    #[test]
    fn six_us_cities() {
        let mut alloc = IpAllocator::new();
        let vps = paper_vantage_points(&mut alloc);
        let us: Vec<_> = vps
            .iter()
            .filter(|v| v.location.country == Country::UnitedStates)
            .collect();
        assert_eq!(us.len(), 6);
        let cities: std::collections::HashSet<_> =
            us.iter().map(|v| v.location.city.name.clone()).collect();
        assert_eq!(cities.len(), 6);
    }

    #[test]
    fn labels_match_fig7() {
        let mut alloc = IpAllocator::new();
        let vps = paper_vantage_points(&mut alloc);
        let labels: Vec<String> = vps.iter().map(VantagePoint::label).collect();
        assert!(labels.contains(&"Belgium - Liege".to_string()));
        assert!(labels.contains(&"Spain (Linux,FF)".to_string()));
        assert!(labels.contains(&"Spain (Mac,Safari)".to_string()));
        assert!(labels.contains(&"Spain (Win,Chrome)".to_string()));
        assert!(labels.contains(&"USA - Lincoln".to_string()));
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut alloc = IpAllocator::new();
        let vps = paper_vantage_points(&mut alloc);
        for (i, vp) in vps.iter().enumerate() {
            assert_eq!(vp.id.index(), i);
        }
    }

    #[test]
    fn addresses_geolocate_to_own_country() {
        use crate::ip::GeoIpDb;
        let mut alloc = IpAllocator::new();
        let db = GeoIpDb::new();
        for vp in paper_vantage_points(&mut alloc) {
            assert_eq!(db.lookup(vp.addr), Some(vp.location.country));
        }
    }

    #[test]
    fn user_agents_are_distinct_per_platform() {
        let uas: std::collections::HashSet<_> = [
            Platform::LINUX_FIREFOX,
            Platform::MAC_SAFARI,
            Platform::WIN_CHROME,
        ]
        .iter()
        .map(|p| p.user_agent())
        .collect();
        assert_eq!(uas.len(), 3);
        assert!(Platform::LINUX_FIREFOX.user_agent().contains("Firefox"));
        assert!(Platform::WIN_CHROME.user_agent().contains("Chrome"));
    }
}
