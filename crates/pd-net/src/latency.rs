//! Deterministic network latency model.
//!
//! The paper's noise-control argument (Sec. 2.2) is that synchronized
//! fan-out keeps the *time spread* between vantage-point fetches far below
//! the timescale at which prices change. To evaluate that argument inside
//! the simulation (and to ablate it — see `bench/ablations`), requests
//! need realistic, reproducible round-trip times.
//!
//! The model is intentionally simple: a base RTT per region pair plus a
//! deterministic per-(src,dst) jitter derived from a seed. No queueing —
//! the crawler's request rate is trivially low.

use crate::geo::{Country, Region};
use pd_util::Seed;
use serde::{Deserialize, Serialize};

/// Deterministic latency oracle.
///
/// # Examples
///
/// ```
/// use pd_net::{latency::LatencyModel, geo::Country};
/// use pd_util::Seed;
///
/// let m = LatencyModel::new(Seed::new(1));
/// let rtt = m.rtt_ms(Country::Finland, Country::UnitedStates);
/// assert!(rtt >= 100 && rtt < 400);
/// // Deterministic:
/// assert_eq!(rtt, LatencyModel::new(Seed::new(1)).rtt_ms(Country::Finland, Country::UnitedStates));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyModel {
    seed: Seed,
}

impl LatencyModel {
    /// Creates a model from a seed.
    #[must_use]
    pub fn new(seed: Seed) -> Self {
        LatencyModel {
            seed: seed.derive("latency"),
        }
    }

    /// Base round-trip time between two regions, in milliseconds.
    fn base_rtt(a: Region, b: Region) -> u64 {
        use Region::*;
        if a == b {
            return 30;
        }
        match (a, b) {
            (NorthAmerica, SouthAmerica) | (SouthAmerica, NorthAmerica) => 150,
            (NorthAmerica, Eurozone)
            | (Eurozone, NorthAmerica)
            | (NorthAmerica, EuropeNonEuro)
            | (EuropeNonEuro, NorthAmerica) => 110,
            (Eurozone, EuropeNonEuro) | (EuropeNonEuro, Eurozone) => 40,
            (SouthAmerica, Eurozone)
            | (Eurozone, SouthAmerica)
            | (SouthAmerica, EuropeNonEuro)
            | (EuropeNonEuro, SouthAmerica) => 200,
            (AsiaPacific, NorthAmerica) | (NorthAmerica, AsiaPacific) => 140,
            (AsiaPacific, _) | (_, AsiaPacific) => 250,
            // `a == b` is handled above; unreachable but required for
            // exhaustiveness.
            _ => 30,
        }
    }

    /// Round-trip time between two countries in milliseconds: base per
    /// region pair + stable per-pair jitter in `[0, 30)`.
    #[must_use]
    pub fn rtt_ms(&self, src: Country, dst: Country) -> u64 {
        let base = Self::base_rtt(src.region(), dst.region());
        let jitter = self
            .seed
            .derive_idx((src.index() as u64) << 8 | dst.index() as u64)
            .value()
            % 30;
        base + jitter
    }

    /// One-way time approximation (half the RTT).
    #[must_use]
    pub fn one_way_ms(&self, src: Country, dst: Country) -> u64 {
        self.rtt_ms(src, dst) / 2
    }

    /// The worst-case spread of arrival times when `sources` all fire at
    /// the same instant toward `dst` — the quantity the synchronization
    /// argument bounds.
    #[must_use]
    pub fn fanout_spread_ms(&self, sources: &[Country], dst: Country) -> u64 {
        let times: Vec<u64> = sources.iter().map(|&s| self.one_way_ms(s, dst)).collect();
        match (times.iter().min(), times.iter().max()) {
            (Some(lo), Some(hi)) => hi - lo,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_is_deterministic() {
        let a = LatencyModel::new(Seed::new(7));
        let b = LatencyModel::new(Seed::new(7));
        for &src in &Country::ALL {
            for &dst in &Country::ALL {
                assert_eq!(a.rtt_ms(src, dst), b.rtt_ms(src, dst));
            }
        }
    }

    #[test]
    fn same_region_is_fast() {
        let m = LatencyModel::new(Seed::new(1));
        assert!(m.rtt_ms(Country::Germany, Country::Spain) < 70);
        assert!(m.rtt_ms(Country::UnitedStates, Country::UnitedStates) < 70);
    }

    #[test]
    fn transatlantic_is_slower_than_intra_eu() {
        let m = LatencyModel::new(Seed::new(1));
        assert!(
            m.rtt_ms(Country::UnitedStates, Country::Germany)
                > m.rtt_ms(Country::France, Country::Germany)
        );
    }

    #[test]
    fn fanout_spread_is_below_price_change_timescale() {
        // The paper's synchronization argument: the spread of a 14-way
        // fan-out is hundreds of ms, while prices change on the scale of
        // hours/days.
        let m = LatencyModel::new(Seed::new(1));
        let sources: Vec<Country> = vec![
            Country::Belgium,
            Country::Brazil,
            Country::Finland,
            Country::Germany,
            Country::Spain,
            Country::UnitedKingdom,
            Country::UnitedStates,
        ];
        let spread = m.fanout_spread_ms(&sources, Country::UnitedStates);
        assert!(spread < 500, "spread {spread} ms");
    }

    #[test]
    fn fanout_spread_empty_sources_is_zero() {
        let m = LatencyModel::new(Seed::new(1));
        assert_eq!(m.fanout_spread_ms(&[], Country::UnitedStates), 0);
    }

    #[test]
    fn different_seeds_give_different_jitter_somewhere() {
        let a = LatencyModel::new(Seed::new(1));
        let b = LatencyModel::new(Seed::new(2));
        let differs = Country::ALL.iter().any(|&src| {
            Country::ALL
                .iter()
                .any(|&dst| a.rtt_ms(src, dst) != b.rtt_ms(src, dst))
        });
        assert!(differs);
    }
}
