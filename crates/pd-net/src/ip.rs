//! IPv4 allocation and geo-IP lookup.
//!
//! Retailers in the paper geo-locate the client's IP address and localize
//! the displayed currency and price accordingly ("our different vantage
//! points access always the same retailer site, but can be displayed
//! prices on different currencies because retailers typically geo-locate
//! their IP address"). This module provides the two halves of that
//! mechanism: an allocator that hands out per-country address blocks, and
//! the longest-prefix-match database retailers query.

use crate::geo::Country;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// A CIDR block (`base/prefix_len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cidr {
    base: u32,
    prefix_len: u8,
}

impl Cidr {
    /// Creates a block, normalizing the base to the prefix boundary.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    #[must_use]
    pub fn new(base: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length out of range");
        let raw = u32::from(base);
        Cidr {
            base: raw & Self::mask(prefix_len),
            prefix_len,
        }
    }

    fn mask(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(prefix_len))
        }
    }

    /// True if `addr` falls inside the block.
    #[must_use]
    pub fn contains(self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask(self.prefix_len) == self.base
    }

    /// Prefix length of the block.
    #[must_use]
    pub fn prefix_len(self) -> u8 {
        self.prefix_len
    }

    /// The `i`-th address of the block.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the block size.
    #[must_use]
    pub fn addr(self, i: u32) -> Ipv4Addr {
        let size = self.size();
        assert!(
            u64::from(i) < size,
            "address index {i} outside /{}",
            self.prefix_len
        );
        Ipv4Addr::from(self.base + i)
    }

    /// Number of addresses in the block.
    #[must_use]
    pub fn size(self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv4Addr::from(self.base), self.prefix_len)
    }
}

/// Per-country /16 assignments inside 10.0.0.0/8 (simulation address
/// space): country with index `i` owns `10.i.0.0/16`.
fn country_block(country: Country) -> Cidr {
    let idx = country.index() as u32;
    Cidr::new(Ipv4Addr::new(10, idx as u8, 0, 0), 16)
}

/// Hands out unique addresses per country.
///
/// Vantage points and crowd users draw their client addresses here; the
/// same allocator seeds the [`GeoIpDb`], so lookups are consistent by
/// construction (a property the tests pin down).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IpAllocator {
    next_host: Vec<u32>,
}

impl IpAllocator {
    /// Creates an allocator with no addresses handed out.
    #[must_use]
    pub fn new() -> Self {
        IpAllocator {
            next_host: vec![1; Country::ALL.len()], // .0 reserved
        }
    }

    /// Allocates the next unused address in `country`'s block.
    ///
    /// # Panics
    ///
    /// Panics if a /16 is exhausted (65 534 hosts — far beyond any
    /// simulated population).
    pub fn allocate(&mut self, country: Country) -> Ipv4Addr {
        let idx = country.index();
        let host = self.next_host[idx];
        self.next_host[idx] += 1;
        let block = country_block(country);
        assert!(
            u64::from(host) < block.size() - 1,
            "address block exhausted"
        );
        block.addr(host)
    }

    /// Number of addresses allocated in `country`.
    #[must_use]
    pub fn allocated(&self, country: Country) -> u32 {
        self.next_host[country.index()] - 1
    }
}

/// Longest-prefix-match geo-IP database.
///
/// Pre-populated with every country's block; retailers call
/// [`GeoIpDb::lookup`] on the client address of each request, exactly as
/// commercial geo-IP databases were used by 2013 e-commerce sites.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoIpDb {
    entries: Vec<(Cidr, Country)>,
}

impl GeoIpDb {
    /// Builds the database covering all simulated countries.
    #[must_use]
    pub fn new() -> Self {
        let mut entries: Vec<(Cidr, Country)> = Country::ALL
            .iter()
            .map(|&c| (country_block(c), c))
            .collect();
        // Longest prefix first so `lookup` can take the first match.
        entries.sort_by_key(|e| std::cmp::Reverse(e.0.prefix_len()));
        GeoIpDb { entries }
    }

    /// Adds an override entry (used by tests to model mis-geolocation,
    /// a real-world noise source for geo-IP databases).
    pub fn add_override(&mut self, block: Cidr, country: Country) {
        self.entries.push((block, country));
        self.entries
            .sort_by_key(|e| std::cmp::Reverse(e.0.prefix_len()));
    }

    /// Longest-prefix-match lookup. Returns `None` for addresses outside
    /// every known block (e.g. datacenter ranges the simulation never
    /// allocates).
    #[must_use]
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<Country> {
        self.entries
            .iter()
            .find(|(block, _)| block.contains(addr))
            .map(|(_, c)| *c)
    }
}

impl Default for GeoIpDb {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cidr_membership() {
        let block = Cidr::new(Ipv4Addr::new(10, 3, 7, 9), 16);
        assert!(block.contains(Ipv4Addr::new(10, 3, 0, 1)));
        assert!(block.contains(Ipv4Addr::new(10, 3, 255, 255)));
        assert!(!block.contains(Ipv4Addr::new(10, 4, 0, 1)));
        assert_eq!(block.to_string(), "10.3.0.0/16");
    }

    #[test]
    fn cidr_zero_prefix_contains_everything() {
        let all = Cidr::new(Ipv4Addr::new(1, 2, 3, 4), 0);
        assert!(all.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(all.size(), 1 << 32);
    }

    #[test]
    fn cidr_host_prefix_is_single_address() {
        let one = Cidr::new(Ipv4Addr::new(10, 0, 0, 7), 32);
        assert!(one.contains(Ipv4Addr::new(10, 0, 0, 7)));
        assert!(!one.contains(Ipv4Addr::new(10, 0, 0, 8)));
        assert_eq!(one.size(), 1);
    }

    #[test]
    #[should_panic(expected = "prefix length out of range")]
    fn cidr_rejects_long_prefix() {
        let _ = Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 33);
    }

    #[test]
    fn allocator_assigns_unique_addresses() {
        let mut alloc = IpAllocator::new();
        let a = alloc.allocate(Country::Finland);
        let b = alloc.allocate(Country::Finland);
        let c = alloc.allocate(Country::Brazil);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(alloc.allocated(Country::Finland), 2);
        assert_eq!(alloc.allocated(Country::Brazil), 1);
        assert_eq!(alloc.allocated(Country::Japan), 0);
    }

    #[test]
    fn geoip_locates_allocated_addresses() {
        let mut alloc = IpAllocator::new();
        let db = GeoIpDb::new();
        for &country in &Country::ALL {
            for _ in 0..5 {
                let addr = alloc.allocate(country);
                assert_eq!(db.lookup(addr), Some(country), "addr {addr}");
            }
        }
    }

    #[test]
    fn geoip_unknown_address_is_none() {
        let db = GeoIpDb::new();
        assert_eq!(db.lookup(Ipv4Addr::new(8, 8, 8, 8)), None);
        assert_eq!(db.lookup(Ipv4Addr::new(192, 168, 1, 1)), None);
    }

    #[test]
    fn geoip_override_wins_by_longest_prefix() {
        let mut db = GeoIpDb::new();
        // Carve a /24 of Finland's block and claim it for Sweden —
        // models a stale geo-IP entry.
        let fi_idx = Country::Finland.index() as u8;
        let stale = Cidr::new(Ipv4Addr::new(10, fi_idx, 9, 0), 24);
        db.add_override(stale, Country::Sweden);
        assert_eq!(
            db.lookup(Ipv4Addr::new(10, fi_idx, 9, 77)),
            Some(Country::Sweden)
        );
        assert_eq!(
            db.lookup(Ipv4Addr::new(10, fi_idx, 10, 77)),
            Some(Country::Finland)
        );
    }

    proptest! {
        #[test]
        fn prop_cidr_normalized_base_contains_base(a in 0u32.., p in 0u8..=32) {
            let block = Cidr::new(Ipv4Addr::from(a), p);
            // The normalized base is inside the block.
            prop_assert!(block.contains(block.addr(0)));
        }

        #[test]
        fn prop_allocator_never_collides(counts in proptest::collection::vec(0usize..50, 18)) {
            let mut alloc = IpAllocator::new();
            let mut seen = std::collections::HashSet::new();
            for (i, &n) in counts.iter().enumerate() {
                for _ in 0..n {
                    let addr = alloc.allocate(Country::ALL[i]);
                    prop_assert!(seen.insert(addr), "duplicate address {addr}");
                }
            }
        }
    }
}
