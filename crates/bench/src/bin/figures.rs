//! Regenerates every figure and table of the paper.
//!
//! ```text
//! figures [--scale small|medium|paper] [--seed N]
//!         [--json PATH]        # full report as JSON
//!         [--csv-dir DIR]      # crowd/crawl datasets as CSV + JSONL
//!         [--attribution]      # factor-attribution tables (extension)
//!         [--fig1 --fig5 ...]  # select individual artifacts
//! ```
//!
//! With no figure flags, everything is printed in paper order.

use pd_bench::Scale;
use pd_core::{Experiment, Report};

struct Args {
    scale: Scale,
    seed: u64,
    json: Option<String>,
    csv_dir: Option<String>,
    only: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Paper,
        seed: 1307,
        json: None,
        csv_dir: None,
        only: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = Scale::parse(&v).ok_or(format!("unknown scale {v:?}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--json" => {
                args.json = Some(it.next().ok_or("--json needs a path")?);
            }
            "--csv-dir" => {
                args.csv_dir = Some(it.next().ok_or("--csv-dir needs a directory")?);
            }
            // `--attribution` and the figure flags fall through to the
            // section selector below.
            flag if flag.starts_with("--") => {
                args.only.push(flag.trim_start_matches("--").to_owned());
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(args)
}

fn wants(args: &Args, name: &str) -> bool {
    args.only.is_empty() || args.only.iter().any(|o| o == name)
}

fn print_report(args: &Args, report: &Report) {
    let sections: [(&str, String); 13] = [
        ("t0", report.render_summary()),
        ("fig1", report.render_fig1()),
        ("fig2", report.render_fig2()),
        ("fig3", report.render_fig3()),
        ("fig4", report.render_fig4()),
        ("fig5", report.render_fig5()),
        ("fig6", report.render_fig6()),
        ("fig7", report.render_fig7()),
        ("fig8", report.render_fig8()),
        ("fig9", report.render_fig9()),
        ("fig10", report.render_fig10()),
        ("t1", report.render_tables()),
        ("attribution", report.render_attribution()),
    ];
    for (name, body) in sections {
        // Aliases: --fig6a/--fig6b/--fig8a... select the joint section;
        // --a1 selects the persona line inside t1.
        let selected = wants(args, name)
            || (name == "fig6" && (wants(args, "fig6a") || wants(args, "fig6b")))
            || (name == "fig8"
                && (wants(args, "fig8a") || wants(args, "fig8b") || wants(args, "fig8c")))
            || (name == "t1" && wants(args, "a1"));
        if selected {
            println!("{body}");
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("figures: {e}");
            eprintln!(
                "usage: figures [--scale small|medium|paper] [--seed N] [--json PATH] \
                 [--csv-dir DIR] [--attribution] [--figN ...]"
            );
            std::process::exit(2);
        }
    };
    eprintln!(
        "# running pipeline at scale {:?}, seed {} ...",
        args.scale, args.seed
    );
    let started = std::time::Instant::now();
    let mut exp = Experiment::new(args.scale.config(args.seed));
    let (crowd_raw, crowd_clean, cleaning) = exp.run_crowd_phase();
    let (crawl_store, _stats) = exp.run_crawl_phase();
    let report = exp.analyze(&crowd_raw, &crowd_clean, cleaning, &crawl_store);
    eprintln!("# pipeline finished in {:.1?}", started.elapsed());

    print_report(&args, &report);

    if let Some(path) = &args.json {
        match std::fs::write(path, report.to_json()) {
            Ok(()) => eprintln!("# report JSON written to {path}"),
            Err(e) => {
                eprintln!("figures: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(dir) = &args.csv_dir {
        let dir = std::path::Path::new(dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("figures: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
        let files = [
            ("crowd.csv", pd_sheriff::export::to_csv(&crowd_clean)),
            ("crowd.jsonl", pd_sheriff::export::to_jsonl(&crowd_clean)),
            ("crawl.csv", pd_sheriff::export::to_csv(&crawl_store)),
            ("crawl.jsonl", pd_sheriff::export::to_jsonl(&crawl_store)),
        ];
        for (name, body) in files {
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("figures: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("# dataset written to {}", path.display());
        }
    }
}
