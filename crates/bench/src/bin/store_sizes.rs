//! Measures artifact-store footprint per format into `BENCH_store.json`
//! (the repo's bench-artifact convention): one run, saved as JSON, then
//! migrated in place to the chunked binary format, with per-stage
//! before/after byte counts off the store's own manifest.
//!
//! ```text
//! store_sizes [--scenario NAME] [--profile smoke|small|medium|paper]
//!             [--seed N] [--threads N] [--out PATH] [--artifacts DIR]
//! ```
//!
//! Defaults: the `smoke` scenario (the store CI tracks), seed 1307,
//! 1 thread, writing `BENCH_store.json` in the working directory into a
//! throwaway temp store. `--artifacts DIR` measures into `DIR` instead
//! and keeps it (left in binary format — `pd artifacts migrate` swaps
//! it back). Single-run scenarios only: a sweep has no single store.

use pd_core::store::{ArtifactStore, StoreFormat};
use pd_core::{Experiment, Profile};
use std::path::PathBuf;

struct Args {
    scenario: String,
    profile: Profile,
    seed: u64,
    threads: usize,
    out: String,
    artifacts: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: "smoke".to_owned(),
        profile: Profile::Small,
        seed: 1307,
        threads: 1,
        out: "BENCH_store.json".to_owned(),
        artifacts: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--scenario" => args.scenario = value("--scenario")?,
            "--profile" => {
                let v = value("--profile")?;
                args.profile = Profile::parse(&v).ok_or(format!("unknown profile {v:?}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                args.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--threads" => {
                let v = value("--threads")?;
                args.threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--artifacts" => args.artifacts = Some(value("--artifacts")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// One stage's footprint in both encodings.
struct StageRow {
    stage: String,
    json_bytes: u64,
    binary_bytes: u64,
    chunks: Option<u32>,
}

/// Hand-rolled JSON so the bin does not need a serde derive for what is
/// a flat telemetry record.
#[allow(clippy::cast_precision_loss)]
fn render_json(args: &Args, rows: &[StageRow]) -> String {
    let ratio = |json: u64, bin: u64| {
        if bin == 0 {
            0.0
        } else {
            json as f64 / bin as f64
        }
    };
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", args.scenario));
    out.push_str(&format!("  \"profile\": \"{}\",\n", args.profile.name()));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"threads\": {},\n", args.threads));
    out.push_str("  \"stages\": [\n");
    let lines: Vec<String> = rows
        .iter()
        .map(|r| {
            let chunks = r
                .chunks
                .map_or_else(|| "null".to_owned(), |c| c.to_string());
            format!(
                "    {{\"stage\": \"{}\", \"json_bytes\": {}, \"binary_bytes\": {}, \
                 \"ratio\": {:.2}, \"chunks\": {chunks}}}",
                r.stage,
                r.json_bytes,
                r.binary_bytes,
                ratio(r.json_bytes, r.binary_bytes)
            )
        })
        .collect();
    out.push_str(&lines.join(",\n"));
    let json_total: u64 = rows.iter().map(|r| r.json_bytes).sum();
    let binary_total: u64 = rows.iter().map(|r| r.binary_bytes).sum();
    out.push_str("\n  ],\n");
    out.push_str(&format!("  \"json_total_bytes\": {json_total},\n"));
    out.push_str(&format!("  \"binary_total_bytes\": {binary_total},\n"));
    out.push_str(&format!(
        "  \"ratio\": {:.2}\n",
        ratio(json_total, binary_total)
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let fatal = |e: String| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };
    let (dir, throwaway) = args.artifacts.as_ref().map_or_else(
        || {
            let dir = std::env::temp_dir().join(format!("pd-store-sizes-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            (dir, true)
        },
        |d| (PathBuf::from(d), false),
    );

    let mut engine = Experiment::builder()
        .scenario(&args.scenario)
        .profile(args.profile)
        .seed(args.seed)
        .threads(args.threads)
        .build()
        .unwrap_or_else(|e| fatal(e.to_string()));
    let analysis = engine.analyze();
    engine
        .save_artifacts(&dir)
        .unwrap_or_else(|e| fatal(e.to_string()));
    engine
        .save_analysis(&dir, &analysis)
        .unwrap_or_else(|e| fatal(e.to_string()));

    // The store starts as pretty JSON; migrating in place to the
    // chunked binary format yields the per-stage before/after bytes
    // straight from the manifest rewrite.
    let mut store = ArtifactStore::open(&dir).unwrap_or_else(|e| fatal(e.to_string()));
    let migrated = store
        .migrate(StoreFormat::Binary)
        .unwrap_or_else(|e| fatal(e.to_string()));
    let rows: Vec<StageRow> = migrated
        .into_iter()
        .map(|(stage, json_bytes, binary_bytes)| {
            let chunks = store.entry(&stage).and_then(|e| e.chunks);
            StageRow {
                stage,
                json_bytes,
                binary_bytes,
                chunks,
            }
        })
        .collect();
    if throwaway {
        std::fs::remove_dir_all(&dir).ok();
    }

    let json = render_json(&args, &rows);
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {:?}: {e}", args.out);
        std::process::exit(1);
    });
    println!("{json}");
    eprintln!("[store_sizes] wrote {}", args.out);
}
