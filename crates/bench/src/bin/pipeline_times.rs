//! Emits per-stage wall-times from the engine's `RunObserver` into
//! `BENCH_pipeline.json` (the repo's bench-artifact convention).
//!
//! ```text
//! pipeline_times [--scenario NAME] [--profile smoke|small|medium|paper]
//!                [--seed N] [--threads N] [--out PATH] [--artifacts DIR]
//! ```
//!
//! Defaults: the `paper` scenario at the `small` profile, seed 1307,
//! 4 threads, writing `BENCH_pipeline.json` in the working directory.
//! Sweep scenarios run their arms **concurrently** (the thread budget
//! splits arm-level × intra-arm) and time every arm: each stage row
//! carries an `"arm"` label, so the per-arm cost and the arm-concurrency
//! speedup are both visible in the perf trajectory.
//!
//! `--artifacts DIR` attaches the artifact store as a read-through
//! cache and persists computed stages afterwards, so back-to-back
//! timing runs measure the analysis stage against a warm store (stages
//! loaded from disk emit no wall-time row; the `loaded` list in the
//! JSON names them).

use pd_core::{Experiment, Profile, SweepArmRun, TimingObserver};
use std::sync::Arc;

struct Args {
    scenario: String,
    profile: Profile,
    seed: u64,
    threads: usize,
    out: String,
    artifacts: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: "paper".to_owned(),
        profile: Profile::Small,
        seed: 1307,
        threads: 4,
        out: "BENCH_pipeline.json".to_owned(),
        artifacts: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--scenario" => args.scenario = value("--scenario")?,
            "--profile" => {
                let v = value("--profile")?;
                args.profile = Profile::parse(&v).ok_or(format!("unknown profile {v:?}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                args.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--threads" => {
                let v = value("--threads")?;
                args.threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--artifacts" => args.artifacts = Some(value("--artifacts")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Hand-rolled JSON so the bin does not need a serde derive for what is
/// a flat telemetry record.
fn render_json(args: &Args, observer: &TimingObserver, total_ms: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", args.scenario));
    out.push_str(&format!("  \"profile\": \"{}\",\n", args.profile.name()));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"threads\": {},\n", args.threads));
    out.push_str(&format!("  \"total_ms\": {total_ms:.3},\n"));
    let loaded: Vec<String> = observer
        .loaded()
        .iter()
        .map(|(s, _)| format!("\"{s}\""))
        .collect();
    out.push_str(&format!("  \"loaded\": [{}],\n", loaded.join(", ")));
    out.push_str("  \"stages\": [\n");
    let timings = observer.timings();
    let rows: Vec<String> = timings
        .iter()
        .map(|t| {
            let counters: Vec<String> = t
                .counters
                .iter()
                .map(|(n, v)| format!("\"{n}\": {v}"))
                .collect();
            format!(
                "    {{\"arm\": \"{}\", \"stage\": \"{}\", \"ms\": {:.3}, \"counters\": {{{}}}}}",
                t.arm,
                t.stage,
                t.wall.as_secs_f64() * 1000.0,
                counters.join(", ")
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let observer = Arc::new(TimingObserver::new());
    // Start the clock before the worlds are built so total_ms covers the
    // build stages the observer records.
    let start = std::time::Instant::now();
    let mut builder = Experiment::builder()
        .scenario(&args.scenario)
        .profile(args.profile)
        .seed(args.seed)
        .threads(args.threads)
        .observer(observer.clone());
    if let Some(dir) = &args.artifacts {
        builder = builder.artifacts(dir.clone());
    }
    // Arms run concurrently; timings land in the observer in label
    // order once all arms join.
    let arms = builder.run_sweep().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    for SweepArmRun {
        label,
        engine,
        analysis,
    } in arms
    {
        let report = &analysis.report;
        if let Some(dir) = engine.artifacts_dir().map(std::path::Path::to_path_buf) {
            engine.save_artifacts(&dir).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
        }
        let tag = if label.is_empty() {
            args.scenario.clone()
        } else {
            format!("{}/{label}", args.scenario)
        };
        eprintln!(
            "[pipeline_times] {tag}: {} crowd checks, {} crawled prices",
            report.summary.crowd_requests, report.summary.crawled_prices
        );
    }
    let total_ms = start.elapsed().as_secs_f64() * 1000.0;

    let json = render_json(&args, &observer, total_ms);
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: writing {:?}: {e}", args.out);
        std::process::exit(1);
    });
    println!("{json}");
    eprintln!("[pipeline_times] wrote {}", args.out);
}
