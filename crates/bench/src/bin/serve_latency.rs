//! Measures the daemon's warm-cache and coalescing wins: cold vs warm
//! vs coalesced job latency against one in-process `pd-serve` daemon,
//! emitted as `BENCH_serve.json` (the repo's bench-artifact convention).
//!
//! ```text
//! serve_latency [--jobs N] [--burst N] [--runners N] [--scenario NAME]
//!               [--profile P] [--seed N] [--out PATH] [--artifacts DIR]
//! ```
//!
//! Three phases:
//!
//! 1. **cold** — the first job builds the analysis frames (and, with
//!    `--artifacts`, streams the store),
//! 2. **warm** — every later sequential job hits the daemon's
//!    process-wide warm `FrameCache`; the service-layer claim is that
//!    warm jobs rebuild nothing (`frames_built == 0`),
//! 3. **coalesced burst** — the runner pool is gated, `--burst`
//!    identical submissions land (one leader + N-1 followers), then the
//!    pool resumes: the whole burst settles in ~one warm run's wall
//!    time, which `burst_wall_ms` vs `warm_p50_ms × burst` shows.
//!
//! Defaults: 50 jobs + a burst of 16 of the `smoke` scenario at the
//! `smoke` profile, seed 1307, default runner pool, writing
//! `BENCH_serve.json` in the working directory.
//!
//! Latencies are the daemon's own `run_ms` (queue wait excluded), so
//! the client's 25 ms poll granularity does not pollute the numbers.

use pd_serve::{Client, ServeConfig, Server, SubmitRequest};
use pd_util::stats::quantile;
use std::time::Duration;

struct Args {
    jobs: usize,
    burst: usize,
    runners: usize,
    scenario: String,
    profile: String,
    seed: u64,
    out: String,
    artifacts: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        jobs: 50,
        burst: 16,
        runners: 0,
        scenario: "smoke".to_owned(),
        profile: "smoke".to_owned(),
        seed: 1307,
        out: "BENCH_serve.json".to_owned(),
        artifacts: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--jobs" => {
                let v = value("--jobs")?;
                args.jobs = v.parse().map_err(|_| format!("bad job count {v:?}"))?;
                if args.jobs < 2 {
                    return Err("--jobs must be at least 2 (one cold + warm samples)".to_owned());
                }
            }
            "--burst" => {
                let v = value("--burst")?;
                args.burst = v.parse().map_err(|_| format!("bad burst size {v:?}"))?;
                if args.burst < 2 {
                    return Err("--burst must be at least 2 (a leader + followers)".to_owned());
                }
            }
            "--runners" => {
                let v = value("--runners")?;
                args.runners = v.parse().map_err(|_| format!("bad runner count {v:?}"))?;
            }
            "--scenario" => args.scenario = value("--scenario")?,
            "--profile" => args.profile = value("--profile")?,
            "--seed" => {
                let v = value("--seed")?;
                args.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--artifacts" => args.artifacts = Some(value("--artifacts")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn fail(code: i32, msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(code);
}

/// Everything the three phases measured, for the JSON record.
struct Measurements {
    runners: usize,
    cold_ms: f64,
    cold_frames_built: u64,
    warm: Vec<f64>,
    warm_frames_built: u64,
    warm_frames_reused: u64,
    coalesced: Vec<f64>,
    coalesced_followers: usize,
    burst_wall_ms: f64,
    total_ms: f64,
}

/// Hand-rolled JSON for a flat telemetry record (no serde derive).
fn render_json(args: &Args, m: &Measurements) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", args.scenario));
    out.push_str(&format!("  \"profile\": \"{}\",\n", args.profile));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"jobs\": {},\n", args.jobs));
    out.push_str(&format!("  \"runners\": {},\n", m.runners));
    out.push_str(&format!(
        "  \"artifacts\": {},\n",
        args.artifacts
            .as_ref()
            .map_or("null".to_owned(), |d| format!("{d:?}"))
    ));
    out.push_str(&format!("  \"cold_ms\": {:.3},\n", m.cold_ms));
    out.push_str(&format!(
        "  \"cold_frames_built\": {},\n",
        m.cold_frames_built
    ));
    out.push_str(&format!("  \"warm_jobs\": {},\n", m.warm.len()));
    out.push_str(&format!(
        "  \"warm_p50_ms\": {:.3},\n",
        quantile(&m.warm, 0.5)
    ));
    out.push_str(&format!(
        "  \"warm_p95_ms\": {:.3},\n",
        quantile(&m.warm, 0.95)
    ));
    out.push_str(&format!(
        "  \"warm_frames_built\": {},\n",
        m.warm_frames_built
    ));
    out.push_str(&format!(
        "  \"warm_frames_reused\": {},\n",
        m.warm_frames_reused
    ));
    out.push_str(&format!("  \"burst_jobs\": {},\n", m.coalesced.len()));
    out.push_str(&format!(
        "  \"coalesced_followers\": {},\n",
        m.coalesced_followers
    ));
    out.push_str(&format!(
        "  \"coalesced_p50_ms\": {:.3},\n",
        quantile(&m.coalesced, 0.5)
    ));
    out.push_str(&format!(
        "  \"coalesced_p95_ms\": {:.3},\n",
        quantile(&m.coalesced, 0.95)
    ));
    out.push_str(&format!("  \"burst_wall_ms\": {:.3},\n", m.burst_wall_ms));
    out.push_str(&format!("  \"total_ms\": {:.3}\n", m.total_ms));
    out.push_str("}\n");
    out
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| fail(2, &e));
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(), // ephemeral bench port
        artifacts: args.artifacts.clone().map(Into::into),
        runners: args.runners,
        ..ServeConfig::default()
    };
    let runners = config.effective_runners();
    let server = Server::start(config).unwrap_or_else(|e| fail(1, &e));
    let client = Client::new(&server.addr().to_string());
    client
        .wait_ready(Duration::from_secs(10))
        .unwrap_or_else(|e| fail(1, &e));
    let request = SubmitRequest {
        scenario: Some(args.scenario.clone()),
        seed: Some(args.seed),
        profile: Some(args.profile.clone()),
        ..SubmitRequest::default()
    };

    // Phases 1+2: one cold job, then sequential warm jobs.
    let start = std::time::Instant::now();
    let mut cold_ms = 0.0;
    let mut cold_frames_built = 0;
    let mut warm = Vec::with_capacity(args.jobs - 1);
    let mut warm_frames_built = 0;
    let mut warm_frames_reused = 0;
    for n in 0..args.jobs {
        let id = client.submit(&request).unwrap_or_else(|e| fail(1, &e));
        let snap = client
            .wait_done(&id, Duration::from_secs(600))
            .unwrap_or_else(|e| fail(1, &e));
        let run_ms = snap.run_ms.unwrap_or(0) as f64;
        if n == 0 {
            cold_ms = run_ms;
            cold_frames_built = snap.frames_built;
        } else {
            warm.push(run_ms);
            warm_frames_built += snap.frames_built;
            warm_frames_reused += snap.frames_reused;
        }
    }

    // Phase 3: coalesced burst. Gate the pool so every submission lands
    // while the first is still queued — one leader, burst-1 followers —
    // then resume and time the whole settle.
    server.service().pause();
    let burst_ids: Vec<String> = (0..args.burst)
        .map(|_| client.submit(&request).unwrap_or_else(|e| fail(1, &e)))
        .collect();
    let burst_start = std::time::Instant::now();
    server.service().resume();
    let mut coalesced = Vec::with_capacity(args.burst);
    let mut coalesced_followers = 0;
    for id in &burst_ids {
        let snap = client
            .wait_done(id, Duration::from_secs(600))
            .unwrap_or_else(|e| fail(1, &e));
        coalesced.push(snap.run_ms.unwrap_or(0) as f64);
        if snap.coalesced_into.is_some() {
            coalesced_followers += 1;
        }
    }
    let burst_wall_ms = burst_start.elapsed().as_secs_f64() * 1000.0;
    let total_ms = start.elapsed().as_secs_f64() * 1000.0;

    client.shutdown().unwrap_or_else(|e| fail(1, &e));
    server.join();

    if warm_frames_built > 0 {
        eprintln!(
            "[serve_latency] WARNING: warm jobs built {warm_frames_built} frames — \
             the shared cache is not serving the repeat analyses"
        );
    }
    if coalesced_followers != args.burst - 1 {
        eprintln!(
            "[serve_latency] WARNING: only {coalesced_followers}/{} burst jobs \
             coalesced — the gated burst should be one leader + followers",
            args.burst - 1
        );
    }
    let measurements = Measurements {
        runners,
        cold_ms,
        cold_frames_built,
        warm,
        warm_frames_built,
        warm_frames_reused,
        coalesced,
        coalesced_followers,
        burst_wall_ms,
        total_ms,
    };
    let json = render_json(&args, &measurements);
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| fail(1, &format!("writing {:?}: {e}", args.out)));
    println!("{json}");
    eprintln!("[serve_latency] wrote {}", args.out);
}
