//! Measures the daemon's warm-cache win: cold vs warm job latency over
//! sequential smoke analyses against one in-process `pd-serve` daemon,
//! emitted as `BENCH_serve.json` (the repo's bench-artifact convention).
//!
//! ```text
//! serve_latency [--jobs N] [--scenario NAME] [--profile P] [--seed N]
//!               [--out PATH] [--artifacts DIR]
//! ```
//!
//! Defaults: 50 jobs of the `smoke` scenario at the `smoke` profile,
//! seed 1307, writing `BENCH_serve.json` in the working directory. The
//! first job is the **cold** path (it builds the analysis frames and,
//! with `--artifacts`, streams the store); every later job hits the
//! daemon's process-wide warm `FrameCache`, so the JSON separates
//! `cold_ms` from the warm population's p50/p95 — the service-layer
//! claim is that warm jobs rebuild nothing (`frames_built == 0`).
//!
//! Latencies are the daemon's own `run_ms` (queue wait excluded), so
//! the client's 25 ms poll granularity does not pollute the numbers.

use pd_serve::{Client, ServeConfig, Server, SubmitRequest};
use pd_util::stats::quantile;
use std::time::Duration;

struct Args {
    jobs: usize,
    scenario: String,
    profile: String,
    seed: u64,
    out: String,
    artifacts: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        jobs: 50,
        scenario: "smoke".to_owned(),
        profile: "smoke".to_owned(),
        seed: 1307,
        out: "BENCH_serve.json".to_owned(),
        artifacts: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--jobs" => {
                let v = value("--jobs")?;
                args.jobs = v.parse().map_err(|_| format!("bad job count {v:?}"))?;
                if args.jobs < 2 {
                    return Err("--jobs must be at least 2 (one cold + warm samples)".to_owned());
                }
            }
            "--scenario" => args.scenario = value("--scenario")?,
            "--profile" => args.profile = value("--profile")?,
            "--seed" => {
                let v = value("--seed")?;
                args.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--artifacts" => args.artifacts = Some(value("--artifacts")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn fail(code: i32, msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(code);
}

/// Hand-rolled JSON for a flat telemetry record (no serde derive).
#[allow(clippy::too_many_arguments)]
fn render_json(
    args: &Args,
    cold_ms: f64,
    warm: &[f64],
    cold_frames_built: u64,
    warm_frames_built: u64,
    warm_frames_reused: u64,
    total_ms: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", args.scenario));
    out.push_str(&format!("  \"profile\": \"{}\",\n", args.profile));
    out.push_str(&format!("  \"seed\": {},\n", args.seed));
    out.push_str(&format!("  \"jobs\": {},\n", args.jobs));
    out.push_str(&format!(
        "  \"artifacts\": {},\n",
        args.artifacts
            .as_ref()
            .map_or("null".to_owned(), |d| format!("{d:?}"))
    ));
    out.push_str(&format!("  \"cold_ms\": {cold_ms:.3},\n"));
    out.push_str(&format!("  \"cold_frames_built\": {cold_frames_built},\n"));
    out.push_str(&format!("  \"warm_jobs\": {},\n", warm.len()));
    out.push_str(&format!("  \"warm_p50_ms\": {:.3},\n", quantile(warm, 0.5)));
    out.push_str(&format!(
        "  \"warm_p95_ms\": {:.3},\n",
        quantile(warm, 0.95)
    ));
    out.push_str(&format!("  \"warm_frames_built\": {warm_frames_built},\n"));
    out.push_str(&format!(
        "  \"warm_frames_reused\": {warm_frames_reused},\n"
    ));
    out.push_str(&format!("  \"total_ms\": {total_ms:.3}\n"));
    out.push_str("}\n");
    out
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| fail(2, &e));
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(), // ephemeral bench port
        artifacts: args.artifacts.clone().map(Into::into),
        ..ServeConfig::default()
    })
    .unwrap_or_else(|e| fail(1, &e));
    let client = Client::new(&server.addr().to_string());
    client
        .wait_ready(Duration::from_secs(10))
        .unwrap_or_else(|e| fail(1, &e));
    let request = SubmitRequest {
        scenario: Some(args.scenario.clone()),
        seed: Some(args.seed),
        profile: Some(args.profile.clone()),
        ..SubmitRequest::default()
    };

    let start = std::time::Instant::now();
    let mut cold_ms = 0.0;
    let mut cold_frames_built = 0;
    let mut warm = Vec::with_capacity(args.jobs - 1);
    let mut warm_frames_built = 0;
    let mut warm_frames_reused = 0;
    for n in 0..args.jobs {
        let id = client.submit(&request).unwrap_or_else(|e| fail(1, &e));
        let snap = client
            .wait_done(&id, Duration::from_secs(600))
            .unwrap_or_else(|e| fail(1, &e));
        let run_ms = snap.run_ms.unwrap_or(0) as f64;
        if n == 0 {
            cold_ms = run_ms;
            cold_frames_built = snap.frames_built;
        } else {
            warm.push(run_ms);
            warm_frames_built += snap.frames_built;
            warm_frames_reused += snap.frames_reused;
        }
    }
    let total_ms = start.elapsed().as_secs_f64() * 1000.0;

    client.shutdown().unwrap_or_else(|e| fail(1, &e));
    server.join();

    if warm_frames_built > 0 {
        eprintln!(
            "[serve_latency] WARNING: warm jobs built {warm_frames_built} frames — \
             the shared cache is not serving the repeat analyses"
        );
    }
    let json = render_json(
        &args,
        cold_ms,
        &warm,
        cold_frames_built,
        warm_frames_built,
        warm_frames_reused,
        total_ms,
    );
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| fail(1, &format!("writing {:?}: {e}", args.out)));
    println!("{json}");
    eprintln!("[serve_latency] wrote {}", args.out);
}
