//! Shared helpers for the benchmark harness and the `figures` binary.
//!
//! The heavy lifting lives in `pd-core`; this crate only provides the
//! scale presets the benches and the figure regenerator share, so that
//! `cargo bench` and `cargo run --bin figures` measure the same
//! workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pd_core::{ExperimentConfig, Profile};

/// The workload scale to run at. A thin alias over [`pd_core::Profile`]
/// kept for the benches' historical flag spellings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly: minutes of work shrunk to seconds.
    Small,
    /// Mid-size: large enough for stable figure shapes.
    Medium,
    /// The paper's full scale (1500 crowd checks; 21 × ~100 × 7 crawl).
    Paper,
}

impl Scale {
    /// The equivalent core profile.
    #[must_use]
    pub fn profile(self) -> Profile {
        match self {
            Scale::Small => Profile::Small,
            Scale::Medium => Profile::Medium,
            Scale::Paper => Profile::Paper,
        }
    }

    /// Builds the experiment config for this scale.
    #[must_use]
    pub fn config(self, seed: u64) -> ExperimentConfig {
        self.profile().config(seed)
    }

    /// Parses a CLI flag value.
    #[must_use]
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scales() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn configs_scale_monotonically() {
        let s = Scale::Small.config(1);
        let m = Scale::Medium.config(1);
        let p = Scale::Paper.config(1);
        assert!(s.crowd.checks < m.crowd.checks);
        assert!(m.crowd.checks < p.crowd.checks);
        assert!(m.crawl.products_per_retailer < p.crawl.products_per_retailer);
    }
}
