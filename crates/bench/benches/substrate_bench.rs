//! Substrate micro-benchmarks: the building blocks every check runs
//! through. One synchronized check costs 14 × (render + serialize +
//! parse + resolve + parse-price); these benches keep each stage honest.

use criterion::{criterion_group, criterion_main, Criterion};
use pd_currency::{FxSeries, Locale};
use pd_extract::HighlightExtractor;
use pd_html::{parse, NodeId, Selector};
use pd_net::clock::SimTime;
use pd_net::geo::{Country, Location};
use pd_pricing::quote::QuoteContext;
use pd_pricing::{paper_retailers, Catalog, Category, PricingEngine};
use pd_util::{Money, Seed};
use pd_web::template::{price_selector, render, RenderInput};
use pd_web::{Request, WebWorld};
use std::hint::black_box;

fn sample_page() -> String {
    let input = RenderInput {
        domain: "www.bench.example",
        product_name: "Camera Nova 0042",
        price_text: "1.299,00\u{a0}€".to_owned(),
        recommended: vec![
            ("Lens".to_owned(), "24,99\u{a0}€".to_owned()),
            ("Bag".to_owned(), "89,00\u{a0}€".to_owned()),
            ("Card".to_owned(), "12,50\u{a0}€".to_owned()),
        ],
        third_parties: &[
            pd_pricing::retailer::ThirdParty::GoogleAnalytics,
            pd_pricing::retailer::ThirdParty::Facebook,
        ],
        promo_text: "Save $10 today!".to_owned(),
    };
    render(0, &input).to_html(NodeId::ROOT)
}

fn bench_html(c: &mut Criterion) {
    let html = sample_page();
    let doc = parse(&html);
    let sel = Selector::parse("#product-detail > span.price").unwrap();

    let mut g = c.benchmark_group("html");
    g.bench_function("tokenize_and_parse_product_page", |b| {
        b.iter(|| black_box(parse(&html)).len());
    });
    g.bench_function("serialize_product_page", |b| {
        b.iter(|| black_box(doc.to_html(NodeId::ROOT)).len());
    });
    g.bench_function("selector_query", |b| {
        b.iter(|| black_box(sel.query_all(&doc)).len());
    });
    g.bench_function("highlight_capture_and_resolve", |b| {
        let ex = HighlightExtractor::from_highlight(&doc, &sel).unwrap();
        b.iter(|| {
            black_box(
                ex.extract(&doc, Some(Locale::of_country(Country::Germany)))
                    .unwrap()
                    .price,
            )
        });
    });
    g.finish();
}

fn bench_currency(c: &mut Criterion) {
    let fx = FxSeries::generate(Seed::new(1307), 160);
    let de = Locale::of_country(Country::Germany);
    let us = Locale::of_country(Country::UnitedStates);
    let prices = [
        pd_currency::Price::new(Money::from_minor(123_456), pd_currency::Currency::Eur),
        pd_currency::Price::new(Money::from_minor(130_000), pd_currency::Currency::Usd),
        pd_currency::Price::new(Money::from_minor(99_999), pd_currency::Currency::Gbp),
    ];

    let mut g = c.benchmark_group("currency");
    g.bench_function("fx_series_generation_160d", |b| {
        b.iter(|| black_box(FxSeries::generate(Seed::new(1307), 160)).days());
    });
    g.bench_function("locale_format", |b| {
        b.iter(|| black_box(de.format(Money::from_minor(123_456))));
    });
    g.bench_function("locale_parse_exact", |b| {
        let text = de.format(Money::from_minor(123_456));
        b.iter(|| black_box(de.parse(&text).unwrap()));
    });
    g.bench_function("generic_price_parse", |b| {
        b.iter(|| black_box(pd_extract::parse_price_text("1.234,56\u{a0}€").unwrap()));
    });
    g.bench_function("band_filter_14_prices", |b| {
        let mut p14 = Vec::new();
        for i in 0..14 {
            p14.push(if i % 3 == 0 { prices[0] } else { prices[1] });
        }
        b.iter(|| black_box(pd_currency::band_filter(&fx, &p14, 10)));
    });
    let _ = us;
    g.finish();
}

fn bench_pricing_and_web(c: &mut Criterion) {
    let seed = Seed::new(1307);
    let catalog = Catalog::generate(seed, &[Category::Photography], 200);
    let specs = paper_retailers(seed);
    let digitalrev = specs
        .iter()
        .find(|r| r.domain == "www.digitalrev.com")
        .unwrap();
    let engine = PricingEngine::new(seed, digitalrev.components.clone());
    let ctx = QuoteContext::anonymous(
        Location::new(Country::Finland, "Tampere"),
        SimTime::from_millis(12 * 24 * 3_600_000),
    );

    let mut g = c.benchmark_group("pricing_web");
    g.bench_function("quote", |b| {
        let product = catalog.iter().next().unwrap();
        b.iter(|| black_box(engine.quote(product, &ctx)));
    });
    g.bench_function("catalog_generation_200", |b| {
        b.iter(|| black_box(Catalog::generate(seed, &[Category::Photography], 200)).len());
    });

    let mut world = WebWorld::build(seed, paper_retailers(seed), 160);
    let fi = world.allocate_client(&Location::new(Country::Finland, "Tampere"));
    let slug = world
        .server_by_domain("www.digitalrev.com")
        .unwrap()
        .catalog()
        .iter()
        .next()
        .unwrap()
        .slug
        .clone();
    g.bench_function("end_to_end_fetch", |b| {
        let req = Request::get(
            "www.digitalrev.com",
            &format!("/product/{slug}"),
            fi,
            SimTime::from_millis(12 * 24 * 3_600_000),
        );
        b.iter(|| black_box(world.fetch(&req)).body.len());
    });
    g.bench_function("fetch_parse_extract_roundtrip", |b| {
        let req = Request::get(
            "www.digitalrev.com",
            &format!("/product/{slug}"),
            fi,
            SimTime::from_millis(12 * 24 * 3_600_000),
        );
        let style = world
            .server_by_domain("www.digitalrev.com")
            .unwrap()
            .spec()
            .template_style;
        b.iter(|| {
            let resp = world.fetch(&req);
            let doc = parse(&resp.body);
            let ex = HighlightExtractor::from_highlight(&doc, &price_selector(style)).unwrap();
            black_box(
                ex.extract(&doc, Some(Locale::of_country(Country::Finland)))
                    .unwrap()
                    .price,
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_html, bench_currency, bench_pricing_and_web);
criterion_main!(benches);
