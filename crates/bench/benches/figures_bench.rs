//! One Criterion group per paper artifact: measures the cost of
//! regenerating each figure's data from a prebuilt measurement dataset,
//! plus the two pipeline phases that produce the datasets.
//!
//! Figure shapes are validated by tests; these benches track the cost of
//! the *analyses* so regressions in the hot reduction paths (frame
//! building, per-product grouping, box statistics) are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use pd_bench::Scale;
use pd_core::{Experiment, ExperimentConfig};
use std::hint::black_box;

struct Prebuilt {
    exp: Experiment,
    crowd_raw: pd_sheriff::MeasurementStore,
    crowd_clean: pd_sheriff::MeasurementStore,
    cleaning: pd_sheriff::cleaning::CleaningReport,
    crawl_store: pd_sheriff::MeasurementStore,
    crowd_frame: pd_analysis::CheckFrame,
    crawl_frame: pd_analysis::CheckFrame,
}

fn prebuild() -> Prebuilt {
    let mut exp = Experiment::new(Scale::Small.config(1307));
    let (crowd_raw, crowd_clean, cleaning) = exp.run_crowd_phase();
    let (crawl_store, _) = exp.run_crawl_phase();
    let fx = exp.world().web.fx();
    let crowd_frame = pd_analysis::CheckFrame::build(&crowd_clean, fx);
    let crawl_frame = pd_analysis::CheckFrame::build(&crawl_store, fx);
    Prebuilt {
        exp,
        crowd_raw,
        crowd_clean,
        cleaning,
        crawl_store,
        crowd_frame,
        crawl_frame,
    }
}

fn bench_pipeline_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("t0_dataset_summary_full_small_run", |b| {
        b.iter(|| {
            let report = Experiment::run(ExperimentConfig::small(1307));
            black_box(report.summary.crowd_requests)
        });
    });
    group.bench_function("crowd_phase", |b| {
        b.iter(|| {
            let mut exp = Experiment::new(Scale::Small.config(7));
            let (raw, clean, _) = exp.run_crowd_phase();
            black_box((raw.len(), clean.len()))
        });
    });
    group.bench_function("crawl_phase", |b| {
        let exp = Experiment::new(Scale::Small.config(7));
        b.iter(|| {
            let (store, stats) = exp.run_crawl_phase();
            black_box((store.len(), stats.len()))
        });
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let pre = prebuild();
    let labels = pre.exp.world().vantage_labels();
    let finland = pre
        .exp
        .world()
        .vantage_by_label("Finland - Tampere")
        .unwrap()
        .id;

    let mut group = c.benchmark_group("figures");
    group.bench_function("fig1_crowd_ranking", |b| {
        b.iter(|| black_box(pd_analysis::crowd::fig1_ranking(&pre.crowd_frame, 27)));
    });
    group.bench_function("fig2_crowd_ratios", |b| {
        let domains: Vec<String> = pre
            .crowd_frame
            .domains()
            .iter()
            .map(|d| d.to_string())
            .collect();
        b.iter(|| {
            black_box(pd_analysis::crowd::fig2_ratio_boxes(
                &pre.crowd_frame,
                &domains,
            ))
        });
    });
    group.bench_function("fig3_extent", |b| {
        b.iter(|| black_box(pd_analysis::crawl::fig3_extent(&pre.crawl_frame)));
    });
    group.bench_function("fig4_magnitude", |b| {
        b.iter(|| black_box(pd_analysis::crawl::fig4_magnitude(&pre.crawl_frame)));
    });
    group.bench_function("fig5_price_vs_ratio", |b| {
        b.iter(|| black_box(pd_analysis::crawl::fig5_scatter(&pre.crawl_frame)));
    });
    group.bench_function("fig6_strategy_curves", |b| {
        let locs: Vec<_> = labels.iter().take(3).cloned().collect();
        b.iter(|| {
            black_box(pd_analysis::strategy::fig6_curves(
                &pre.crawl_frame,
                "www.digitalrev.com",
                &locs,
            ))
        });
    });
    group.bench_function("fig7_location", |b| {
        b.iter(|| {
            black_box(pd_analysis::location::fig7_location_boxes(
                &pre.crawl_frame,
                &labels,
            ))
        });
    });
    group.bench_function("fig8_pairwise", |b| {
        let six: Vec<_> = labels.iter().take(6).cloned().collect();
        b.iter(|| {
            black_box(pd_analysis::location::fig8_pairwise(
                &pre.crawl_frame,
                "www.amazon.com",
                &six,
            ))
        });
    });
    group.bench_function("fig9_finland", |b| {
        b.iter(|| {
            black_box(pd_analysis::location::fig9_finland(
                &pre.crawl_frame,
                finland,
            ))
        });
    });
    group.finish();

    let mut heavy = c.benchmark_group("figure_harnesses");
    heavy.sample_size(10);
    heavy.bench_function("fig10_login", |b| {
        let world = pre.exp.world();
        let boston = world.vantage_by_label("USA - Boston").unwrap().clone();
        b.iter(|| {
            let exp = pd_sheriff::personas::login_experiment(
                &world.web,
                pd_util::Seed::new(1307),
                "www.amazon.com",
                &boston.location,
                boston.addr,
                pd_net::clock::SimTime::from_millis(50 * 24 * 3_600_000),
                15,
            );
            black_box(pd_analysis::login::fig10(&exp))
        });
    });
    heavy.bench_function("t1_thirdparty", |b| {
        let world = pre.exp.world();
        let boston = world.vantage_by_label("USA - Boston").unwrap().clone();
        let targets = world.paper_crawl_targets();
        b.iter(|| {
            black_box(pd_analysis::thirdparty::scan_third_parties(
                &world.web,
                &targets,
                boston.addr,
                pd_net::clock::SimTime::from_millis(50 * 24 * 3_600_000),
            ))
        });
    });
    heavy.bench_function("cleaning", |b| {
        let fx = pre.exp.world().web.fx();
        b.iter(|| {
            let (kept, report) = pd_sheriff::cleaning::clean(&pre.crowd_raw, fx, |m| m.user_price);
            black_box((kept.len(), report))
        });
    });
    heavy.finish();

    // Keep the prebuilt artifacts alive and visibly used.
    black_box((pre.crowd_clean.len(), pre.cleaning, pre.crawl_store.len()));
}

criterion_group!(benches, bench_pipeline_phases, bench_figures);
criterion_main!(benches);
