//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation measures the runtime of the two alternatives *and*
//! prints the quality metric that justifies the paper's choice (visible
//! in the bench log):
//!
//! 1. exchange-band filter vs naive mid-rate comparison — false-positive
//!    rate on non-discriminating retailers;
//! 2. synchronized vs desynchronized fan-out — spurious variations under
//!    temporal price drift;
//! 3. highlight extraction vs naive first-symbol extraction — accuracy
//!    over the template corpus;
//! 4. measurement repeats vs A/B noise — false "persistent variation"
//!    flags as the repeat count grows;
//! 5. crowd size — discriminating retailers discovered per crowd budget.

use criterion::{criterion_group, criterion_main, Criterion};
use pd_bench::Scale;
use pd_core::scenario::ScenarioRun;
use pd_core::{Experiment, ExperimentConfig, Profile, ScenarioRegistry, World};
use pd_currency::{band_filter, Locale};
use pd_extract::{extract_naive, HighlightExtractor};
use pd_net::clock::SimTime;
use pd_net::geo::Country;
use pd_sheriff::CrowdConfig;
use pd_web::template::{price_selector, render, RenderInput};
use std::hint::black_box;

/// Ablation 1: the currency filter. Naive detection converts at the mid
/// rate and flags any ratio > 1.001; the band filter requires the gap to
/// exceed the daily extreme-rate band.
fn ablation_currency_filter(c: &mut Criterion) {
    // Crawl non-discriminating filler retailers: every flag is false.
    let mut config = Scale::Small.config(1307);
    config.filler_domains = 40;
    let exp = Experiment::new(config);
    // Uniform AND not a tax-inliner: the tax confound produces *real*
    // (but non-discrimination) variation and is handled by the pipeline's
    // tax check, not the currency filter under ablation here.
    let uniform_domains: Vec<String> = exp
        .world()
        .web
        .servers()
        .iter()
        .filter(|s| !s.spec().is_discriminating() && !s.spec().inlines_tax)
        .take(6)
        .map(|s| s.spec().domain.clone())
        .collect();
    let crawler = pd_crawler::Crawler::new(
        pd_util::Seed::new(1),
        pd_crawler::CrawlConfig {
            products_per_retailer: 10,
            days: 2,
            start_day: 45,
            ..pd_crawler::CrawlConfig::default()
        },
    );
    let (store, _) = crawler.crawl(&exp.world().web, &exp.world().sheriff, &uniform_domains);
    let fx = exp.world().web.fx();

    let naive_fp = store
        .records()
        .iter()
        .filter(|m| {
            let day = m.day().min(fx.days() - 1);
            band_filter(fx, &m.prices(), day)
                .map(|v| v.nominal_ratio > 1.001)
                .unwrap_or(false)
        })
        .count();
    let band_fp = store
        .records()
        .iter()
        .filter(|m| {
            let day = m.day().min(fx.days() - 1);
            band_filter(fx, &m.prices(), day)
                .map(|v| v.genuine)
                .unwrap_or(false)
        })
        .count();
    println!(
        "[ablation:currency-filter] {} uniform-retailer checks: naive mid-rate flags {} false positives, band filter flags {}",
        store.len(),
        naive_fp,
        band_fp
    );
    assert_eq!(band_fp, 0, "band filter must be exact on uniform retailers");

    let mut g = c.benchmark_group("ablation_currency_filter");
    g.bench_function("band_filter_pass", |b| {
        b.iter(|| {
            let flags: usize = store
                .records()
                .iter()
                .filter(|m| {
                    band_filter(fx, &m.prices(), m.day().min(fx.days() - 1))
                        .map(|v| v.genuine)
                        .unwrap_or(false)
                })
                .count();
            black_box(flags)
        });
    });
    g.finish();
}

/// Ablation 2: synchronization, driven by the named `desync-ablation`
/// scenario. The scenario's two arms deliver worlds whose fan-out
/// engines are configured sync/desync at construction — nothing mutates
/// pipeline internals. A drifting retailer (booking-like) is then
/// checked under both; the spread in observed variation is the noise
/// synchronization removes.
fn ablation_synchronization(c: &mut Criterion) {
    let registry = ScenarioRegistry::builtin();
    let scenario = registry.get("desync-ablation").expect("registered");
    assert!(matches!(
        scenario.plan(&pd_core::ScenarioParams {
            seed: 1307,
            profile: Profile::Small,
        }),
        ScenarioRun::Sweep(_)
    ));
    // Build each arm's engine; the plan carries the skew into the
    // sheriff (25-minute per-probe skew lands probes 8..=13 — the US
    // fleet — at 23:20 ... 01:25 around the check's midnight: some
    // before the daily reprice, some after, exactly the failure mode
    // the paper's synchronization prevents).
    let engines: Vec<(String, pd_core::Engine)> = Experiment::builder()
        .scenario("desync-ablation")
        .profile(Profile::Small)
        .seed(1307)
        .build_variants()
        .expect("registered sweep scenario");

    // Isolate the temporal effect: compare only the six US probes
    // (booking.com prices the whole US identically, so any intra-US
    // variation is a pure artifact of the fetch-time spread).
    let us_range = 8usize..=13;
    let run = |world: &World| -> usize {
        let fx = world.web.fx();
        let server = world.web.server_by_domain("www.booking.com").unwrap();
        let slugs: Vec<String> = server
            .catalog()
            .iter()
            .take(20)
            .map(|p| p.slug.clone())
            .collect();
        let style = server.spec().template_style;
        let time = SimTime::from_millis(30 * 24 * 3_600_000 + 20 * 3_600_000); // 20:00
        let mut spurious = 0;
        for slug in &slugs {
            let path = format!("/product/{slug}");
            let req = pd_web::Request::get(
                "www.booking.com",
                &path,
                world.sheriff.vantage_points()[0].addr,
                time,
            );
            let doc = pd_html::parse(&world.web.fetch(&req).body);
            let Some(ex) = HighlightExtractor::from_highlight(&doc, &price_selector(style)) else {
                continue;
            };
            let obs = world
                .sheriff
                .check(&world.web, "www.booking.com", &path, &ex, time, &[]);
            let prices: Vec<_> = obs
                .iter()
                .enumerate()
                .filter(|(i, _)| us_range.contains(i))
                .filter_map(|(_, o)| o.price)
                .collect();
            if let Some(v) = band_filter(fx, &prices, time.day_index() as usize) {
                if v.genuine {
                    spurious += 1;
                }
            }
        }
        spurious
    };

    let sync_flags = run(engines[0].1.world());
    let desync_flags = run(engines[1].1.world());
    println!(
        "[ablation:synchronization] scenario desync-ablation ({} vs {}): 20 products, six \
         same-price US probes on a drifting retailer: sync flags {sync_flags} (must be 0), \
         desync flags {desync_flags} (spread straddles the daily reprice boundary)",
        engines[0].0, engines[1].0
    );
    assert_eq!(sync_flags, 0, "synchronized intra-US checks must be clean");
    assert!(
        desync_flags > 0,
        "desynchronization must manufacture spurious variation"
    );

    let mut g = c.benchmark_group("ablation_synchronization");
    g.sample_size(10);
    g.bench_function("synchronized_sweep", |b| {
        b.iter(|| black_box(run(engines[0].1.world())));
    });
    g.bench_function("desynchronized_sweep", |b| {
        b.iter(|| black_box(run(engines[1].1.world())));
    });
    g.finish();
}

/// Ablation 3: extraction strategy accuracy over the template corpus.
fn ablation_extraction(c: &mut Criterion) {
    let locales = [Country::UnitedStates, Country::Germany, Country::Poland];
    let truth = pd_util::Money::from_minor(129_900);
    let mut naive_correct = 0;
    let mut highlight_correct = 0;
    let mut total = 0;
    let mut pages = Vec::new();
    for style in 0..5u8 {
        for country in locales {
            let loc = Locale::of_country(country);
            let input = RenderInput {
                domain: "shop.example",
                product_name: "Widget",
                price_text: loc.format(truth),
                recommended: vec![(
                    "Other".to_owned(),
                    loc.format(pd_util::Money::from_minor(999)),
                )],
                third_parties: &[],
                promo_text: "Save $10 today!".to_owned(),
            };
            let doc = render(style, &input);
            total += 1;
            if let Some(p) = extract_naive(&doc) {
                if p.amount == truth {
                    naive_correct += 1;
                }
            }
            let ex = HighlightExtractor::from_highlight(&doc, &price_selector(style)).unwrap();
            if let Ok(e) = ex.extract(&doc, Some(loc)) {
                if e.price.amount == truth {
                    highlight_correct += 1;
                }
            }
            pages.push((doc, style, country));
        }
    }
    println!(
        "[ablation:extraction] template corpus ({total} pages): highlight {highlight_correct}/{total} correct, naive first-symbol {naive_correct}/{total}"
    );
    assert_eq!(
        highlight_correct, total,
        "highlight extraction must be exact"
    );
    assert!(
        naive_correct < total,
        "the naive strawman must fail somewhere, else the ablation is vacuous"
    );

    let mut g = c.benchmark_group("ablation_extraction");
    g.bench_function("highlight_corpus", |b| {
        b.iter(|| {
            let mut ok = 0;
            for (doc, style, country) in &pages {
                let ex = HighlightExtractor::from_highlight(doc, &price_selector(*style)).unwrap();
                if ex.extract(doc, Some(Locale::of_country(*country))).is_ok() {
                    ok += 1;
                }
            }
            black_box(ok)
        });
    });
    g.bench_function("naive_corpus", |b| {
        b.iter(|| {
            let ok = pages
                .iter()
                .filter(|(doc, _, _)| extract_naive(doc).is_some())
                .count();
            black_box(ok)
        });
    });
    g.finish();
}

/// Ablation 4: repeats vs A/B noise. An A/B test is *visible* within a
/// single fan-out (each vantage is its own session, so buckets differ),
/// but it masquerades as **location-keyed** discrimination only if the
/// same vantage point keeps winning. The paper's repeated measurements
/// break exactly that: a product is flagged "location-consistent" when
/// the same vantage is the dearest in every repeat — for A/B noise that
/// probability collapses with the repeat count, while a genuinely
/// location-keyed retailer stays at 100 %.
fn ablation_repeats(c: &mut Criterion) {
    let config = Scale::Small.config(1307);
    let exp = Experiment::new(config);
    let world = exp.world();
    let fx = world.web.fx();

    let consistent_with_repeats = |domain: &str, k: usize| -> usize {
        let server = world.web.server_by_domain(domain).unwrap();
        let style = server.spec().template_style;
        let slugs: Vec<String> = server
            .catalog()
            .iter()
            .take(30)
            .map(|p| p.slug.clone())
            .collect();
        slugs
            .iter()
            .filter(|slug| {
                let path = format!("/product/{slug}");
                let mut dearest: Option<usize> = None;
                for rep in 0..k {
                    let time =
                        SimTime::from_millis((30 + rep as u64) * 24 * 3_600_000 + 12 * 3_600_000);
                    let req = pd_web::Request::get(
                        domain,
                        &path,
                        world.sheriff.vantage_points()[0].addr,
                        time,
                    );
                    let doc = pd_html::parse(&world.web.fetch(&req).body);
                    let Some(ex) = HighlightExtractor::from_highlight(&doc, &price_selector(style))
                    else {
                        return false;
                    };
                    let obs = world
                        .sheriff
                        .check(&world.web, domain, &path, &ex, time, &[]);
                    let prices: Vec<_> = obs.iter().filter_map(|o| o.price).collect();
                    let genuine = band_filter(fx, &prices, time.day_index() as usize)
                        .map(|v| v.genuine)
                        .unwrap_or(false);
                    if !genuine {
                        return false;
                    }
                    // Which vantage saw the highest USD price?
                    let day = time.day_index() as usize;
                    let argmax = obs
                        .iter()
                        .enumerate()
                        .filter_map(|(i, o)| o.price.map(|p| (i, fx.to_usd_mid(p, day))))
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                        .map(|(i, _)| i);
                    match (dearest, argmax) {
                        (None, Some(i)) => dearest = Some(i),
                        (Some(prev), Some(i)) if prev == i => {}
                        _ => return false, // inconsistent winner
                    }
                }
                true
            })
            .count()
    };

    let ab_k1 = consistent_with_repeats("www.sears.com", 1);
    let ab_k3 = consistent_with_repeats("www.sears.com", 3);
    let loc_k3 = consistent_with_repeats("www.misssixty.com", 3);
    println!(
        "[ablation:repeats] location-consistent flags over 30 products: A/B retailer k=1: {ab_k1}, \
         k=3: {ab_k3}; location-keyed retailer k=3: {loc_k3} (A/B collapses, real discrimination persists)"
    );
    assert!(
        ab_k3 < ab_k1,
        "repeats must collapse A/B location-consistency ({ab_k1} -> {ab_k3})"
    );
    assert!(
        loc_k3 >= 25,
        "genuine location pricing must survive repeats: {loc_k3}/30"
    );

    let flagged_with_repeats = |k: usize| consistent_with_repeats("www.sears.com", k);

    let mut g = c.benchmark_group("ablation_repeats");
    g.sample_size(10);
    g.bench_function("k1", |b| b.iter(|| black_box(flagged_with_repeats(1))));
    g.bench_function("k3", |b| b.iter(|| black_box(flagged_with_repeats(3))));
    g.finish();
}

/// Ablation 5: the value of the crowd — discriminating domains
/// discovered as the check budget grows. Uses the builder + the cached
/// crowd artifact (the crawl/analysis stages never run).
fn ablation_crowd_size(c: &mut Criterion) {
    let discovered = |checks: usize| -> usize {
        let mut config = ExperimentConfig::small(1307);
        config.crowd = CrowdConfig {
            users: 60,
            checks,
            window_days: 40,
            ..CrowdConfig::default()
        };
        let mut engine = Experiment::builder()
            .config(config)
            .build()
            .expect("paper scenario with explicit config");
        let cleaned = engine.crowd().cleaned.clone();
        pd_core::stage::targets_from_crowd(engine.world(), &cleaned, 1).len()
    };
    let d50 = discovered(50);
    let d150 = discovered(150);
    let d400 = discovered(400);
    println!(
        "[ablation:crowd-size] discriminating domains discovered: 50 checks → {d50}, 150 → {d150}, 400 → {d400} (should grow)"
    );
    assert!(d400 >= d50, "a bigger crowd must not discover less");

    let mut g = c.benchmark_group("ablation_crowd_size");
    g.sample_size(10);
    g.bench_function("campaign_150_checks", |b| {
        b.iter(|| black_box(discovered(150)));
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_currency_filter,
    ablation_synchronization,
    ablation_extraction,
    ablation_repeats,
    ablation_crowd_size
);
criterion_main!(benches);
