//! The TCP daemon: blocking listener, fixed worker pool, HTTP routing.
//!
//! [`Server::start`] binds the configured address, spawns `threads`
//! accept-loop workers sharing one `TcpListener` (the kernel load-
//! balances `accept`), and a **runner pool**
//! ([`ServeConfig::effective_runners`] threads) executing queued jobs
//! concurrently off one shared receiver. Connections are persistent
//! (HTTP/1.1 keep-alive): a worker reads [`Request`]s with the
//! byte-level codec from `pd_web::http` in a per-connection loop,
//! routing and answering each until the client sends `connection:
//! close`, goes idle past the keep-alive window, or the daemon stops —
//! a full job queue therefore *rejects* (503 + `Retry-After`) instead
//! of ever blocking the accept loop.
//!
//! Graceful shutdown (`POST /shutdown`, or [`Server::shutdown`]): the
//! service stops admitting jobs, a drain sentinel is queued behind every
//! in-flight job, each runner forwards the sentinel and exits once the
//! queue is dry, and [`Server::join`] then stops the workers. In-flight
//! work is never dropped.

use crate::service::{parse_job_id, PdService, QueueMsg, ServeConfig, SubmitError, SubmitRequest};
use pd_web::http::{HttpError, Request, Response, Status};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Socket timeout for a connection's first request: a stalled peer
/// frees its worker.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// Idle window for *subsequent* requests on a keep-alive connection.
/// Short on purpose: an idle persistent connection must release its
/// worker quickly so a bounded pool survives many polling clients, and
/// [`Server::join`] is never stuck behind a parked socket. Clients
/// reconnect transparently ([`crate::Client`] retries on a dead cached
/// connection).
const KEEPALIVE_IDLE: Duration = Duration::from_secs(1);

/// Requests served on one connection before the server answers
/// `connection: close` and returns to the accept loop. Without a cap, a
/// busy polling client holds its worker indefinitely and a fixed pool
/// of N workers starves the (N+1)-th concurrent client; with it, every
/// worker cycles back to `accept` regularly, so fairness is guaranteed
/// no matter how many persistent clients hammer the daemon. Clients
/// reconnect transparently.
const KEEPALIVE_MAX_REQUESTS: usize = 32;

/// A running daemon. Keep it to [`Server::join`]; dropping it without
/// joining leaks the worker threads for the process lifetime.
pub struct Server {
    service: Arc<PdService>,
    addr: SocketAddr,
    stop_workers: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    runners: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .field("runners", &self.runners.len())
            .finish()
    }
}

impl Server {
    /// Binds the address and spawns the worker pool and the runner pool.
    ///
    /// # Errors
    ///
    /// A human-readable message when the listen address does not parse
    /// or cannot be bound.
    pub fn start(config: ServeConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("resolving local addr: {e}"))?;
        let threads = config.threads.max(1);
        let runner_count = config.effective_runners();
        let (queue_tx, queue_rx) = mpsc::sync_channel(config.queue_capacity.max(1));
        let service = Arc::new(PdService::new(config, queue_tx));

        let queue_rx: Arc<Mutex<Receiver<QueueMsg>>> = Arc::new(Mutex::new(queue_rx));
        let mut runners = Vec::with_capacity(runner_count);
        for i in 0..runner_count {
            let service = Arc::clone(&service);
            let queue_rx = Arc::clone(&queue_rx);
            let handle = std::thread::Builder::new()
                .name(format!("pd-serve-runner-{i}"))
                .spawn(move || service.runner_loop(&queue_rx))
                .map_err(|e| format!("spawning runner {i}: {e}"))?;
            runners.push(handle);
        }

        let listener = Arc::new(listener);
        let stop_workers = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let service = Arc::clone(&service);
            let listener = Arc::clone(&listener);
            let stop = Arc::clone(&stop_workers);
            let handle = std::thread::Builder::new()
                .name(format!("pd-serve-worker-{i}"))
                .spawn(move || worker_loop(&service, &listener, &stop))
                .map_err(|e| format!("spawning worker {i}: {e}"))?;
            workers.push(handle);
        }

        Ok(Server {
            service,
            addr,
            stop_workers,
            workers,
            runners,
        })
    }

    /// The bound address (useful with a `:0` ephemeral-port config).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (tests read metrics and snapshots after
    /// the daemon exits).
    #[must_use]
    pub fn service(&self) -> Arc<PdService> {
        Arc::clone(&self.service)
    }

    /// Programmatic graceful shutdown — identical to `POST /shutdown`.
    pub fn shutdown(&self) {
        self.service.begin_shutdown();
    }

    /// Blocks until the daemon has fully drained and exited: every
    /// runner finishes (the drain sentinel chains through the pool),
    /// then the worker pool is woken and joined. Returns only after a
    /// shutdown was requested via `POST /shutdown` or
    /// [`Server::shutdown`].
    pub fn join(mut self) {
        for runner in self.runners.drain(..) {
            let _ = runner.join();
        }
        self.stop_workers.store(true, Ordering::SeqCst);
        // A worker blocked in `accept` needs a connect nudge to notice
        // the flag; one mid-keep-alive notices at its next request or
        // idle timeout. Keep nudging until each has actually exited —
        // a single nudge per worker can be swallowed by a worker that
        // was about to exit anyway.
        for worker in self.workers.drain(..) {
            while !worker.is_finished() {
                let _ = TcpStream::connect(self.addr);
                std::thread::sleep(Duration::from_millis(5));
            }
            let _ = worker.join();
        }
    }
}

fn worker_loop(service: &Arc<PdService>, listener: &Arc<TcpListener>, stop: &Arc<AtomicBool>) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, peer)) = listener.accept() else {
            continue;
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if handle_connection(service, stream, peer, stop) {
            service.begin_shutdown();
        }
    }
}

/// Serves one persistent connection: reads requests in a loop, routing
/// and answering each, until the client asks to close (`connection:
/// close`, or an HTTP/1.0 request without keep-alive), goes idle past
/// [`KEEPALIVE_IDLE`], hits the [`KEEPALIVE_MAX_REQUESTS`] fairness
/// cap, sends something unparseable, or the daemon is stopping. Every
/// response carries an explicit `connection` header announcing the
/// decision. Returns whether a graceful shutdown was requested — the
/// drain itself happens in the caller *after* the response is on the
/// wire.
fn handle_connection(
    service: &Arc<PdService>,
    stream: TcpStream,
    peer: SocketAddr,
    stop: &AtomicBool,
) -> bool {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return false;
    };
    // Timeouts are per-socket, shared by the clones: this handle
    // shortens the read window once the connection turns persistent.
    let Ok(control) = stream.try_clone() else {
        return false;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut served = 0usize;
    loop {
        let mut request = match Request::read_from(&mut reader) {
            Ok(request) => request,
            Err(HttpError::Eof) => return false,
            // An I/O failure mid-read on a persistent connection is the
            // idle timeout (or a vanished peer) — close without a 400:
            // there is no request to answer.
            Err(HttpError::Io(_)) if served > 0 => return false,
            Err(e) => {
                // A malformed request poisons only *this* connection's
                // byte stream: answer 400, close, and let the client
                // start clean on a fresh connection.
                write_response(
                    &mut writer,
                    &error_json(Status::BadRequest, &format!("bad request: {e}")),
                    false,
                );
                return false;
            }
        };
        if let SocketAddr::V4(v4) = peer {
            request.client_addr = *v4.ip();
        }
        let (response, shutdown) = route(service, &request);
        served += 1;
        let keep = request.keep_alive()
            && response.keep_alive()
            && served < KEEPALIVE_MAX_REQUESTS
            && !shutdown
            && !stop.load(Ordering::SeqCst);
        write_response(&mut writer, &response, keep);
        if shutdown {
            return true;
        }
        if !keep {
            return false;
        }
        if served == 1 {
            let _ = control.set_read_timeout(Some(KEEPALIVE_IDLE));
        }
    }
}

/// Writes `response` with an explicit `connection: keep-alive|close`
/// header reflecting the server's decision.
fn write_response<W: Write>(writer: &mut W, response: &Response, keep_alive: bool) {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let _ = response
        .clone()
        .with_header("connection", connection)
        .write_to(writer);
    let _ = writer.flush();
}

/// A `{"error": ...}` body with the given status.
fn error_json(status: Status, message: &str) -> Response {
    let encoded = serde_json::to_string(&message.to_owned()).unwrap_or_else(|_| "\"?\"".to_owned());
    Response::json(format!("{{\"error\": {encoded}}}\n")).with_status(status)
}

fn text(body: &str) -> Response {
    Response::ok(body.to_owned()).with_header("content-type", "text/plain; charset=utf-8")
}

/// Dispatches one request. Returns the response and whether graceful
/// shutdown should begin once it has been written.
fn route(service: &Arc<PdService>, request: &Request) -> (Response, bool) {
    let path = request.path_only();
    let response = match (request.method.as_str(), path) {
        ("GET", "/healthz") => text("ok\n"),
        ("GET", "/metrics") => text(&service.metrics_text()),
        ("GET", "/runs") => match serde_json::to_string(&service.list()) {
            Ok(body) => Response::json(body),
            Err(e) => error_json(Status::BadRequest, &format!("encoding runs: {e}")),
        },
        ("POST", "/runs") => return (submit(service, request), false),
        ("GET", rest) if rest.starts_with("/runs/") => job_endpoint(service, &rest[6..]),
        ("POST", "/shutdown") if service.config().enable_shutdown => {
            return (
                Response::json("{\"status\": \"draining\"}\n".to_owned()),
                true,
            );
        }
        _ => error_json(
            Status::NotFound,
            &format!("no route for {} {path}", request.method),
        ),
    };
    (response, false)
}

fn submit(service: &Arc<PdService>, request: &Request) -> Response {
    let submission: SubmitRequest = match serde_json::from_str(&request.body) {
        Ok(submission) => submission,
        Err(e) => return error_json(Status::BadRequest, &format!("bad submit body: {e}")),
    };
    match service.submit(&submission) {
        Ok(id) => {
            let reply = crate::service::SubmitReply {
                id,
                status: "queued".to_owned(),
            };
            match serde_json::to_string(&reply) {
                Ok(body) => Response::json(body),
                Err(e) => error_json(Status::BadRequest, &format!("encoding reply: {e}")),
            }
        }
        Err(SubmitError::QueueFull) => error_json(Status::ServiceUnavailable, "job queue is full")
            .with_header("retry-after", "1"),
        Err(SubmitError::Draining) => {
            error_json(Status::ServiceUnavailable, "service is shutting down")
                .with_header("retry-after", "5")
        }
        Err(SubmitError::Invalid(msg)) => error_json(Status::BadRequest, &msg),
    }
}

/// `GET /runs/:id` and `GET /runs/:id/report`.
fn job_endpoint(service: &Arc<PdService>, rest: &str) -> Response {
    if let Some(raw_id) = rest.strip_suffix("/report") {
        let Some(id) = parse_job_id(raw_id) else {
            return error_json(Status::NotFound, &format!("bad job id {raw_id:?}"));
        };
        return match service.report_body(id) {
            None => error_json(Status::NotFound, &format!("no such job j-{id}")),
            Some(None) => error_json(
                Status::NotFound,
                &format!("job j-{id} has no report (not finished, or failed)"),
            ),
            // Byte-identical to `pd run --json`: the stored string goes
            // out verbatim, no re-encoding.
            Some(Some(body)) => Response::json(body),
        };
    }
    let Some(id) = parse_job_id(rest) else {
        return error_json(Status::NotFound, &format!("bad job id {rest:?}"));
    };
    match service.snapshot(id) {
        None => error_json(Status::NotFound, &format!("no such job j-{id}")),
        Some(snapshot) => match serde_json::to_string(&snapshot) {
            Ok(body) => Response::json(body),
            Err(e) => error_json(Status::BadRequest, &format!("encoding snapshot: {e}")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::service::ServeConfig;

    fn test_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: 2,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn healthz_metrics_and_routing() {
        let server = Server::start(test_config()).expect("start");
        let client = Client::new(&server.addr().to_string());
        let health = client.get("/healthz").expect("healthz");
        assert_eq!(health.status, Status::Ok);
        assert_eq!(health.body, "ok\n");
        let metrics = client.get("/metrics").expect("metrics");
        assert!(metrics.body.contains("jobs_done 0\n"), "{}", metrics.body);
        let missing = client.get("/nope").expect("404 still answers");
        assert_eq!(missing.status, Status::NotFound);
        let bad_id = client.get("/runs/zzz").expect("bad id answers");
        assert_eq!(bad_id.status, Status::NotFound);
        let no_job = client.get("/runs/j-9").expect("no such job answers");
        assert_eq!(no_job.status, Status::NotFound);
        client.shutdown().expect("shutdown");
        server.join();
    }

    #[test]
    fn malformed_http_gets_400() {
        use std::io::{Read, Write};
        let server = Server::start(test_config()).expect("start");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(b"BOGUS\r\n\r\n").expect("write");
        let mut reply = String::new();
        let _ = stream.read_to_string(&mut reply);
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        drop(stream);
        server.shutdown();
        server.join();
    }

    #[test]
    fn bad_submit_bodies_get_400() {
        let server = Server::start(test_config()).expect("start");
        let client = Client::new(&server.addr().to_string());
        let resp = client.post_json("/runs", "not json").expect("answers");
        assert_eq!(resp.status, Status::BadRequest);
        let resp = client.post_json("/runs", "{}").expect("answers");
        assert_eq!(resp.status, Status::BadRequest);
        assert!(resp.body.contains("missing"), "{}", resp.body);
        let resp = client
            .post_json("/runs", "{\"scenario\": \"smokee\"}")
            .expect("answers");
        assert_eq!(resp.status, Status::BadRequest);
        assert!(resp.body.contains("did you mean"), "{}", resp.body);
        server.shutdown();
        server.join();
    }
}
