//! A small blocking HTTP client for the daemon's API.
//!
//! Built on the same `pd_web::http` wire codec the server parses with,
//! so client and server cannot drift. Connections are **persistent**:
//! after a response arrives with `connection: keep-alive` the socket is
//! cached and the next request reuses it, so a polling loop (`pd poll`,
//! `wait_done`) pays the TCP handshake once. A cached connection that
//! has gone stale (server idle-closed it) is detected on the next
//! request and replaced with a fresh one, transparently. Plain
//! `std::net` — usable from tests, the `pd submit` / `pd poll` CLI, and
//! benches without any extra dependencies.

use crate::service::{JobSnapshot, RunsList, SubmitReply, SubmitRequest};
use pd_web::http::{Request, Response, Status};
use std::io::{BufReader, BufWriter, Write};
use std::net::{Ipv4Addr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Blocking client for one daemon address.
#[derive(Debug)]
pub struct Client {
    addr: String,
    timeout: Duration,
    /// The kept-alive connection from the previous request, if the
    /// server agreed to keep it open.
    conn: Mutex<Option<TcpStream>>,
}

impl Clone for Client {
    /// Clones the address and timeout — **not** the cached connection.
    /// Each clone opens its own socket, so clones handed to separate
    /// threads never serialize on one connection.
    fn clone(&self) -> Self {
        Client {
            addr: self.addr.clone(),
            timeout: self.timeout,
            conn: Mutex::new(None),
        }
    }
}

impl Client {
    /// A client for `HOST:PORT` with a 30 s per-request socket timeout.
    #[must_use]
    pub fn new(addr: &str) -> Self {
        Client {
            addr: addr.to_owned(),
            timeout: Duration::from_secs(30),
            conn: Mutex::new(None),
        }
    }

    /// Overrides the per-request socket timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sends one request and reads the response, reusing the cached
    /// keep-alive connection when one exists.
    ///
    /// A reuse attempt that fails (the server idle-closed the socket
    /// between requests) is retried once on a fresh connection; errors
    /// on a fresh connection are real and surface to the caller.
    ///
    /// # Errors
    ///
    /// A human-readable message on connect/write/read/parse failure.
    pub fn request(&self, request: &Request) -> Result<Response, String> {
        let cached = self.conn.lock().expect("client conn lock").take();
        if let Some(stream) = cached {
            if let Ok(response) = self.round_trip(stream, request) {
                return Ok(response);
            }
        }
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("connecting to {}: {e}", self.addr))?;
        let _ = stream.set_read_timeout(Some(self.timeout));
        let _ = stream.set_write_timeout(Some(self.timeout));
        self.round_trip(stream, request)
    }

    /// One request/response exchange on `stream`; caches the socket for
    /// the next request iff the server answered `connection: keep-alive`.
    fn round_trip(&self, stream: TcpStream, request: &Request) -> Result<Response, String> {
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("cloning stream: {e}"))?;
        let mut writer = BufWriter::new(stream);
        request
            .write_to(&mut writer)
            .and_then(|()| writer.flush())
            .map_err(|e| format!("sending request to {}: {e}", self.addr))?;
        // A fresh BufReader per exchange is safe: the protocol is strict
        // request-response with content-length framing, so `read_from`
        // consumes exactly one response and buffers nothing beyond it.
        let mut reader = BufReader::new(read_half);
        let response =
            Response::read_from(&mut reader).map_err(|e| format!("reading response: {e}"))?;
        if response.keep_alive() {
            let stream = reader.into_inner();
            *self.conn.lock().expect("client conn lock") = Some(stream);
        }
        Ok(response)
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn get(&self, path: &str) -> Result<Response, String> {
        self.request(&Request::get(
            &self.addr,
            path,
            Ipv4Addr::UNSPECIFIED,
            pd_core::net::clock::SimTime::EPOCH,
        ))
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn post_json(&self, path: &str, body: &str) -> Result<Response, String> {
        self.request(
            &Request::post(
                &self.addr,
                path,
                body,
                Ipv4Addr::UNSPECIFIED,
                pd_core::net::clock::SimTime::EPOCH,
            )
            .with_header("content-type", "application/json"),
        )
    }

    /// Polls `/healthz` until the daemon answers (startup race in CI).
    ///
    /// # Errors
    ///
    /// The last failure when `within` elapses unanswered.
    pub fn wait_ready(&self, within: Duration) -> Result<(), String> {
        let deadline = Instant::now() + within;
        loop {
            let last = match self.get("/healthz") {
                Ok(resp) if resp.status == Status::Ok => return Ok(()),
                Ok(resp) => format!("healthz answered {}", resp.status),
                Err(e) => e,
            };
            if Instant::now() >= deadline {
                return Err(format!("daemon not ready within {within:?}: {last}"));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Submits a job; returns its `j-N` id.
    ///
    /// # Errors
    ///
    /// Transport failures, or a non-200 reply rendered as
    /// `"submit rejected (status CODE): BODY"` — a full queue therefore
    /// surfaces as a message containing `503`.
    pub fn submit(&self, submission: &SubmitRequest) -> Result<String, String> {
        let body = serde_json::to_string(submission).map_err(|e| format!("encoding: {e}"))?;
        let resp = self.post_json("/runs", &body)?;
        if resp.status != Status::Ok {
            return Err(format!(
                "submit rejected (status {}): {}",
                resp.status.code(),
                resp.body.trim()
            ));
        }
        let reply: SubmitReply =
            serde_json::from_str(&resp.body).map_err(|e| format!("bad submit reply: {e}"))?;
        Ok(reply.id)
    }

    /// `GET /runs/:id` as a typed snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures, 404 for an unknown id, or a malformed body.
    pub fn job(&self, id: &str) -> Result<JobSnapshot, String> {
        let resp = self.get(&format!("/runs/{id}"))?;
        if resp.status != Status::Ok {
            return Err(format!(
                "job {id} lookup failed (status {}): {}",
                resp.status.code(),
                resp.body.trim()
            ));
        }
        serde_json::from_str(&resp.body).map_err(|e| format!("bad job snapshot: {e}"))
    }

    /// `GET /runs` as a typed list (newest first).
    ///
    /// # Errors
    ///
    /// Transport failures or a malformed body.
    pub fn runs(&self) -> Result<RunsList, String> {
        let resp = self.get("/runs")?;
        if resp.status != Status::Ok {
            return Err(format!("runs list failed (status {})", resp.status.code()));
        }
        serde_json::from_str(&resp.body).map_err(|e| format!("bad runs list: {e}"))
    }

    /// Polls `GET /runs/:id` until the job finishes.
    ///
    /// # Errors
    ///
    /// The job failing (its `error` text), the deadline passing, or any
    /// transport failure.
    pub fn wait_done(&self, id: &str, within: Duration) -> Result<JobSnapshot, String> {
        let deadline = Instant::now() + within;
        loop {
            let snapshot = self.job(id)?;
            match snapshot.status.as_str() {
                "done" => return Ok(snapshot),
                "failed" => {
                    return Err(format!(
                        "job {id} failed: {}",
                        snapshot.error.as_deref().unwrap_or("unknown error")
                    ))
                }
                _ => {}
            }
            if Instant::now() >= deadline {
                return Err(format!("job {id} not finished within {within:?}"));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// `GET /runs/:id/report` — the raw report JSON, byte-identical to
    /// the offline `pd run --json` output for the same submission.
    ///
    /// # Errors
    ///
    /// Transport failures, or 404 while the job has no report.
    pub fn report(&self, id: &str) -> Result<String, String> {
        let resp = self.get(&format!("/runs/{id}/report"))?;
        if resp.status != Status::Ok {
            return Err(format!(
                "report {id} failed (status {}): {}",
                resp.status.code(),
                resp.body.trim()
            ));
        }
        Ok(resp.body)
    }

    /// `GET /metrics` as raw text.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-200 reply.
    pub fn metrics(&self) -> Result<String, String> {
        let resp = self.get("/metrics")?;
        if resp.status != Status::Ok {
            return Err(format!("metrics failed (status {})", resp.status.code()));
        }
        Ok(resp.body)
    }

    /// `POST /shutdown` — begins the graceful drain.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-200 reply (e.g. the endpoint is
    /// disabled).
    pub fn shutdown(&self) -> Result<(), String> {
        let resp = self.post_json("/shutdown", "")?;
        if resp.status != Status::Ok {
            return Err(format!(
                "shutdown refused (status {}): {}",
                resp.status.code(),
                resp.body.trim()
            ));
        }
        Ok(())
    }
}
