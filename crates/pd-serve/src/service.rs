//! The daemon's shared state: configuration, job table, bounded queue,
//! warm caches and `/metrics` aggregates.
//!
//! A [`PdService`] is everything the HTTP layer needs behind one `Arc`:
//! the process-wide [`FrameCache`] and [`StoreCache`] every job's
//! engine shares (warm-path re-analyses rebuild nothing and never copy
//! a loaded store), the scenario registry, the job table, and the
//! [`Metrics`] the [`crate::ServiceObserver`] feeds. Jobs execute on a
//! **runner pool** ([`ServeConfig::runners`] threads) pulling from one
//! bounded queue — submissions beyond the queue capacity are rejected
//! immediately (the HTTP layer turns that into `503` + `Retry-After`),
//! so the accept loop never blocks on a slow pipeline.
//!
//! Identical submissions **coalesce**: while a job for a given
//! fingerprint key (spec fingerprint + seed + profile) is queued or
//! running, further submissions of the same key attach to it as
//! *followers* — they are admitted instantly without a queue slot,
//! their `GET /runs/:id` carries `coalesced_into: "j-N"` naming the
//! job that does the work, and when that leader finishes every
//! follower receives the same outcome and the **same report bytes**
//! (one shared allocation, so equality is structural). The
//! `jobs_coalesced` metric counts followers admitted this way.

use crate::observer::{ServiceObserver, TeeObserver};
use pd_core::{
    reports_to_json, Experiment, FrameCache, Profile, RunObserver, ScenarioRegistry, ScenarioSpec,
    StageKind, StoreCache, TimingObserver,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How the daemon is wired: address, pool sizes, warm-store directory.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, `HOST:PORT` (`:0` picks an ephemeral port).
    pub addr: String,
    /// HTTP worker threads accepting and answering connections.
    pub threads: usize,
    /// Executor threads each job's engine runs with (`0` = auto).
    /// Reports are byte-identical at any value.
    pub job_threads: usize,
    /// Runner-pool threads executing queued jobs concurrently (`0` =
    /// auto: available cores divided by the per-job thread budget, at
    /// least 1). Reports are byte-identical at any value — the pool
    /// changes completion order, never content.
    pub runners: usize,
    /// Read-through artifact store directory jobs re-analyze from (the
    /// service never writes stores — it is a read-only analysis path).
    pub artifacts: Option<PathBuf>,
    /// Bounded job-queue capacity; a full queue rejects with 503.
    pub queue_capacity: usize,
    /// Whether `POST /shutdown` is served (the graceful-shutdown path).
    pub enable_shutdown: bool,
    /// Start with the job runner gated (tests/benches fill the queue
    /// deterministically, then [`PdService::resume`]).
    pub paused: bool,
}

impl ServeConfig {
    /// The runner-pool size actually spawned: the configured value, or
    /// (for `0`) the machine's available cores divided by the per-job
    /// executor budget, so the pool and the engines never oversubscribe
    /// the host together. Always at least 1.
    #[must_use]
    pub fn effective_runners(&self) -> usize {
        if self.runners > 0 {
            return self.runners;
        }
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let per_job = if self.job_threads == 0 {
            cores
        } else {
            self.job_threads
        };
        (cores / per_job.max(1)).max(1)
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7413".to_owned(),
            threads: 4,
            job_threads: 1,
            runners: 0,
            artifacts: None,
            queue_capacity: 16,
            enable_shutdown: true,
            paused: false,
        }
    }
}

/// A `POST /runs` body: a registered scenario (or spec-search-path) name
/// *or* an inline spec, plus optional seed and profile overrides.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// Scenario name — resolved against the registry, then the spec
    /// search path (`examples/specs/`, `$PD_SPEC_PATH`).
    pub scenario: Option<String>,
    /// Inline declarative spec (wins may not be combined with
    /// `scenario`).
    pub spec: Option<ScenarioSpec>,
    /// Root seed (default: the paper seed).
    pub seed: Option<u64>,
    /// Workload profile name (default `small`).
    pub profile: Option<String>,
}

/// Why a submission was turned away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — retry later (HTTP 503).
    QueueFull,
    /// The service is draining for shutdown (HTTP 503).
    Draining,
    /// The request itself is unusable (HTTP 400).
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "job queue is full"),
            SubmitError::Draining => write!(f, "service is shutting down"),
            SubmitError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting in the bounded queue.
    Queued,
    /// Executing on the runner thread.
    Running,
    /// Finished; report available.
    Done,
    /// The run errored or panicked; see the snapshot's `error`.
    Failed,
}

impl JobState {
    /// Stable lowercase name (the wire `status` field).
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// The public, wire-serializable view of one job (what `GET /runs/:id`
/// returns; the full report body lives at `GET /runs/:id/report`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSnapshot {
    /// Job id, `j-N`.
    pub id: String,
    /// The scenario/spec name the job runs.
    pub scenario: String,
    /// `queued` | `running` | `done` | `failed`.
    pub status: String,
    /// Failure detail when `status == "failed"`.
    pub error: Option<String>,
    /// Milliseconds spent waiting in the queue (set once running).
    pub queued_ms: Option<u64>,
    /// Milliseconds the run took (set once finished).
    pub run_ms: Option<u64>,
    /// Analysis frames built by this job (0 on a fully warm path).
    pub frames_built: u64,
    /// Analysis frames served from the shared warm cache.
    pub frames_reused: u64,
    /// Domain chunks streamed from chunked binary stores.
    pub frames_chunks_loaded: u64,
    /// Pipeline stages satisfied from the artifact store.
    pub store_loads: u64,
    /// Rendered per-arm summaries (set once done).
    pub rendered: Option<String>,
    /// Whether `GET /runs/:id/report` will serve a body.
    pub has_report: bool,
    /// When this submission coalesced onto an identical in-flight job,
    /// the `j-N` id of the job that executes for both (this job's
    /// report is that job's report, byte for byte).
    pub coalesced_into: Option<String>,
}

/// The `POST /runs` success body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitReply {
    /// The accepted job's id, `j-N`.
    pub id: String,
    /// Always `queued`.
    pub status: String,
}

/// The `GET /runs` body: recent jobs, newest first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunsList {
    /// Snapshots, newest first (capped at 50).
    pub runs: Vec<JobSnapshot>,
}

/// What the runner pulls off the queue.
pub(crate) enum QueueMsg {
    /// Run the job with this id.
    Job(u64),
    /// Drain sentinel: everything before it has run; exit the loop.
    Shutdown,
}

/// Process-lifetime counters behind `/metrics`. All atomics — readable
/// without locking from any worker thread.
#[derive(Debug)]
pub struct Metrics {
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_coalesced: AtomicU64,
    jobs_running: AtomicU64,
    queue_depth: AtomicU64,
    frames_built: AtomicU64,
    frames_reused: AtomicU64,
    frames_chunks_loaded: AtomicU64,
    store_hits: AtomicU64,
    /// Cumulative wall microseconds, indexed by [`stage_index`].
    stage_us: [AtomicU64; 5],
    started: Instant,
}

/// Dense index for [`StageKind`] (metrics array slot).
const fn stage_index(stage: StageKind) -> usize {
    match stage {
        StageKind::Build => 0,
        StageKind::Crowd => 1,
        StageKind::Crawl => 2,
        StageKind::Personas => 3,
        StageKind::Analysis => 4,
    }
}

const STAGE_ORDER: [StageKind; 5] = [
    StageKind::Build,
    StageKind::Crowd,
    StageKind::Crawl,
    StageKind::Personas,
    StageKind::Analysis,
];

impl Metrics {
    /// Fresh, all-zero metrics with the uptime clock started.
    #[must_use]
    pub fn new() -> Self {
        Metrics {
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_coalesced: AtomicU64::new(0),
            jobs_running: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            frames_built: AtomicU64::new(0),
            frames_reused: AtomicU64::new(0),
            frames_chunks_loaded: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            stage_us: Default::default(),
            started: Instant::now(),
        }
    }

    pub(crate) fn add_stage_wall(&self, stage: StageKind, wall: Duration) {
        let us = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
        self.stage_us[stage_index(stage)].fetch_add(us, Ordering::Relaxed);
    }

    pub(crate) fn add_named_counter(&self, name: &str, value: u64) {
        let slot = match name {
            "frames_built" => &self.frames_built,
            "frames_reused" => &self.frames_reused,
            "frames_chunks_loaded" => &self.frames_chunks_loaded,
            _ => return,
        };
        slot.fetch_add(value, Ordering::Relaxed);
    }

    pub(crate) fn add_store_hit(&self) {
        self.store_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// The `/metrics` body: one `key value` pair per line, text/plain.
    #[must_use]
    pub fn render_text(&self) -> String {
        let depth = self.queue_depth.load(Ordering::Relaxed);
        let mut out = String::new();
        let uptime = u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        out.push_str(&format!("uptime_ms {uptime}\n"));
        out.push_str(&format!("jobs_queued {depth}\n"));
        out.push_str(&format!(
            "jobs_running {}\n",
            self.jobs_running.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "jobs_done {}\n",
            self.jobs_done.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "jobs_failed {}\n",
            self.jobs_failed.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "jobs_rejected {}\n",
            self.jobs_rejected.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "jobs_coalesced {}\n",
            self.jobs_coalesced.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("queue_depth {depth}\n"));
        out.push_str(&format!(
            "frames_built {}\n",
            self.frames_built.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "frames_reused {}\n",
            self.frames_reused.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "frames_chunks_loaded {}\n",
            self.frames_chunks_loaded.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "store_hits {}\n",
            self.store_hits.load(Ordering::Relaxed)
        ));
        for stage in STAGE_ORDER {
            let ms = self.stage_us[stage_index(stage)].load(Ordering::Relaxed) / 1000;
            out.push_str(&format!("stage_ms_{} {ms}\n", stage.as_str()));
        }
        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Pauses/resumes the runner pool (deterministic backpressure and
/// coalescing tests).
#[derive(Debug, Default)]
struct Gate {
    paused: Mutex<bool>,
    unpause: Condvar,
}

impl Gate {
    fn wait_ready(&self) {
        let mut paused = self.paused.lock().expect("gate lock");
        while *paused {
            paused = self.unpause.wait(paused).expect("gate lock");
        }
    }

    fn set_paused(&self, value: bool) {
        *self.paused.lock().expect("gate lock") = value;
        if !value {
            self.unpause.notify_all();
        }
    }
}

/// What one accepted job carries until a runner picks it up.
struct JobWork {
    spec: ScenarioSpec,
    seed: u64,
    profile: Profile,
}

/// The identity two submissions must share to coalesce: everything
/// that shapes the report. [`ScenarioSpec::fingerprint`] digests the
/// full canonical spec, the seed roots every RNG stream, and the
/// profile scales the workload (by name — profiles are a closed enum).
type CoalesceKey = (u64, u64, &'static str);

/// One row of the job table. Report strings are `Arc<str>` so a
/// leader's followers share the exact allocation — "byte-identical"
/// is structural, not a copy that happens to match.
struct JobRecord {
    scenario: String,
    state: JobState,
    error: Option<String>,
    rendered: Option<Arc<str>>,
    report_json: Option<Arc<str>>,
    queued_ms: Option<u64>,
    run_ms: Option<u64>,
    frames_built: u64,
    frames_reused: u64,
    frames_chunks_loaded: u64,
    store_loads: u64,
    submitted: Instant,
    work: Option<JobWork>,
    /// Set on a follower: the leader job id whose execution this
    /// submission attached to.
    coalesced_into: Option<u64>,
    /// Set on a leader: follower job ids to settle when it finishes.
    followers: Vec<u64>,
    /// Set on a leader while it is queued/running: its entry in
    /// [`JobTable::active`], removed on completion.
    coalesce_key: Option<CoalesceKey>,
}

/// The job table: every record ever admitted (ids stay dense) plus the
/// coalescing index over the in-flight ones.
#[derive(Default)]
struct JobTable {
    records: Vec<JobRecord>,
    /// `coalesce key → leader job id`, present exactly while that
    /// leader is queued or running — the window in which an identical
    /// submission attaches instead of executing.
    active: HashMap<CoalesceKey, u64>,
}

/// The daemon's shared state. See the [module docs](self).
pub struct PdService {
    config: ServeConfig,
    registry: ScenarioRegistry,
    frames: Arc<FrameCache>,
    stores: Arc<StoreCache>,
    metrics: Arc<Metrics>,
    service_observer: Arc<ServiceObserver>,
    jobs: Mutex<JobTable>,
    queue: Mutex<SyncSender<QueueMsg>>,
    draining: AtomicBool,
    gate: Gate,
}

impl std::fmt::Debug for PdService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PdService")
            .field("config", &self.config)
            .field(
                "jobs",
                &self.jobs.lock().map(|j| j.records.len()).unwrap_or(0),
            )
            .finish()
    }
}

impl PdService {
    /// Builds the service around an already-created bounded queue sender
    /// (the matching receiver goes to [`PdService::runner_loop`]).
    #[must_use]
    pub(crate) fn new(config: ServeConfig, queue: SyncSender<QueueMsg>) -> Self {
        let metrics = Arc::new(Metrics::new());
        let gate = Gate::default();
        gate.set_paused(config.paused);
        PdService {
            config,
            registry: ScenarioRegistry::builtin(),
            frames: Arc::new(FrameCache::new()),
            stores: Arc::new(StoreCache::new()),
            service_observer: Arc::new(ServiceObserver::new(Arc::clone(&metrics))),
            metrics,
            jobs: Mutex::new(JobTable::default()),
            queue: Mutex::new(queue),
            draining: AtomicBool::new(false),
            gate,
        }
    }

    /// The live configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The process-wide metrics (what `/metrics` renders).
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The `/metrics` body.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        self.metrics.render_text()
    }

    /// Gates every runner before its next job (see
    /// [`ServeConfig::paused`]).
    pub fn pause(&self) {
        self.gate.set_paused(true);
    }

    /// Releases a paused runner pool.
    pub fn resume(&self) {
        self.gate.set_paused(false);
    }

    /// Whether graceful shutdown has begun (submissions are refused).
    #[must_use]
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Accepts a submission: into the bounded queue, or — when an
    /// identical job (same spec fingerprint, seed and profile) is
    /// already queued or running — as a **follower** of that job,
    /// costing no queue slot and no execution. Followers finish when
    /// their leader does, with the same outcome and the same report
    /// bytes; their snapshot names the leader in `coalesced_into`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] when neither/both of `scenario`/`spec`
    /// are given, the name resolves nowhere (the message carries a
    /// did-you-mean), the profile is unknown, or the inline spec fails
    /// validation; [`SubmitError::QueueFull`] / [`SubmitError::Draining`]
    /// for backpressure — the job table is untouched in every error case.
    pub fn submit(&self, req: &SubmitRequest) -> Result<String, SubmitError> {
        if self.draining() {
            return Err(SubmitError::Draining);
        }
        let spec = match (&req.scenario, &req.spec) {
            (Some(_), Some(_)) => {
                return Err(SubmitError::Invalid(
                    "give either \"scenario\" or \"spec\", not both".to_owned(),
                ))
            }
            (None, None) => {
                return Err(SubmitError::Invalid(
                    "missing \"scenario\" (name) or \"spec\" (inline)".to_owned(),
                ))
            }
            (Some(name), None) => self.resolve_name(name)?,
            (None, Some(spec)) => {
                spec.validate()
                    .map_err(|e| SubmitError::Invalid(format!("invalid spec: {e}")))?;
                spec.clone()
            }
        };
        let profile = match &req.profile {
            None => Profile::Small,
            Some(name) => Profile::parse(name)
                .ok_or_else(|| SubmitError::Invalid(format!("unknown profile {name:?}")))?,
        };
        let seed = req
            .seed
            .unwrap_or_else(|| pd_util::seed::EXPERIMENT_SEED.value());

        let key: CoalesceKey = (spec.fingerprint(), seed, profile.name());

        // Push + enqueue under one lock so ids stay dense even when a
        // full queue forces the push to roll back — and so the
        // coalescing index cannot race a leader's completion.
        let mut jobs = self.jobs.lock().expect("jobs lock");
        let id = jobs.records.len() as u64 + 1;
        if let Some(&leader) = jobs.active.get(&key) {
            // An identical job is in flight: attach as a follower. No
            // queue slot, no work — the leader's completion settles it.
            jobs.records.push(JobRecord {
                scenario: spec.name.clone(),
                state: JobState::Queued,
                error: None,
                rendered: None,
                report_json: None,
                queued_ms: None,
                run_ms: None,
                frames_built: 0,
                frames_reused: 0,
                frames_chunks_loaded: 0,
                store_loads: 0,
                submitted: Instant::now(),
                work: None,
                coalesced_into: Some(leader),
                followers: Vec::new(),
                coalesce_key: None,
            });
            let leader_idx = usize::try_from(leader - 1).expect("dense leader id");
            jobs.records[leader_idx].followers.push(id);
            self.metrics.jobs_coalesced.fetch_add(1, Ordering::SeqCst);
            return Ok(format!("j-{id}"));
        }
        jobs.records.push(JobRecord {
            scenario: spec.name.clone(),
            state: JobState::Queued,
            error: None,
            rendered: None,
            report_json: None,
            queued_ms: None,
            run_ms: None,
            frames_built: 0,
            frames_reused: 0,
            frames_chunks_loaded: 0,
            store_loads: 0,
            submitted: Instant::now(),
            work: Some(JobWork {
                spec,
                seed,
                profile,
            }),
            coalesced_into: None,
            followers: Vec::new(),
            coalesce_key: Some(key),
        });
        jobs.active.insert(key, id);
        let sender = self.queue.lock().expect("queue lock").clone();
        match sender.try_send(QueueMsg::Job(id)) {
            Ok(()) => {
                self.metrics.queue_depth.fetch_add(1, Ordering::SeqCst);
                Ok(format!("j-{id}"))
            }
            Err(TrySendError::Full(_)) => {
                jobs.records.pop();
                jobs.active.remove(&key);
                self.metrics.jobs_rejected.fetch_add(1, Ordering::SeqCst);
                Err(SubmitError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                jobs.records.pop();
                jobs.active.remove(&key);
                Err(SubmitError::Draining)
            }
        }
    }

    /// Resolves a by-name submission: registry first, then the spec
    /// search path; the error message carries a did-you-mean.
    fn resolve_name(&self, name: &str) -> Result<ScenarioSpec, SubmitError> {
        if let Some(spec) = self.registry.get(name) {
            return Ok(spec.clone());
        }
        match pd_core::load_spec(name) {
            Ok(spec) => Ok(spec),
            Err(search_err) => {
                let mut msg = format!("unknown scenario {name:?}");
                if let Some(hint) = self.registry.suggest(name) {
                    msg.push_str(&format!("; did you mean {hint:?}?"));
                }
                msg.push_str(&format!(" ({search_err})"));
                Err(SubmitError::Invalid(msg))
            }
        }
    }

    /// `GET /runs/:id` — `None` when no such job exists.
    #[must_use]
    pub fn snapshot(&self, id: u64) -> Option<JobSnapshot> {
        let jobs = self.jobs.lock().expect("jobs lock");
        let idx = usize::try_from(id.checked_sub(1)?).ok()?;
        jobs.records.get(idx).map(|job| snapshot_of(id, job))
    }

    /// `GET /runs` — recent jobs, newest first, capped at 50.
    #[must_use]
    pub fn list(&self) -> RunsList {
        let jobs = self.jobs.lock().expect("jobs lock");
        let runs = jobs
            .records
            .iter()
            .enumerate()
            .rev()
            .take(50)
            .map(|(idx, job)| snapshot_of(idx as u64 + 1, job))
            .collect();
        RunsList { runs }
    }

    /// `GET /runs/:id/report` — the outer `None` is "no such job", the
    /// inner `None` is "job exists but has no report (yet)". A returned
    /// body is byte-identical to the offline `pd run --json` output for
    /// the same submission (a follower serves its leader's allocation).
    #[must_use]
    pub fn report_body(&self, id: u64) -> Option<Option<String>> {
        let jobs = self.jobs.lock().expect("jobs lock");
        let idx = usize::try_from(id.checked_sub(1)?).ok()?;
        jobs.records
            .get(idx)
            .map(|job| job.report_json.as_deref().map(str::to_owned))
    }

    /// Starts graceful shutdown: refuse new submissions, unpause the
    /// runner pool, and append the drain sentinel so every
    /// already-queued job still runs. Idempotent. May block briefly
    /// while the queue drains enough to accept the sentinel.
    pub fn begin_shutdown(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.gate.set_paused(false);
        let sender = self.queue.lock().expect("queue lock").clone();
        let _ = sender.send(QueueMsg::Shutdown);
    }

    /// One runner's loop: pull jobs off the shared bounded queue and
    /// execute them until the drain sentinel (or every sender hung up).
    /// [`crate::Server::start`] spawns [`ServeConfig::effective_runners`]
    /// threads running this over one `Mutex`-shared receiver. A runner
    /// that receives the sentinel **forwards it** before exiting, so one
    /// `Shutdown` message drains the whole pool — and because the
    /// sentinel is queued behind every accepted job, forwarding can
    /// never block (the queue is empty of work by then).
    pub(crate) fn runner_loop(self: &Arc<Self>, queue: &Mutex<Receiver<QueueMsg>>) {
        loop {
            // Gate *before* recv: a paused runner must not drain a queue
            // slot, or backpressure tests could never fill the queue.
            self.gate.wait_ready();
            let msg = queue.lock().expect("runner queue lock").recv();
            match msg {
                Err(_) => return,
                Ok(QueueMsg::Shutdown) => {
                    let sender = self.queue.lock().expect("queue lock").clone();
                    let _ = sender.send(QueueMsg::Shutdown);
                    return;
                }
                Ok(QueueMsg::Job(id)) => self.run_job(id),
            }
        }
    }

    /// Executes one queued job, recording outcome, timings and frame
    /// stats, then settles every follower that coalesced onto it. A
    /// panicking run marks the job (and its followers) failed instead
    /// of killing the runner.
    fn run_job(&self, id: u64) {
        let idx = id as usize - 1;
        let work = {
            let mut jobs = self.jobs.lock().expect("jobs lock");
            let job = &mut jobs.records[idx];
            job.state = JobState::Running;
            job.queued_ms =
                Some(u64::try_from(job.submitted.elapsed().as_millis()).unwrap_or(u64::MAX));
            job.work.take().expect("queued job carries its work")
        };
        self.metrics.queue_depth.fetch_sub(1, Ordering::SeqCst);
        self.metrics.jobs_running.fetch_add(1, Ordering::SeqCst);

        let per_job = Arc::new(TimingObserver::new());
        let observer: Arc<dyn RunObserver> = Arc::new(TeeObserver::new(vec![
            Arc::clone(&per_job) as Arc<dyn RunObserver>,
            Arc::clone(&self.service_observer) as Arc<dyn RunObserver>,
        ]));
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| self.execute(&work, observer)))
            .unwrap_or_else(|panic| Err(format!("job panicked: {}", panic_message(&panic))));
        let run_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);

        let timings = per_job.timings();
        let counter_total = |name: &str| -> u64 {
            timings
                .iter()
                .flat_map(|t| t.counters.iter())
                .filter(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .sum()
        };
        // Outcome, key retirement and follower settlement happen under
        // one lock: after it drops, the key is free for a fresh leader
        // and no follower can still be pending.
        let mut jobs = self.jobs.lock().expect("jobs lock");
        let job = &mut jobs.records[idx];
        job.run_ms = Some(run_ms);
        job.frames_built = counter_total("frames_built");
        job.frames_reused = counter_total("frames_reused");
        job.frames_chunks_loaded = counter_total("frames_chunks_loaded");
        job.store_loads = per_job.loaded().len() as u64;
        let (state, error, rendered, report_json) = match outcome {
            Ok((rendered, report_json)) => {
                let rendered: Arc<str> = rendered.into();
                let report_json: Arc<str> = report_json.into();
                (JobState::Done, None, Some(rendered), Some(report_json))
            }
            Err(msg) => (JobState::Failed, Some(msg), None, None),
        };
        job.state = state;
        job.error.clone_from(&error);
        job.rendered.clone_from(&rendered);
        job.report_json.clone_from(&report_json);
        let followers = std::mem::take(&mut job.followers);
        let key = job.coalesce_key.take();
        let settled = 1 + followers.len() as u64;
        if let Some(key) = key {
            jobs.active.remove(&key);
        }
        for fid in followers {
            let follower = &mut jobs.records[fid as usize - 1];
            follower.state = state;
            follower.error.clone_from(&error);
            follower.rendered.clone_from(&rendered);
            follower.report_json.clone_from(&report_json);
            // The follower waited its own wall time for the shared run.
            follower.queued_ms =
                Some(u64::try_from(follower.submitted.elapsed().as_millis()).unwrap_or(u64::MAX));
            follower.run_ms = Some(run_ms);
        }
        match state {
            JobState::Done => {
                self.metrics.jobs_done.fetch_add(settled, Ordering::SeqCst);
            }
            _ => {
                self.metrics
                    .jobs_failed
                    .fetch_add(settled, Ordering::SeqCst);
            }
        }
        self.metrics.jobs_running.fetch_sub(1, Ordering::SeqCst);
    }

    /// Runs one job's sweep on the shared warm state, producing the
    /// rendered summaries and the canonical report JSON (the exact
    /// [`reports_to_json`] string `pd run --json` would write).
    fn execute(
        &self,
        work: &JobWork,
        observer: Arc<dyn RunObserver>,
    ) -> Result<(String, String), String> {
        let mut builder = Experiment::builder()
            .spec(work.spec.clone())
            .seed(work.seed)
            .profile(work.profile)
            .threads(self.config.job_threads)
            .observer(observer)
            .frame_cache(Arc::clone(&self.frames))
            .store_cache(Arc::clone(&self.stores));
        if let Some(dir) = &self.config.artifacts {
            builder = builder.artifacts(dir.clone());
        }
        let arms = builder.run_sweep().map_err(|e| e.to_string())?;
        let mut rendered = String::new();
        let mut reports = Vec::new();
        for arm in arms {
            if !arm.label.is_empty() {
                rendered.push_str(&format!("== {} / {} ==\n", work.spec.name, arm.label));
            }
            rendered.push_str(&arm.analysis.report.render_summary());
            reports.push((arm.label, arm.analysis.report.clone()));
        }
        Ok((rendered, reports_to_json(&reports)))
    }
}

/// Human text out of a panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn snapshot_of(id: u64, job: &JobRecord) -> JobSnapshot {
    JobSnapshot {
        id: format!("j-{id}"),
        scenario: job.scenario.clone(),
        status: job.state.as_str().to_owned(),
        error: job.error.clone(),
        queued_ms: job.queued_ms,
        run_ms: job.run_ms,
        frames_built: job.frames_built,
        frames_reused: job.frames_reused,
        frames_chunks_loaded: job.frames_chunks_loaded,
        store_loads: job.store_loads,
        rendered: job.rendered.as_deref().map(str::to_owned),
        has_report: job.report_json.is_some(),
        coalesced_into: job.coalesced_into.map(|leader| format!("j-{leader}")),
    }
}

/// Parses a `j-N` job id (the wire format of [`JobSnapshot::id`]).
#[must_use]
pub fn parse_job_id(id: &str) -> Option<u64> {
    id.strip_prefix("j-")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn service(capacity: usize) -> (Arc<PdService>, Receiver<QueueMsg>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..ServeConfig::default()
        };
        (Arc::new(PdService::new(config, tx)), rx)
    }

    /// Drives the pool loop to completion on the calling thread (tests
    /// exercise the queue semantics without spawning runners).
    fn drain(svc: &Arc<PdService>, rx: Receiver<QueueMsg>) {
        svc.begin_shutdown();
        svc.runner_loop(&Mutex::new(rx));
    }

    #[test]
    fn submit_validates_inputs() {
        let (svc, _rx) = service(4);
        let err = svc.submit(&SubmitRequest::default()).unwrap_err();
        assert!(matches!(err, SubmitError::Invalid(_)), "{err}");
        let err = svc
            .submit(&SubmitRequest {
                scenario: Some("smoke".to_owned()),
                profile: Some("warp".to_owned()),
                ..SubmitRequest::default()
            })
            .unwrap_err();
        assert!(err.to_string().contains("unknown profile"), "{err}");
        let err = svc
            .submit(&SubmitRequest {
                scenario: Some("smok".to_owned()),
                ..SubmitRequest::default()
            })
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("did you mean \"smoke\""), "{msg}");
        // Nothing was admitted into the job table.
        assert!(svc.list().runs.is_empty());
    }

    #[test]
    fn full_queue_rejects_and_rolls_back() {
        let (svc, _rx) = service(1);
        let req = SubmitRequest {
            scenario: Some("smoke".to_owned()),
            profile: Some("smoke".to_owned()),
            ..SubmitRequest::default()
        };
        assert_eq!(svc.submit(&req).expect("first fits"), "j-1");
        // A *different* spec (other seed) cannot coalesce onto j-1, so
        // it must contend for the (full) queue and bounce.
        let other = SubmitRequest {
            seed: Some(4242),
            ..req.clone()
        };
        assert_eq!(svc.submit(&other).unwrap_err(), SubmitError::QueueFull);
        // The rejected job must not appear, and ids stay dense.
        assert_eq!(svc.list().runs.len(), 1);
        assert!(svc.metrics_text().contains("jobs_rejected 1\n"));
    }

    #[test]
    fn draining_refuses_submissions() {
        let (svc, rx) = service(4);
        svc.begin_shutdown();
        let err = svc
            .submit(&SubmitRequest {
                scenario: Some("smoke".to_owned()),
                ..SubmitRequest::default()
            })
            .unwrap_err();
        assert_eq!(err, SubmitError::Draining);
        drop(rx);
    }

    #[test]
    fn runner_executes_queued_jobs_and_drains_on_shutdown() {
        let (svc, rx) = service(4);
        let req = SubmitRequest {
            scenario: Some("smoke".to_owned()),
            seed: Some(7),
            profile: Some("smoke".to_owned()),
            ..SubmitRequest::default()
        };
        let id = svc.submit(&req).expect("queued");
        assert_eq!(id, "j-1");
        drain(&svc, rx); // runs j-1, then hits the sentinel
        let snap = svc.snapshot(1).expect("job exists");
        assert_eq!(snap.status, "done");
        assert!(snap.has_report);
        assert!(snap.run_ms.is_some());
        assert!(snap.coalesced_into.is_none(), "a lone job leads itself");
        assert!(svc.report_body(1).expect("exists").is_some());
        assert!(svc.metrics_text().contains("jobs_done 1\n"));
    }

    /// Five identical submissions while the pool is paused: one leader
    /// in the queue, four followers attached to it. After resume +
    /// drain, one execution produced five done jobs with the same
    /// report bytes and a correct `coalesced_into` lineage.
    #[test]
    fn identical_submissions_coalesce_onto_one_execution() {
        let (tx, rx) = mpsc::sync_channel(8);
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            paused: true,
            ..ServeConfig::default()
        };
        let svc = Arc::new(PdService::new(config, tx));
        let req = SubmitRequest {
            scenario: Some("smoke".to_owned()),
            seed: Some(7),
            profile: Some("smoke".to_owned()),
            ..SubmitRequest::default()
        };
        let ids: Vec<String> = (0..5)
            .map(|_| svc.submit(&req).expect("admitted"))
            .collect();
        assert_eq!(ids, ["j-1", "j-2", "j-3", "j-4", "j-5"]);
        // Followers cost no queue slot: only the leader occupies one.
        assert!(svc.metrics_text().contains("jobs_queued 1\n"));
        assert!(svc.metrics_text().contains("jobs_coalesced 4\n"));

        svc.resume();
        drain(&svc, rx);

        let leader = svc.snapshot(1).expect("leader exists");
        assert_eq!(leader.status, "done");
        assert!(leader.coalesced_into.is_none());
        let reference = svc.report_body(1).expect("exists").expect("has report");
        for id in 2..=5 {
            let snap = svc.snapshot(id).expect("follower exists");
            assert_eq!(snap.status, "done", "j-{id}");
            assert_eq!(snap.coalesced_into.as_deref(), Some("j-1"), "j-{id}");
            assert!(snap.queued_ms.is_some(), "j-{id} waited for the leader");
            let body = svc.report_body(id).expect("exists").expect("has report");
            assert_eq!(body, reference, "j-{id} must serve the leader's bytes");
        }
        assert!(svc.metrics_text().contains("jobs_done 5\n"));
        // One execution: exactly one job carries non-zero frame builds.
        let built: Vec<u64> = (1..=5)
            .map(|id| svc.snapshot(id).expect("exists").frames_built)
            .collect();
        assert!(built[0] > 0, "the leader built the frames: {built:?}");
        assert!(built[1..].iter().all(|&b| b == 0), "{built:?}");
    }

    /// Submissions differing only in seed do NOT coalesce — the seed is
    /// part of the coalescing identity because it shapes the report.
    #[test]
    fn different_seeds_do_not_coalesce() {
        let (tx, rx) = mpsc::sync_channel(8);
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            paused: true,
            ..ServeConfig::default()
        };
        let svc = Arc::new(PdService::new(config, tx));
        let req = |seed: u64| SubmitRequest {
            scenario: Some("smoke".to_owned()),
            seed: Some(seed),
            profile: Some("smoke".to_owned()),
            ..SubmitRequest::default()
        };
        svc.submit(&req(7)).expect("admitted");
        svc.submit(&req(8)).expect("admitted");
        assert!(svc.metrics_text().contains("jobs_queued 2\n"));
        assert!(svc.metrics_text().contains("jobs_coalesced 0\n"));

        svc.resume();
        drain(&svc, rx);
        let a = svc.report_body(1).expect("exists").expect("report");
        let b = svc.report_body(2).expect("exists").expect("report");
        assert_ne!(a, b, "different seeds are different runs");
        for id in [1, 2] {
            let snap = svc.snapshot(id).expect("exists");
            assert_eq!(snap.status, "done");
            assert!(snap.coalesced_into.is_none(), "j-{id} ran for itself");
        }
    }

    /// After a leader finishes, its coalescing window is closed: the
    /// same submission executes again instead of attaching to history.
    #[test]
    fn coalescing_window_closes_with_the_leader() {
        let (svc, rx) = service(8);
        let req = SubmitRequest {
            scenario: Some("smoke".to_owned()),
            seed: Some(7),
            profile: Some("smoke".to_owned()),
            ..SubmitRequest::default()
        };
        svc.submit(&req).expect("first leader");
        // Run j-1 to completion on this thread.
        match rx.recv().expect("queued msg") {
            QueueMsg::Job(id) => svc.run_job(id),
            QueueMsg::Shutdown => panic!("no shutdown queued"),
        }
        // The identical resubmission is a fresh leader, not a follower.
        svc.submit(&req).expect("second leader");
        assert!(svc.metrics_text().contains("jobs_coalesced 0\n"));
        drain(&svc, rx);
        let snap = svc.snapshot(2).expect("exists");
        assert_eq!(snap.status, "done");
        assert!(snap.coalesced_into.is_none());
        assert_eq!(
            svc.report_body(1).expect("exists"),
            svc.report_body(2).expect("exists"),
            "same inputs, same bytes — just paid for twice"
        );
    }

    #[test]
    fn effective_runners_divides_cores_by_job_threads() {
        let config = |runners, job_threads| ServeConfig {
            runners,
            job_threads,
            ..ServeConfig::default()
        };
        assert_eq!(config(3, 1).effective_runners(), 3, "explicit value wins");
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(config(0, 1).effective_runners(), cores);
        assert_eq!(
            config(0, 0).effective_runners(),
            1,
            "auto job threads take the whole machine: one runner"
        );
        assert!(config(0, usize::MAX).effective_runners() >= 1);
    }

    #[test]
    fn job_ids_parse() {
        assert_eq!(parse_job_id("j-12"), Some(12));
        assert_eq!(parse_job_id("12"), None);
        assert_eq!(parse_job_id("j-x"), None);
    }
}
