//! Observer plumbing between engine runs and the service.
//!
//! Every job the daemon executes runs under a [`TeeObserver`] fanning
//! the engine's event stream into two sinks: a per-job
//! [`pd_core::TimingObserver`] (job status endpoints) and the shared
//! [`ServiceObserver`] (process-lifetime `/metrics` aggregates).

use crate::service::Metrics;
use pd_core::{RunObserver, StageKind};
use std::sync::Arc;
use std::time::Duration;

/// Feeds the service-wide [`Metrics`] from [`RunObserver`] events:
/// cumulative per-stage wall-time, the analysis stage's frame counters
/// (`frames_built` / `frames_reused` / `frames_chunks_loaded`) and
/// artifact-store hits. One instance lives for the whole daemon, shared
/// by every job.
#[derive(Debug)]
pub struct ServiceObserver {
    metrics: Arc<Metrics>,
}

impl ServiceObserver {
    /// An observer feeding `metrics`.
    #[must_use]
    pub fn new(metrics: Arc<Metrics>) -> Self {
        ServiceObserver { metrics }
    }
}

impl RunObserver for ServiceObserver {
    fn stage_finished(&self, stage: StageKind, wall: Duration) {
        self.metrics.add_stage_wall(stage, wall);
    }

    fn counter(&self, _stage: StageKind, name: &str, value: u64) {
        self.metrics.add_named_counter(name, value);
    }

    fn stage_loaded(&self, _stage: StageKind, _fingerprint: &str) {
        self.metrics.add_store_hit();
    }
}

/// Forwards every event to each inner observer, in order. This is how a
/// job reports to both its own [`pd_core::TimingObserver`] and the
/// daemon's [`ServiceObserver`] from a single engine run.
pub struct TeeObserver {
    sinks: Vec<Arc<dyn RunObserver>>,
}

impl TeeObserver {
    /// A tee over `sinks` (events arrive in the given order).
    #[must_use]
    pub fn new(sinks: Vec<Arc<dyn RunObserver>>) -> Self {
        TeeObserver { sinks }
    }
}

impl std::fmt::Debug for TeeObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeObserver")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl RunObserver for TeeObserver {
    fn arm_started(&self, label: &str) {
        for sink in &self.sinks {
            sink.arm_started(label);
        }
    }

    fn stage_started(&self, stage: StageKind) {
        for sink in &self.sinks {
            sink.stage_started(stage);
        }
    }

    fn stage_finished(&self, stage: StageKind, wall: Duration) {
        for sink in &self.sinks {
            sink.stage_finished(stage, wall);
        }
    }

    fn counter(&self, stage: StageKind, name: &str, value: u64) {
        for sink in &self.sinks {
            sink.counter(stage, name, value);
        }
    }

    fn stage_loaded(&self, stage: StageKind, fingerprint: &str) {
        for sink in &self.sinks {
            sink.stage_loaded(stage, fingerprint);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_core::TimingObserver;

    #[test]
    fn tee_forwards_to_every_sink() {
        let a = Arc::new(TimingObserver::new());
        let b = Arc::new(TimingObserver::new());
        let tee = TeeObserver::new(vec![
            Arc::clone(&a) as Arc<dyn RunObserver>,
            Arc::clone(&b) as Arc<dyn RunObserver>,
        ]);
        tee.stage_started(StageKind::Crowd);
        tee.counter(StageKind::Crowd, "checks", 3);
        tee.stage_finished(StageKind::Crowd, Duration::from_millis(1));
        tee.stage_loaded(StageKind::Crawl, "00000000deadbeef");
        for obs in [&a, &b] {
            assert_eq!(obs.starts(StageKind::Crowd), 1);
            assert_eq!(obs.loads(StageKind::Crawl), 1);
            assert_eq!(obs.timings()[0].counters, vec![("checks".to_owned(), 3)]);
        }
    }

    #[test]
    fn service_observer_accumulates_into_metrics() {
        let metrics = Arc::new(Metrics::new());
        let obs = ServiceObserver::new(Arc::clone(&metrics));
        obs.stage_finished(StageKind::Analysis, Duration::from_millis(12));
        obs.stage_finished(StageKind::Analysis, Duration::from_millis(5));
        obs.counter(StageKind::Analysis, "frames_built", 4);
        obs.counter(StageKind::Analysis, "frames_reused", 2);
        obs.counter(StageKind::Analysis, "frames_chunks_loaded", 9);
        obs.counter(StageKind::Analysis, "unrelated", 99);
        obs.stage_loaded(StageKind::Crowd, "00000000deadbeef");
        let text = metrics.render_text();
        assert!(text.contains("frames_built 4\n"), "got:\n{text}");
        assert!(text.contains("frames_reused 2\n"), "got:\n{text}");
        assert!(text.contains("frames_chunks_loaded 9\n"), "got:\n{text}");
        assert!(text.contains("store_hits 1\n"), "got:\n{text}");
        assert!(text.contains("stage_ms_analysis 17\n"), "got:\n{text}");
    }
}
