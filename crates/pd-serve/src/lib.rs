//! # pd-serve — the long-running measurement service
//!
//! The paper's end state is a continuously available crowd-assisted
//! detection system: many users submitting checks against measurements
//! that were crawled once — not a batch CLI. This crate is that shape: a
//! real TCP daemon (`std::net`, blocking listener, fixed worker pool)
//! owning warm state behind `Arc`s — one process-wide
//! [`pd_core::FrameCache`], the opened artifact stores, the interner —
//! and answering an HTTP/1.1 JSON API:
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /runs` | submit a scenario name or inline spec → `{"id": "j-N"}` |
//! | `GET /runs` | recent jobs, newest first |
//! | `GET /runs/:id` | status, timings, frame stats, rendered summary |
//! | `GET /runs/:id/report` | report JSON, byte-identical to `pd run --json` |
//! | `GET /healthz` | liveness (`ok`) |
//! | `GET /metrics` | text `key value` counters (jobs, frames, stage ms) |
//! | `POST /shutdown` | graceful drain: queued jobs finish, then exit |
//!
//! Jobs run on a **runner pool** (`--runners N`, default cores /
//! job-threads) fed by a bounded queue — a full queue answers `503` +
//! `Retry-After` instead of ever blocking the accept loop — and
//! **identical submissions coalesce**: while a job for a given
//! (spec fingerprint, seed, profile) is queued or running, an identical
//! submission gets its own `j-N` id but attaches as a *follower* of the
//! in-flight *leader* instead of taking a queue slot; when the leader
//! finishes, every follower settles with the same (byte-identical)
//! report, its snapshot naming the leader in `coalesced_into`. The
//! `/metrics` counter `jobs_coalesced` counts followers. Every engine
//! shares the daemon's [`pd_core::FrameCache`] and
//! [`pd_core::StoreCache`] (injected through
//! [`pd_core::ExperimentBuilder::frame_cache`] /
//! [`pd_core::ExperimentBuilder::store_cache`]), so a repeated analysis
//! is served from warm frames (`frames_built == 0`,
//! `frames_reused > 0`) and concurrent jobs load each measurement store
//! from disk at most once.
//!
//! The wire format is the byte-level codec in `pd_web::http`; the same
//! [`Request`](pd_web::http::Request)/[`Response`](pd_web::http::Response)
//! types serve the daemon, the blocking [`Client`], and the
//! `pd submit` / `pd poll` CLI. Connections are **HTTP/1.1 persistent**
//! on both sides: the accept workers serve a per-connection request
//! loop until the client sends `connection: close` (or goes idle), and
//! the [`Client`] caches its socket between requests, so polling pays
//! the TCP handshake once.
//!
//! ```
//! use pd_serve::{Client, ServeConfig, Server, SubmitRequest};
//!
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".to_owned(), // ephemeral test port
//!     ..ServeConfig::default()
//! })
//! .expect("bind");
//! let client = Client::new(&server.addr().to_string());
//! let id = client
//!     .submit(&SubmitRequest {
//!         scenario: Some("smoke".to_owned()),
//!         seed: Some(7),
//!         profile: Some("smoke".to_owned()),
//!         ..SubmitRequest::default()
//!     })
//!     .expect("queued");
//! let done = client
//!     .wait_done(&id, std::time::Duration::from_secs(60))
//!     .expect("smoke job finishes");
//! assert!(done.has_report);
//! client.shutdown().expect("graceful drain");
//! server.join(); // returns once drained — exit 0, nothing orphaned
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod observer;
pub mod server;
pub mod service;

pub use client::Client;
pub use observer::{ServiceObserver, TeeObserver};
pub use server::Server;
pub use service::{
    JobSnapshot, JobState, Metrics, PdService, RunsList, ServeConfig, SubmitError, SubmitReply,
    SubmitRequest,
};
