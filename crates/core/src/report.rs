//! The experiment report: every figure's data, renderers, JSON export.

use pd_analysis::ascii;
use pd_analysis::crawl::{Fig3Bar, Fig5Point};
use pd_analysis::crowd::{Fig1Bar, RatioBox};
use pd_analysis::location::{Fig7Box, Fig8Cell, Fig9Box};
use pd_analysis::login::{Fig10, PersonaSummary};
use pd_analysis::strategy::LocationCurve;
use pd_analysis::summary::DatasetSummary;
use pd_analysis::thirdparty::ThirdPartyTable;
use pd_sheriff::cleaning::CleaningReport;
use pd_util::stats::LogBucket;
use serde::{Deserialize, Serialize};

/// One retailer's Fig. 8 grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Grid {
    /// Retailer domain.
    pub domain: String,
    /// All off-diagonal cells.
    pub cells: Vec<Fig8Cell>,
}

/// Everything the paper's evaluation section reports, recomputed.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(missing_docs)] // fields are the figures; described in module docs
pub struct Report {
    pub summary: DatasetSummary,
    pub cleaning: CleaningReport,
    pub fig1: Vec<Fig1Bar>,
    pub fig2: Vec<RatioBox>,
    pub fig3: Vec<Fig3Bar>,
    pub fig4: Vec<RatioBox>,
    pub fig5_points: Vec<Fig5Point>,
    pub fig5_envelope: Vec<LogBucket>,
    pub fig6a: Vec<LocationCurve>,
    pub fig6b: Vec<LocationCurve>,
    pub fig7: Vec<Fig7Box>,
    pub fig8a: Fig8Grid,
    pub fig8b: Fig8Grid,
    pub fig8c: Fig8Grid,
    pub fig9: Vec<Fig9Box>,
    pub fig10: Fig10,
    pub persona: PersonaSummary,
    pub third_party: ThirdPartyTable,
    /// Extension (paper Sec. 6 future work): per-retailer factor
    /// attribution over the crawled set.
    pub attribution: Vec<pd_analysis::Attribution>,
}

impl Report {
    /// Sec. 3.2 summary as text.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let s = &self.summary;
        format!(
            "Dataset summary (paper targets in parentheses)\n\
             \x20 crowd requests:   {:>7}  (1500)\n\
             \x20 crowd users:      {:>7}  (340)\n\
             \x20 user countries:   {:>7}  (18)\n\
             \x20 crowd domains:    {:>7}  (600)\n\
             \x20 crawled stores:   {:>7}  (21)\n\
             \x20 crawled products: {:>7}  (~2100)\n\
             \x20 crawl days:       {:>7}  (7)\n\
             \x20 extracted prices: {:>7}  (188K)\n\
             \x20 cleaning: kept {} / dropped {} inconsistent, {} unhealthy\n",
            s.crowd_requests,
            s.crowd_users,
            s.crowd_countries,
            s.crowd_domains,
            s.crawled_retailers,
            s.crawled_products,
            s.crawl_days,
            s.crawled_prices,
            self.cleaning.kept,
            self.cleaning.dropped_inconsistent,
            self.cleaning.dropped_unhealthy,
        )
    }

    /// Fig. 1 rendering.
    #[must_use]
    pub fn render_fig1(&self) -> String {
        ascii::render_fig1(&self.fig1)
    }

    /// Fig. 2 rendering.
    #[must_use]
    pub fn render_fig2(&self) -> String {
        ascii::render_ratio_boxes(
            "Fig.2  Magnitude of price differences per domain (crowd)",
            &self.fig2,
        )
    }

    /// Fig. 3 rendering.
    #[must_use]
    pub fn render_fig3(&self) -> String {
        ascii::render_fig3(&self.fig3)
    }

    /// Fig. 4 rendering.
    #[must_use]
    pub fn render_fig4(&self) -> String {
        ascii::render_ratio_boxes(
            "Fig.4  Magnitude of price variability per domain (crawl)",
            &self.fig4,
        )
    }

    /// Fig. 5 rendering (envelope form).
    #[must_use]
    pub fn render_fig5(&self) -> String {
        ascii::render_fig5(&self.fig5_envelope)
    }

    /// Fig. 6 rendering (both subfigures).
    #[must_use]
    pub fn render_fig6(&self) -> String {
        format!(
            "{}{}",
            ascii::render_fig6("www.digitalrev.com (a)", &self.fig6a),
            ascii::render_fig6("www.energie.it (b)", &self.fig6b)
        )
    }

    /// Fig. 7 rendering.
    #[must_use]
    pub fn render_fig7(&self) -> String {
        ascii::render_fig7(&self.fig7)
    }

    /// Fig. 8 rendering (all three grids).
    #[must_use]
    pub fn render_fig8(&self) -> String {
        format!(
            "{}{}{}",
            ascii::render_fig8(&self.fig8a.domain, &self.fig8a.cells),
            ascii::render_fig8(&self.fig8b.domain, &self.fig8b.cells),
            ascii::render_fig8(&self.fig8c.domain, &self.fig8c.cells)
        )
    }

    /// Fig. 9 rendering.
    #[must_use]
    pub fn render_fig9(&self) -> String {
        ascii::render_fig9(&self.fig9)
    }

    /// Fig. 10 rendering.
    #[must_use]
    pub fn render_fig10(&self) -> String {
        ascii::render_fig10(&self.fig10)
    }

    /// The factor-attribution table (extension).
    #[must_use]
    pub fn render_attribution(&self) -> String {
        use pd_analysis::Factor;
        let mut out = String::from("Factor attribution (extension; paper Sec. 6 future work)\n");
        out.push_str(&format!(
            "{:<30} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
            "retailer", "country", "city", "session", "day", "login"
        ));
        for a in &self.attribution {
            let cell = |f: Factor| {
                let e = a.effect(f);
                if e.varies {
                    format!("x{:.2}", e.max_ratio)
                } else {
                    "-".to_owned()
                }
            };
            out.push_str(&format!(
                "{:<30} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                a.domain,
                cell(Factor::Country),
                cell(Factor::CityWithinCountry),
                cell(Factor::Session),
                cell(Factor::Day),
                cell(Factor::Login),
            ));
        }
        out
    }

    /// Third-party table + persona line.
    #[must_use]
    pub fn render_tables(&self) -> String {
        let mut out =
            String::from("Third-party presence on crawled retailers (paper: 95/65/80/45/40%)\n");
        for (host, frac) in &self.third_party.rows {
            out.push_str(&format!("  {host:>28}: {:>5.1}%\n", frac * 100.0));
        }
        out.push_str(&format!(
            "Persona experiment: {} differing of {} pairs → null result {}\n",
            self.persona.differing_pairs, self.persona.total_pairs, self.persona.null_result
        ));
        out
    }

    /// Renders every artifact in paper order.
    #[must_use]
    pub fn render_all(&self) -> String {
        [
            self.render_summary(),
            self.render_fig1(),
            self.render_fig2(),
            self.render_fig3(),
            self.render_fig4(),
            self.render_fig5(),
            self.render_fig6(),
            self.render_fig7(),
            self.render_fig8(),
            self.render_fig9(),
            self.render_fig10(),
            self.render_tables(),
            self.render_attribution(),
        ]
        .join("\n")
    }

    /// Full report as JSON (for external plotting).
    ///
    /// # Panics
    ///
    /// Never: the report contains no non-serializable values.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// Canonical JSON rendering for a set of labeled reports: a lone
/// unlabeled report renders as [`Report::to_json`]; anything else becomes
/// one object keyed by arm label. This is the single formatter behind
/// `pd run --json`, `pd rerun --json` and the `pd serve` report endpoint,
/// so their outputs stay byte-identical by construction.
#[must_use]
pub fn reports_to_json(reports: &[(String, Report)]) -> String {
    if let [(label, report)] = reports {
        if label.is_empty() {
            return report.to_json();
        }
    }
    let body: Vec<String> = reports
        .iter()
        .map(|(label, r)| format!("{:?}: {}", label, r.to_json()))
        .collect();
    format!("{{\n{}\n}}", body.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Experiment, ExperimentConfig};

    fn report() -> Report {
        Experiment::run(ExperimentConfig::small(1307))
    }

    #[test]
    fn all_renderings_are_nonempty() {
        let r = report();
        for (name, s) in [
            ("summary", r.render_summary()),
            ("fig1", r.render_fig1()),
            ("fig2", r.render_fig2()),
            ("fig3", r.render_fig3()),
            ("fig4", r.render_fig4()),
            ("fig5", r.render_fig5()),
            ("fig6", r.render_fig6()),
            ("fig7", r.render_fig7()),
            ("fig8", r.render_fig8()),
            ("fig9", r.render_fig9()),
            ("fig10", r.render_fig10()),
            ("tables", r.render_tables()),
        ] {
            assert!(s.lines().count() >= 2, "{name} rendering too small:\n{s}");
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let json = r.to_json();
        let back: Report = serde_json::from_str(&json).unwrap();
        // Integer-valued artifacts round-trip exactly; float-heavy ones
        // only up to JSON text precision (last ulp), so compare structure.
        assert_eq!(back.summary, r.summary);
        assert_eq!(back.fig1, r.fig1);
        assert_eq!(back.fig9.len(), r.fig9.len());
        for (a, b) in back.fig9.iter().zip(&r.fig9) {
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.finland_cheapest, b.finland_cheapest);
            assert!((a.stats.median - b.stats.median).abs() < 1e-9);
        }
    }
}
