//! The experiment engine: scenario-driven, staged, deterministic.
//!
//! Three layers:
//!
//! * [`ExperimentBuilder`] — the entry point: pick a named scenario (or
//!   a raw config), a seed, a profile, a thread count and an observer,
//!   and get an [`Engine`].
//! * [`Engine`] — runs the typed stages ([`crate::stage`]) with artifact
//!   caching: `crowd()` runs the campaign once and every later call
//!   (including `analyze()`) reuses the artifact. All parallel sections
//!   go through the deterministic [`Executor`], so the report is
//!   byte-identical at any thread count.
//! * [`Experiment`] — the original monolithic API, kept as a thin
//!   compatibility shim over the stage functions.

use crate::config::ExperimentConfig;
use crate::executor::Executor;
use crate::observer::{NullObserver, RunObserver, StageKind};
use crate::report::Report;
use crate::scenario::{Profile, RunPlan, Scenario, ScenarioParams, ScenarioRegistry};
use crate::stage::{self, AnalysisArtifact, CrawlArtifact, CrowdArtifact, PersonaArtifact};
use crate::world::World;
use pd_sheriff::cleaning::CleaningReport;
use pd_sheriff::MeasurementStore;
use std::sync::Arc;

/// The staged, artifact-caching experiment engine.
pub struct Engine {
    plan: RunPlan,
    world: World,
    executor: Executor,
    observer: Arc<dyn RunObserver>,
    crowd: Option<CrowdArtifact>,
    crawl: Option<CrawlArtifact>,
    personas: Option<PersonaArtifact>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("plan", &self.plan)
            .field("executor", &self.executor)
            .field("crowd_cached", &self.crowd.is_some())
            .field("crawl_cached", &self.crawl.is_some())
            .field("personas_cached", &self.personas.is_some())
            .finish()
    }
}

impl Engine {
    /// Builds an engine for a run plan: assembles the world, then
    /// applies the plan's vantage subset and desynchronization skew to
    /// the fan-out engine (the only moment they can be set).
    #[must_use]
    pub fn from_plan(plan: RunPlan, executor: Executor, observer: Arc<dyn RunObserver>) -> Self {
        let world = stage::observed(observer.as_ref(), StageKind::Build, || {
            let mut world = World::build(&plan.config);
            if let Some(labels) = &plan.vantage_labels {
                world.sheriff = world.sheriff.clone().with_vantage_subset(labels);
            }
            if plan.desync != pd_net::clock::SimDuration::ZERO {
                world.sheriff = world.sheriff.clone().with_desync(plan.desync);
            }
            // Emitted inside the stage window so observers attribute it
            // to this run's build stage.
            observer.counter(
                StageKind::Build,
                "vantage_points",
                world.sheriff.vantage_points().len() as u64,
            );
            world
        });
        Engine {
            plan,
            world,
            executor,
            observer,
            crowd: None,
            crawl: None,
            personas: None,
        }
    }

    /// The assembled world (read access for examples and diagnostics).
    #[must_use]
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The plan in force.
    #[must_use]
    pub fn plan(&self) -> &RunPlan {
        &self.plan
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &ExperimentConfig {
        &self.plan.config
    }

    /// The scheduler in force.
    #[must_use]
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// The crowd campaign artifact, running the stage on first call and
    /// reusing the cached artifact afterwards.
    pub fn crowd(&mut self) -> &CrowdArtifact {
        if self.crowd.is_none() {
            self.crowd = Some(stage::crowd_stage(
                &self.world,
                &self.plan,
                &self.executor,
                self.observer.as_ref(),
            ));
        }
        self.crowd.as_ref().expect("just computed")
    }

    /// The crawl artifact, cached after the first call.
    pub fn crawl(&mut self) -> &CrawlArtifact {
        if self.crawl.is_none() {
            self.crawl = Some(stage::crawl_stage(
                &self.world,
                &self.plan.config,
                &self.executor,
                self.observer.as_ref(),
            ));
        }
        self.crawl.as_ref().expect("just computed")
    }

    /// The persona/login artifact, cached after the first call.
    pub fn personas(&mut self) -> &PersonaArtifact {
        if self.personas.is_none() {
            self.personas = Some(stage::persona_stage(
                &self.world,
                &self.plan.config,
                &self.executor,
                self.observer.as_ref(),
            ));
        }
        self.personas.as_ref().expect("just computed")
    }

    /// Runs the analysis over the (cached) upstream artifacts and
    /// returns the analysis artifact. Upstream stages run at most once;
    /// calling this twice re-analyzes but does not re-measure.
    pub fn analyze(&mut self) -> AnalysisArtifact {
        self.crowd();
        self.crawl();
        self.personas();
        stage::analysis_stage(
            &self.world,
            &self.plan.config,
            self.crowd.as_ref().expect("cached above"),
            self.crawl.as_ref().expect("cached above"),
            self.personas.as_ref().expect("cached above"),
            &self.executor,
            self.observer.as_ref(),
        )
    }

    /// Runs the full pipeline and returns the report.
    pub fn run(&mut self) -> Report {
        self.analyze().report
    }
}

/// Why a builder could not produce an engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The requested scenario name is not registered.
    UnknownScenario(String),
    /// `build()` was called on a sweep scenario; use
    /// [`ExperimentBuilder::build_variants`].
    SweepScenario(String),
    /// A config override was combined with a scenario whose sweep arms
    /// differ *through* their configs (e.g. `seed-sweep`,
    /// `locale-sweep`); overriding would erase the arm differences.
    ConfigOverridesSweep(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownScenario(name) => write!(f, "unknown scenario {name:?}"),
            BuildError::SweepScenario(name) => write!(
                f,
                "scenario {name:?} is a sweep; use build_variants() to get every arm"
            ),
            BuildError::ConfigOverridesSweep(name) => write!(
                f,
                "scenario {name:?} sweeps over its config; a config override would \
                 make every arm identical"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Builder for [`Engine`]s: scenario + seed + profile + threads +
/// observer.
///
/// ```
/// use pd_core::{Experiment, Profile};
///
/// let mut engine = Experiment::builder()
///     .scenario("paper")
///     .profile(Profile::Smoke)
///     .seed(42)
///     .threads(2)
///     .build()
///     .expect("paper is a registered single-run scenario");
/// let report = engine.run();
/// assert!(report.summary.crowd_requests > 0);
/// ```
pub struct ExperimentBuilder {
    registry: ScenarioRegistry,
    scenario: Option<String>,
    config: Option<ExperimentConfig>,
    seed: Option<u64>,
    profile: Profile,
    threads: usize,
    observer: Arc<dyn RunObserver>,
}

impl std::fmt::Debug for ExperimentBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentBuilder")
            .field("scenario", &self.scenario)
            .field("seed", &self.seed)
            .field("profile", &self.profile)
            .field("threads", &self.threads)
            .finish()
    }
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        ExperimentBuilder {
            registry: ScenarioRegistry::builtin(),
            scenario: None,
            config: None,
            seed: None,
            profile: Profile::Paper,
            threads: 1,
            observer: Arc::new(NullObserver),
        }
    }
}

impl ExperimentBuilder {
    /// A builder with the built-in scenario registry, the `paper`
    /// scenario, the paper seed and profile, one thread, no observer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects a scenario by registry name (default: `paper`).
    #[must_use]
    pub fn scenario(mut self, name: &str) -> Self {
        self.scenario = Some(name.to_owned());
        self
    }

    /// Replaces the scenario registry (to add custom scenarios before
    /// selecting one by name).
    #[must_use]
    pub fn registry(mut self, registry: ScenarioRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Overrides the experiment configuration. The selected scenario
    /// still applies its engine knobs (desync, cleaning, vantage subset)
    /// on top of this config, and an explicit [`ExperimentBuilder::seed`]
    /// still wins over the override's seed. Scenarios whose sweep arms
    /// differ through their configs (`seed-sweep`, `locale-sweep`)
    /// reject an override at build time.
    #[must_use]
    pub fn config(mut self, config: ExperimentConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Sets the root seed (default: the paper seed, 1307).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the workload profile (default: [`Profile::Paper`]).
    #[must_use]
    pub fn profile(mut self, profile: Profile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the worker-thread count (default 1 = sequential; 0 = the
    /// machine's available parallelism). The report is byte-identical at
    /// any value.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a run observer (keep a clone of the `Arc` to read
    /// timings afterwards).
    #[must_use]
    pub fn observer(mut self, observer: Arc<dyn RunObserver>) -> Self {
        self.observer = observer;
        self
    }

    /// Resolves the scenario into its labeled run plans.
    fn resolve(&self) -> Result<(String, Vec<(String, RunPlan)>), BuildError> {
        let name = self.scenario.as_deref().unwrap_or("paper");
        let scenario: &dyn Scenario = self
            .registry
            .get(name)
            .ok_or_else(|| BuildError::UnknownScenario(name.to_owned()))?;
        let params = ScenarioParams {
            seed: self
                .seed
                .unwrap_or_else(|| pd_util::seed::EXPERIMENT_SEED.value()),
            profile: self.profile,
        };
        let mut variants = scenario.plan(&params).into_variants();
        if let Some(config) = &self.config {
            // A config override is only meaningful when the arms do not
            // differ through their configs — otherwise it would silently
            // flatten the sweep.
            if variants
                .iter()
                .any(|(_, plan)| plan.config != variants[0].1.config)
            {
                return Err(BuildError::ConfigOverridesSweep(name.to_owned()));
            }
            // An explicit .seed() composes with the override instead of
            // being silently discarded by it.
            let mut config = config.clone();
            if let Some(seed) = self.seed {
                config.seed = pd_util::Seed::new(seed);
            }
            for (_, plan) in &mut variants {
                plan.config = config.clone();
            }
        }
        Ok((name.to_owned(), variants))
    }

    /// Builds the engine for a single-run scenario.
    ///
    /// # Errors
    ///
    /// [`BuildError::UnknownScenario`] if the name is not registered;
    /// [`BuildError::SweepScenario`] if the scenario expands to more
    /// than one run (use [`ExperimentBuilder::build_variants`]).
    pub fn build(self) -> Result<Engine, BuildError> {
        let (name, mut variants) = self.resolve()?;
        if variants.len() != 1 {
            return Err(BuildError::SweepScenario(name));
        }
        let (_, plan) = variants.remove(0);
        Ok(Engine::from_plan(
            plan,
            Executor::new(self.threads),
            self.observer,
        ))
    }

    /// Builds one engine per scenario variant (a single-run scenario
    /// yields one engine labeled `""`).
    ///
    /// # Errors
    ///
    /// [`BuildError::UnknownScenario`] if the name is not registered.
    pub fn build_variants(self) -> Result<Vec<(String, Engine)>, BuildError> {
        let (_, variants) = self.resolve()?;
        let executor = Executor::new(self.threads);
        Ok(variants
            .into_iter()
            .map(|(label, plan)| {
                (
                    label,
                    Engine::from_plan(plan, executor, Arc::clone(&self.observer)),
                )
            })
            .collect())
    }
}

/// The original experiment driver, kept as a compatibility shim over the
/// staged engine. New code should prefer [`Experiment::builder`].
#[derive(Debug)]
pub struct Experiment {
    engine: Engine,
}

impl Experiment {
    /// Builds the world for `config` (sequential engine, no observer).
    #[must_use]
    pub fn new(config: ExperimentConfig) -> Self {
        Experiment {
            engine: Engine::from_plan(
                RunPlan::new(config),
                Executor::serial(),
                Arc::new(NullObserver),
            ),
        }
    }

    /// The scenario/engine builder (the redesigned entry point).
    #[must_use]
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::new()
    }

    /// The world (read access for examples and diagnostics).
    #[must_use]
    pub fn world(&self) -> &World {
        self.engine.world()
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ExperimentConfig {
        self.engine.config()
    }

    /// Runs the full pipeline and produces the report.
    #[must_use]
    pub fn run(config: ExperimentConfig) -> Report {
        let mut exp = Experiment::new(config);
        exp.engine.run()
    }

    /// Stage 2: the crowd campaign plus cleaning. Returns (raw, cleaned,
    /// report). Recomputes on every call; use
    /// [`Engine::crowd`] for the cached artifact.
    #[must_use]
    pub fn run_crowd_phase(&mut self) -> (MeasurementStore, MeasurementStore, CleaningReport) {
        let artifact = stage::crowd_stage(
            self.engine.world(),
            self.engine.plan(),
            self.engine.executor(),
            &NullObserver,
        );
        (artifact.raw, artifact.cleaned, artifact.cleaning)
    }

    /// The paper's stated future work, implemented: attribute a
    /// retailer's price variation to specific request factors (country,
    /// city, session, day, login) by controlled probing. Returns `None`
    /// for unknown domains.
    #[must_use]
    pub fn attribute_factors(
        &self,
        domain: &str,
        products: usize,
    ) -> Option<pd_analysis::Attribution> {
        stage::attribute_factors(self.engine.world(), self.engine.config(), domain, products)
    }

    /// The automated version of the paper's manual tax/shipping check
    /// (see [`stage::is_tax_explained`]).
    #[must_use]
    pub fn is_tax_explained(&self, domain: &str) -> bool {
        stage::is_tax_explained(self.engine.world(), self.engine.config(), domain)
    }

    /// Stage 3: the systematic crawl of the paper's 21 retailers.
    /// Recomputes on every call; use [`Engine::crawl`] for the cached
    /// artifact.
    #[must_use]
    pub fn run_crawl_phase(
        &self,
    ) -> (MeasurementStore, Vec<pd_crawler::crawl::RetailerCrawlStats>) {
        let artifact = stage::crawl_stage(
            self.engine.world(),
            self.engine.config(),
            self.engine.executor(),
            &NullObserver,
        );
        (artifact.store, artifact.stats)
    }

    /// Data-driven variant of target selection (used by the
    /// `crawl_retailers` example and the crowd-value ablation): rank
    /// domains by confirmed crowd variation instead of taking the
    /// paper's list.
    #[must_use]
    pub fn targets_from_crowd(
        &self,
        cleaned: &MeasurementStore,
        min_confirmed: usize,
    ) -> Vec<String> {
        stage::targets_from_crowd(self.engine.world(), cleaned, min_confirmed)
    }

    /// Stage 4: every figure and table.
    #[must_use]
    pub fn analyze(
        &self,
        crowd_raw: &MeasurementStore,
        crowd_clean: &MeasurementStore,
        cleaning: CleaningReport,
        crawl_store: &MeasurementStore,
    ) -> Report {
        let world = self.engine.world();
        let config = self.engine.config();
        let exec = self.engine.executor();
        let personas = stage::persona_stage(world, config, exec, &NullObserver);
        stage::analysis_over(
            world,
            config,
            crowd_raw,
            crowd_clean,
            cleaning,
            crawl_store,
            &personas,
            exec,
            &NullObserver,
        )
        .report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_small_pipeline_runs() {
        let report = Experiment::run(ExperimentConfig::small(1307));
        assert!(report.summary.crowd_requests > 100);
        assert!(report.summary.crawled_retailers == 21);
        assert!(!report.fig1.is_empty());
        assert!(!report.fig3.is_empty());
        assert!(!report.fig5_points.is_empty());
        assert_eq!(report.fig8a.cells.len(), 30, "6×6 grid minus diagonal");
        assert!(report.persona.null_result);
    }

    #[test]
    fn crowd_phase_cleaning_drops_noise() {
        let mut exp = Experiment::new(ExperimentConfig::small(2));
        let (raw, cleaned, report) = exp.run_crowd_phase();
        assert!(cleaned.len() <= raw.len());
        assert_eq!(report.kept, cleaned.len());
        // Default noise rates (7 %) over 150 checks: some drops expected.
        assert!(report.dropped_inconsistent > 0, "{report:?}");
    }

    #[test]
    fn tax_check_catches_the_inliner_confound() {
        let exp = Experiment::new(ExperimentConfig::small(3));
        // Filler #0 inlines tax by construction (the injected confound).
        assert!(exp.is_tax_explained("www.shop-000.example"));
        // Real discriminators are not explained away by taxes.
        assert!(!exp.is_tax_explained("www.digitalrev.com"));
        assert!(!exp.is_tax_explained("www.energie.it"));
        // Unknown domains are trivially not tax-explained.
        assert!(!exp.is_tax_explained("gone.example"));
    }

    #[test]
    fn targets_from_crowd_rank_real_discriminators() {
        let mut exp = Experiment::new(ExperimentConfig::small(3));
        let (_, cleaned, _) = exp.run_crowd_phase();
        let targets = exp.targets_from_crowd(&cleaned, 1);
        assert!(!targets.is_empty());
        // Every selected target must actually be discriminating (no
        // false positives at threshold 1 thanks to the band filter).
        for t in &targets {
            let spec = exp
                .world()
                .web
                .server_by_domain(t)
                .map(|s| s.spec().clone());
            if let Some(spec) = spec {
                assert!(
                    spec.is_discriminating(),
                    "{t} selected but not discriminating"
                );
            }
        }
    }

    #[test]
    fn legacy_run_equals_builder_paper_scenario() {
        let legacy = Experiment::run(ExperimentConfig::smoke(1307));
        let mut engine = Experiment::builder()
            .scenario("paper")
            .profile(Profile::Smoke)
            .seed(1307)
            .build()
            .expect("paper scenario builds");
        assert_eq!(legacy.to_json(), engine.run().to_json());
    }

    #[test]
    fn builder_rejects_unknown_and_sweep_scenarios() {
        assert!(matches!(
            Experiment::builder().scenario("nope").build(),
            Err(BuildError::UnknownScenario(_))
        ));
        assert!(matches!(
            Experiment::builder().scenario("seed-sweep").build(),
            Err(BuildError::SweepScenario(_))
        ));
        let variants = Experiment::builder()
            .scenario("seed-sweep")
            .profile(Profile::Smoke)
            .build_variants()
            .expect("sweep builds variants");
        assert_eq!(variants.len(), 3);
    }

    #[test]
    fn config_override_rejected_on_config_driven_sweeps() {
        // seed-sweep arms differ through their configs: a wholesale
        // override would silently run the same experiment three times.
        assert!(matches!(
            Experiment::builder()
                .scenario("seed-sweep")
                .config(ExperimentConfig::smoke(1))
                .build_variants(),
            Err(BuildError::ConfigOverridesSweep(_))
        ));
        // desync-ablation arms differ through an engine knob, not the
        // config — the override composes fine.
        let arms = Experiment::builder()
            .scenario("desync-ablation")
            .config(ExperimentConfig::smoke(1))
            .build_variants()
            .expect("engine-knob sweep accepts a config override");
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].1.config().crowd.checks, 60);
    }

    #[test]
    fn explicit_seed_wins_over_config_override() {
        let engine = Experiment::builder()
            .config(ExperimentConfig::smoke(1))
            .seed(42)
            .build()
            .expect("paper scenario with explicit config");
        assert_eq!(engine.config().seed.value(), 42);
    }

    #[test]
    fn engine_caches_stage_artifacts() {
        let mut engine = Experiment::builder()
            .scenario("paper")
            .profile(Profile::Smoke)
            .build()
            .unwrap();
        let first_len = engine.crowd().raw.len();
        // Second call must hand back the same artifact without rerunning.
        assert_eq!(engine.crowd().raw.len(), first_len);
    }
}
